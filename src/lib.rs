//! # streaming-set-cover
//!
//! A from-scratch Rust reproduction of **"Towards Tight Bounds for the
//! Streaming Set Cover Problem"** (Har-Peled, Indyk, Mahabadi, Vakilian
//! — PODS 2016): the `iterSetCover` algorithm, its geometric variant,
//! every baseline of the paper's summary table, and the constructive
//! machinery behind its lower bounds, all under an instrumented
//! streaming model that measures passes and working memory in words.
//!
//! This crate is an umbrella: it re-exports the workspace crates under
//! stable module names. See the README for the guided tour and
//! `examples/` for runnable entry points.
//!
//! ```
//! use streaming_set_cover::prelude::*;
//!
//! let inst = gen::planted(256, 512, 8, 1);
//! let mut alg = IterSetCover::new(IterSetCoverConfig::default());
//! let report = run_reported(&mut alg, &inst.system);
//! assert!(report.verified.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Bitset primitives ([`sc_bitset`]).
pub use sc_bitset as bitset;
/// Communication-complexity gadgets and reductions ([`sc_comm`]).
pub use sc_comm as comm;
/// Streaming algorithms: `iterSetCover` and baselines ([`sc_core`]).
pub use sc_core as algorithms;
/// Geometric set cover ([`sc_geometry`]).
pub use sc_geometry as geometry;
/// Offline oracles ([`sc_offline`]).
pub use sc_offline as offline;
/// The concurrent cover-query service ([`sc_service`]).
pub use sc_service as service;
/// Set systems and generators ([`sc_setsystem`]).
pub use sc_setsystem as setsystem;
/// The instrumented streaming model ([`sc_stream`]).
pub use sc_stream as stream;
/// Live telemetry: counters, stage spans, query journal ([`sc_telemetry`]).
pub use sc_telemetry as telemetry;

/// The names most programs need.
pub mod prelude {
    pub use sc_bitset::{BitSet, HeapWords, SparseSet};
    pub use sc_core::baselines::{
        ChakrabartiWirth, Dimv14, Dimv14Config, EmekRosen, OnePassProjection, OnePickPerPassGreedy,
        ProgressiveGreedy, SahaGetoor, StoreAllGreedy,
    };
    pub use sc_core::partial::{
        run_partial, PartialChakrabartiWirth, PartialEmekRosen, PartialIterSetCover,
        PartialProgressiveGreedy,
    };
    pub use sc_core::{IterSetCover, IterSetCoverConfig};
    pub use sc_geometry::{
        bronnimann_goodrich, AlgGeomSc, AlgGeomScConfig, BgConfig, GeomInstance,
    };
    pub use sc_offline::OfflineSolver;
    pub use sc_service::{
        QueryOutcome, QuerySpec, Service, ServiceBuilder, ServiceConfig, ServiceHandle,
        TenantRegistry,
    };
    pub use sc_setsystem::{gen, Instance, SetSystem, SetSystemBuilder};
    pub use sc_stream::{
        run_reported, RunReport, ScanLedger, SetStream, SpaceMeter, StreamingSetCover,
    };
}
