//! `sctool` — generate, inspect, and solve set cover instances from the
//! command line.
//!
//! ```text
//! sctool gen planted --n 2048 --m 4096 --k 16 --seed 7 > inst.sc
//! sctool info inst.sc
//! sctool gen planted --binary | sctool solve iter -
//! sctool solve all inst.sc
//! sctool exact inst.sc
//! sctool certify inst.sc
//! sctool convert inst.sc inst.scb      # text -> SCB1 binary
//! sctool convert inst.scb roundtrip.sc # binary -> text
//! printf 'iter\npartial eps=0.2\ngreedy\n' | sctool serve inst.sc
//! sctool serve inst.sc --listen 127.0.0.1:7431 &
//! sctool client --connect 127.0.0.1:7431 --queries 16 --concurrency 4
//! ```
//!
//! Instance files are text (`sc_setsystem::io`) or `SCB1` binary
//! (`sc_setsystem::binary`); readers sniff the magic, so either format
//! works wherever a file is accepted — including `-` for stdin.
//! `serve` runs the `sc_service` scan scheduler over a line protocol
//! (one query per line — see `sc_service::QuerySpec::parse`) on stdin
//! or a TCP listener; `client` is the matching load generator.

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;

use streaming_set_cover::bitset::BitSet;
use streaming_set_cover::offline;
use streaming_set_cover::prelude::*;
use streaming_set_cover::setsystem::binary as scbin;
use streaming_set_cover::setsystem::io as scio;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sctool: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  sctool gen <planted|noisy|uniform|zipf|sparse|adversarial> [--n N] [--m M] [--k K] [--p P] [--s S] [--theta T] [--max MAX] [--levels L] [--seed SEED] [--binary]
  sctool info <file>
  sctool solve <iter|dimv|store|onepick|progressive|sg|er|cw|akl|all> <file> [--delta D] [--passes P] [--alpha A] [--oracle greedy|exact|pd|lp]
  sctool exact <file> [--budget NODES]
  sctool certify <file>
  sctool convert <in> <out>              (format chosen by .scb extension)
  sctool serve <file> [--repo NAME=PATH]... [--quota NAME=N]... [--quantum N] [--interleave shard|epoch] [--listen HOST:PORT] [--max-conns N] [--shed DEPTH] [--inflight N] [--workers N] [--cache N] [--eviction fifo|lru] [--admission aligned|boundary] [--window MS] [--shard SETS] [--coalesce] [--stats-interval SECS] [--no-telemetry]
  sctool client --connect HOST:PORT [--repo NAME] [--wait-ready SECS] [--queries N] [--concurrency C] [--spec QUERY] [--duplicates K] [--allow-busy] [--stats] [--shutdown]
  sctool geomgen <discs|rects|triangles|clustered|grid|twoline> [--n N] [--m M] [--k K] [--half H] [--seed SEED]
  sctool geomsolve <file> [--delta D] [--no-canonical] [--bg]

files: text format everywhere; SCB1 binary is sniffed by magic; use - for stdin (either format)
serve protocol: one query per line — 'iter [delta=D] [seed=S]', 'partial [eps=E] [delta=D] [seed=S]', 'greedy', each optionally carrying 'repo=NAME' to address a named repository; also ping/quit/shutdown, '!use NAME' (retarget the connection at a named repository), '!repos' (list served repositories with generation/fingerprint/quota/counters), '!reload [NAME] PATH' (hot-swap a repository — the bare form swaps the connection's current one; in-flight queries drain on their generation), and the live telemetry verbs '!stats' (one-line counters + stage percentiles), '!metrics' (Prometheus-style listing), '!trace ID' (one query's journal timeline); responses come back in request order
serve tenants: the positional <file> is the repository named 'default'; each --repo NAME=PATH adds another; --quota NAME=N caps one repository's inflight slots; --quantum N tunes the cross-tenant fairness gate; --interleave picks its grant unit — 'shard' (default) interleaves every granted tenant's scan work shard-by-shard through one work-stealing fan-out, 'epoch' grants one tenant's whole epoch at a time (the pre-interleaving baseline)
serve overload: one event-driven thread multiplexes every connection; past --max-conns new connections get 'err msg=busy' and close, a query landing on a full submission queue answers 'err msg=busy' in-line, a request line past the per-session buffer cap answers 'err msg=line_too_long', and --shed DEPTH bounds each session's pipelined replies (beyond it the socket stalls in TCP backpressure); 'sctool client --allow-busy' counts busy answers instead of failing";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("gen") => gen_cmd(&args[1..]),
        Some("info") => info_cmd(&args[1..]),
        Some("solve") => solve_cmd(&args[1..]),
        Some("exact") => exact_cmd(&args[1..]),
        Some("certify") => certify_cmd(&args[1..]),
        Some("convert") => convert_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("client") => client_cmd(&args[1..]),
        Some("geomgen") => geomgen_cmd(&args[1..]),
        Some("geomsolve") => geomsolve_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".into()),
    }
}

/// Fetches `--flag value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for {name}: {v:?}")),
        None => Ok(default),
    }
}

/// Fetches every occurrence of a repeatable `--flag value`.
fn flag_all(args: &[String], name: &str) -> Vec<String> {
    args.windows(2)
        .filter(|w| w[0] == name)
        .map(|w| w[1].clone())
        .collect()
}

fn gen_cmd(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("gen: missing generator")?;
    let n: usize = flag_or(args, "--n", 1024)?;
    let m: usize = flag_or(args, "--m", 2 * n)?;
    let k: usize = flag_or(args, "--k", 16)?;
    let seed: u64 = flag_or(args, "--seed", 0)?;
    let inst = match kind.as_str() {
        "planted" => gen::planted(n, m, k, seed),
        "noisy" => gen::planted_noisy(n, m, k, seed),
        "uniform" => {
            let p: f64 = flag_or(args, "--p", 0.01)?;
            gen::uniform_random(n, m, p, seed)
        }
        "zipf" => {
            let theta: f64 = flag_or(args, "--theta", 1.1)?;
            let max: usize = flag_or(args, "--max", n / 8)?;
            gen::zipf(n, m, theta, max.max(1), seed)
        }
        "sparse" => {
            let s: usize = flag_or(args, "--s", 8)?;
            gen::sparse(n, m, s, seed)
        }
        "adversarial" => {
            let levels: u32 = flag_or(args, "--levels", 6)?;
            gen::greedy_adversarial(levels)
        }
        other => return Err(format!("gen: unknown generator {other:?}")),
    };
    if args.iter().any(|a| a == "--binary") {
        let mut out = std::io::stdout().lock();
        scbin::write_instance_binary(&mut out, &inst).map_err(|e| format!("stdout: {e}"))?;
    } else {
        print!("{}", scio::to_string(&inst));
    }
    Ok(())
}

/// Loads an instance from a text or SCB1 file, `-` meaning stdin
/// (either format; the SCB1 magic is sniffed — `scio::load_path` /
/// `scio::read_instance_sniffed`, the same loader the server's
/// `!reload` admin line uses). Parse errors carry the file name:
/// `name:line: message` for text, `name: …` for binary (whose errors
/// locate the damaged record instead of a line).
fn load(path: &str) -> Result<Instance, String> {
    if path == "-" {
        let mut bytes = Vec::new();
        std::io::stdin()
            .read_to_end(&mut bytes)
            .map_err(|e| format!("<stdin>: {e}"))?;
        return scio::read_instance_sniffed("<stdin>", &bytes[..]);
    }
    scio::load_path(path)
}

fn load_from_arg(args: &[String], at: usize) -> Result<Instance, String> {
    let path = args.get(at).ok_or("missing instance file")?;
    load(path)
}

fn info_cmd(args: &[String]) -> Result<(), String> {
    let inst = load_from_arg(args, 0)?;
    let s = &inst.system;
    println!("label      : {}", inst.label);
    println!("universe   : {}", s.universe());
    println!("sets       : {}", s.num_sets());
    println!("incidences : {}", s.total_size());
    println!("max |r|    : {}", s.max_set_size());
    println!("coverable  : {}", s.is_coverable());
    match &inst.planted {
        Some(p) => println!(
            "known cover: {} sets ({})",
            p.len(),
            match s.verify_cover(p) {
                Ok(()) => "valid",
                Err(_) => "INVALID",
            }
        ),
        None => println!("known cover: none"),
    }
    Ok(())
}

fn solve_cmd(args: &[String]) -> Result<(), String> {
    let which = args.first().ok_or("solve: missing algorithm")?.clone();
    let inst = load_from_arg(args, 1)?;
    let delta: f64 = flag_or(args, "--delta", 0.5)?;
    let passes: usize = flag_or(args, "--passes", 3)?;
    let alpha: f64 = flag_or(args, "--alpha", 4.0)?;
    let solver = match flag(args, "--oracle").as_deref() {
        None | Some("greedy") => OfflineSolver::Greedy,
        Some("exact") => OfflineSolver::DEFAULT_EXACT,
        Some("pd") => OfflineSolver::PrimalDual,
        Some("lp") => OfflineSolver::LpRound { seed: 0 },
        Some(other) => return Err(format!("solve: unknown oracle {other:?}")),
    };

    let mut algs: Vec<Box<dyn StreamingSetCover>> = Vec::new();
    let mut add = |name: &str| -> Result<(), String> {
        algs.push(match name {
            "iter" => Box::new(IterSetCover::new(IterSetCoverConfig {
                delta,
                solver,
                ..Default::default()
            })),
            "dimv" => Box::new(Dimv14::new(Dimv14Config {
                delta,
                solver,
                ..Default::default()
            })),
            "store" => Box::new(StoreAllGreedy),
            "onepick" => Box::new(OnePickPerPassGreedy),
            "progressive" => Box::new(ProgressiveGreedy),
            "sg" => Box::new(SahaGetoor::default()),
            "er" => Box::new(EmekRosen),
            "cw" => Box::new(ChakrabartiWirth::new(passes.max(1))),
            "akl" => Box::new(OnePassProjection {
                alpha: alpha.max(1.0),
                solver,
            }),
            other => return Err(format!("solve: unknown algorithm {other:?}")),
        });
        Ok(())
    };
    if which == "all" {
        for name in [
            "store",
            "onepick",
            "progressive",
            "sg",
            "er",
            "cw",
            "akl",
            "dimv",
            "iter",
        ] {
            add(name)?;
        }
    } else {
        add(&which)?;
    }

    for alg in &mut algs {
        let report = run_reported(alg.as_mut(), &inst.system);
        println!("{report}");
    }
    Ok(())
}

fn geomgen_cmd(args: &[String]) -> Result<(), String> {
    use streaming_set_cover::geometry::instances;
    let kind = args.first().ok_or("geomgen: missing family")?;
    let n: usize = flag_or(args, "--n", 500)?;
    let m: usize = flag_or(args, "--m", n / 2)?;
    let k: usize = flag_or(args, "--k", 8)?;
    let seed: u64 = flag_or(args, "--seed", 0)?;
    let inst = match kind.as_str() {
        "discs" => instances::random_discs(n, m, k, seed),
        "rects" => instances::random_rects(n, m, k, seed),
        "triangles" => instances::random_fat_triangles(n, m, k, seed),
        "clustered" => instances::clustered_discs(n, m, k, seed),
        "grid" => instances::grid_rects(n, m, seed),
        "twoline" => {
            let half: usize = flag_or(args, "--half", 32)?;
            instances::two_line(half, None, seed)
        }
        other => return Err(format!("geomgen: unknown family {other:?}")),
    };
    print!("{}", streaming_set_cover::geometry::io::to_string(&inst));
    Ok(())
}

fn geomsolve_cmd(args: &[String]) -> Result<(), String> {
    use streaming_set_cover::geometry::{io as gio, AlgGeomSc, AlgGeomScConfig};
    let path = args.first().ok_or("geomsolve: missing instance file")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let inst = gio::read_instance(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let delta: f64 = flag_or(args, "--delta", 0.25)?;
    let decompose = !args.iter().any(|a| a == "--no-canonical");
    if args.iter().any(|a| a == "--bg") {
        use streaming_set_cover::geometry::{bronnimann_goodrich, BgConfig};
        let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default())
            .ok_or("instance is not coverable")?;
        println!(
            "bronnimann-goodrich on {} (n={}, m={}): |sol|={} at guessed k={}, {} doublings, {} net draws — {}",
            inst.label,
            inst.points.len(),
            inst.shapes.len(),
            out.cover.len(),
            out.guessed_k,
            out.doublings,
            out.net_draws,
            match inst.verify_cover(&out.cover) {
                Ok(()) => "ok".to_string(),
                Err(e) => e,
            }
        );
        return Ok(());
    }
    let mut alg = AlgGeomSc::new(AlgGeomScConfig {
        delta,
        decompose_rects: decompose,
        ..Default::default()
    });
    let r = alg.run(&inst);
    println!(
        "algGeomSC(δ={delta}{}) on {} (n={}, m={})",
        if decompose { "" } else { ", no-canonical" },
        inst.label,
        inst.points.len(),
        inst.shapes.len()
    );
    println!(
        "|sol|={} passes={} space={} words, store ≤ {} candidates — {}",
        r.cover_size(),
        r.passes,
        r.space_words,
        r.max_store_candidates,
        match &r.verified {
            Ok(()) => "ok".to_string(),
            Err(e) => e.clone(),
        }
    );
    Ok(())
}

/// Prints the instant OPT sandwich: primal–dual dual witness (lower
/// bound), LP fractional value, and greedy cover (upper bound) — the
/// certificates that cost seconds instead of the exponential solver.
fn certify_cmd(args: &[String]) -> Result<(), String> {
    let inst = load_from_arg(args, 0)?;
    let sets = inst.system.all_bitsets();
    let target = BitSet::full(inst.system.universe());
    let pd = offline::primal_dual(&sets, &target).ok_or("instance is not coverable")?;
    let greedy = offline::greedy(&sets, &target).ok_or("instance is not coverable")?;
    let n = inst.system.universe();
    let frac = offline::fractional_mwu(
        &sets,
        &target,
        offline::lp::default_rounds(n.min(2048)),
        0.5,
    )
    .ok_or("instance is not coverable")?;
    println!(
        "dual lower bound : {} (primal–dual witness, certified)",
        pd.witness.len()
    );
    println!(
        "LP fractional    : {:.2} (MWU, {} rounds{})",
        frac.value,
        frac.rounds,
        if frac.patched > 0 {
            ", UNCONVERGED"
        } else {
            ""
        }
    );
    println!(
        "primal–dual cover: {} (f = {})",
        pd.cover.len(),
        pd.max_frequency
    );
    println!(
        "greedy cover     : {} (ρ = ln n + 1 ≈ {:.1})",
        greedy.len(),
        (n.max(2) as f64).ln() + 1.0
    );
    println!(
        "⇒ OPT ∈ [{}, {}]",
        pd.witness.len().max(frac.value.floor() as usize).max(1),
        greedy.len().min(pd.cover.len())
    );
    Ok(())
}

/// Converts between the text and `SCB1` binary formats; the output
/// format follows the output extension (`.scb` = binary).
fn convert_cmd(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("convert: missing input file")?;
    let output = args.get(1).ok_or("convert: missing output file")?;
    let inst = load(input)?;
    let file = File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    if output.ends_with(".scb") {
        scbin::write_instance_binary(&mut w, &inst).map_err(|e| format!("{output}: {e}"))?;
    } else {
        scio::write_instance(&mut w, &inst).map_err(|e| format!("{output}: {e}"))?;
    }
    w.flush().map_err(|e| format!("{output}: {e}"))?;
    println!(
        "wrote {} ({} sets, {} incidences) as {}",
        output,
        inst.system.num_sets(),
        inst.system.total_size(),
        if output.ends_with(".scb") {
            "SCB1 binary"
        } else {
            "text"
        }
    );
    Ok(())
}

/// `sctool serve`: the `sc_service` scan scheduler behind a line
/// protocol. Without `--listen`, requests arrive on stdin and responses
/// leave on stdout (EOF shuts down); with `--listen HOST:PORT`, every
/// TCP connection speaks the same protocol concurrently, and the
/// `shutdown` command stops the listener once inflight work drains.
fn serve_cmd(args: &[String]) -> Result<(), String> {
    use streaming_set_cover::service::net;
    use streaming_set_cover::service::{
        AdmissionMode, EvictionPolicy, InterleaveMode, ServiceBuilder, ServiceConfig,
    };
    if args.first().is_some_and(|p| p == "-") && flag(args, "--listen").is_none() {
        return Err(
            "serve: reading the instance from stdin needs --listen (without it, stdin carries the query protocol)"
                .into(),
        );
    }
    let inst = load_from_arg(args, 0)?;
    let defaults = ServiceConfig::default();
    // Per-tenant inflight quotas: `--quota NAME=N`, repeatable.
    let mut quotas: Vec<(String, usize)> = Vec::new();
    for q in flag_all(args, "--quota") {
        let (name, n) = q
            .split_once('=')
            .ok_or_else(|| format!("--quota: expected NAME=N, got {q:?}"))?;
        let n: usize = n
            .parse()
            .map_err(|_| format!("--quota {name}: bad count {n:?}"))?;
        quotas.push((name.to_string(), n.max(1)));
    }
    let quota_of = |name: &str| quotas.iter().find(|(q, _)| q == name).map(|&(_, n)| n);
    let mut builder = ServiceBuilder::new()
        .max_inflight(flag_or(args, "--inflight", defaults.max_inflight)?.max(1))
        .workers(flag_or(args, "--workers", defaults.workers)?.max(1))
        .cache_capacity(flag_or(args, "--cache", defaults.cache_capacity)?)
        // Serving workloads skew toward a hot repeat set, so the CLI
        // default is LRU (the library default stays FIFO for
        // deterministic batch runs).
        .eviction(
            EvictionPolicy::parse(&flag(args, "--eviction").unwrap_or_else(|| "lru".into()))
                .map_err(|e| format!("--eviction: {e}"))?,
        )
        .admission(
            AdmissionMode::parse(&flag(args, "--admission").unwrap_or_else(|| "aligned".into()))
                .map_err(|e| format!("--admission: {e}"))?,
        )
        .interleave(
            InterleaveMode::parse(&flag(args, "--interleave").unwrap_or_else(|| "shard".into()))
                .map_err(|e| format!("--interleave: {e}"))?,
        )
        .admission_window(std::time::Duration::from_millis(flag_or(
            args, "--window", 0u64,
        )?))
        .shard_size(flag_or(args, "--shard", defaults.shard_size)?.max(1))
        .coalesce(args.iter().any(|a| a == "--coalesce"));
    if let Some(q) = flag(args, "--quantum") {
        let q: u64 = q
            .parse()
            .map_err(|_| format!("bad value for --quantum: {q:?}"))?;
        builder = builder.quantum(q.max(1));
    }
    // The positional instance is the repository named "default" — the
    // one unaddressed queries and single-tenant clients land on. Each
    // `--repo NAME=PATH` mounts another named repository beside it.
    let mut seen = vec!["default".to_string()];
    builder = match quota_of("default") {
        Some(q) => builder.tenant_with_quota("default", inst.system, q),
        None => builder.tenant("default", inst.system),
    };
    for mount in flag_all(args, "--repo") {
        let (name, path) = mount
            .split_once('=')
            .ok_or_else(|| format!("--repo: expected NAME=PATH, got {mount:?}"))?;
        if name.is_empty() || seen.iter().any(|s| s == name) {
            return Err(format!(
                "--repo: duplicate or empty repository name {name:?}"
            ));
        }
        seen.push(name.to_string());
        let extra = scio::load_path(path)?;
        builder = match quota_of(name) {
            Some(q) => builder.tenant_with_quota(name, extra.system, q),
            None => builder.tenant(name, extra.system),
        };
    }
    for (name, _) in &quotas {
        if !seen.iter().any(|s| s == name) {
            return Err(format!("--quota {name}: no repository with that name"));
        }
    }
    let service = builder.build();
    // Telemetry is on by default in the CLI server (the library default
    // stays off): counters/spans/journal feed the `!stats`, `!metrics`,
    // and `!trace` verbs. `--no-telemetry` is the A/B switch the E22
    // overhead experiment's methodology mirrors.
    let telemetry = !args.iter().any(|a| a == "--no-telemetry");
    sc_telemetry::set_enabled(telemetry);
    let stats_interval: u64 = flag_or(args, "--stats-interval", 0u64)?;
    let (stop_ticker, ticker) = if telemetry && stats_interval > 0 {
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let period = std::time::Duration::from_secs(stats_interval);
        let ticker = std::thread::spawn(move || {
            // Disconnection = serve finished; the shutdown snapshot is
            // printed by the main thread.
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) = rx.recv_timeout(period) {
                eprintln!("sctool serve: stats {}", sc_telemetry::stats_line());
            }
        });
        (Some(tx), Some(ticker))
    } else {
        (None, None)
    };
    let metrics = match flag(args, "--listen") {
        Some(addr) => {
            // Front-door limits of the event-driven session layer:
            // `--max-conns` is the concurrent-connection cap (excess
            // connections are answered `err msg=busy` and closed),
            // `--shed` the per-session pending-reply depth (beyond it
            // the server stops reading that socket — TCP backpressure,
            // not disconnection).
            let net_defaults = net::NetConfig::default();
            let net_cfg = net::NetConfig {
                max_conns: flag_or(args, "--max-conns", net_defaults.max_conns)?.max(1),
                pending_cap: flag_or(args, "--shed", net_defaults.pending_cap)?.max(1),
                ..net_defaults
            };
            let listener =
                std::net::TcpListener::bind(&addr).map_err(|e| format!("{addr}: {e}"))?;
            let local = listener.local_addr().map_err(|e| format!("{addr}: {e}"))?;
            eprintln!("sctool serve: listening on {local}");
            let (metrics, net_stats) = net::serve_tcp_with(&service, listener, net_cfg)?;
            eprintln!(
                "sctool serve: net accepted={} shed={} buffer_overflows={}",
                net_stats.accepted, net_stats.shed, net_stats.buffer_overflows,
            );
            metrics
        }
        None => {
            let (res, metrics) = service.serve(|handle| {
                // `StdinLock` is not `Send`, and the reader half moves
                // into the pump's reader thread — wrap `Stdin` itself.
                let stdin = BufReader::new(std::io::stdin());
                let stdout = std::io::stdout();
                net::pump_queries(stdin, &mut stdout.lock(), &handle)
            });
            res.map_err(|e| format!("serve: {e}"))?;
            metrics
        }
    };
    drop(stop_ticker);
    if let Some(t) = ticker {
        let _ = t.join();
    }
    eprintln!(
        "sctool serve: {} queries ({} jobs, {} cache hits, {} coalesced, {} mid-stream joins, {} pass-aligned), {} shard grants, {} physical scans, peak {} inflight, {:.1} ms, {} kernels",
        metrics.queries_completed,
        metrics.jobs,
        metrics.cache_hits,
        metrics.coalesced,
        metrics.mid_stream_admissions,
        metrics.aligned_joins,
        metrics.shard_grants,
        metrics.physical_scans,
        metrics.max_inflight_seen,
        metrics.elapsed.as_secs_f64() * 1e3,
        sc_bitset::kernels::backend_name(),
    );
    if metrics.reloads > 0 || metrics.evictions > 0 {
        eprintln!(
            "sctool serve: {} reloads, {} cache evictions ({} capacity, {} dead-generation)",
            metrics.reloads,
            metrics.evictions,
            metrics.fifo_evictions + metrics.lru_evictions,
            metrics.reload_evictions,
        );
    }
    eprintln!("sctool serve: queue wait {}", metrics.queue_wait);
    eprintln!("sctool serve: latency    {}", metrics.latency);
    if telemetry {
        eprintln!(
            "sctool serve: stats trigger=shutdown {}",
            sc_telemetry::stats_line()
        );
    }
    Ok(())
}

/// Pulls a `key=value` integer field out of a protocol response line.
fn response_field(line: &str, key: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=')?.parse().ok())
}

/// `sctool client`: load generator for a `sctool serve --listen`
/// endpoint. Each connection pipelines its share of the queries (send
/// all lines, then read all responses) so the server can batch them
/// into shared scan epochs; the per-query `wait_us`/`us` fields of the
/// responses are tabulated into queue-wait and latency percentiles.
/// `--duplicates K` sends each spec K times (consecutive queries share
/// a spec; distinct groups advance the seed), exercising the server's
/// in-flight coalescing — the `coal=` responses are tallied alongside
/// cache hits.
fn client_cmd(args: &[String]) -> Result<(), String> {
    use std::net::TcpStream;
    use streaming_set_cover::service::protocol::{Reply, Request};
    use streaming_set_cover::service::{LatencyHistogram, QuerySpec};
    let addr = flag(args, "--connect").ok_or("client: missing --connect")?;
    let queries: usize = flag_or(args, "--queries", 8)?;
    // `--allow-busy`: a server under deliberate overload answers some
    // queries `err msg=busy`; count those as shed load instead of
    // failing the run, and require ok + busy to cover every query.
    let allow_busy = args.iter().any(|a| a == "--allow-busy");
    let concurrency: usize = flag_or(args, "--concurrency", 1)?;
    let concurrency = concurrency.clamp(1, queries.max(1));
    let duplicates: usize = flag_or(args, "--duplicates", 1)?;
    let duplicates = duplicates.max(1);
    // `--repo NAME`: every connection retargets itself at a named
    // repository with `!use NAME` before pipelining its queries.
    let repo = flag(args, "--repo");
    let spec = flag(args, "--spec").unwrap_or_else(|| "iter delta=0.5".to_string());
    let base_spec = QuerySpec::parse(&spec).map_err(|e| format!("--spec: {e}"))?;
    // Query `q` (global index) belongs to duplicate group `q / K`; the
    // group advances the base spec's seed so groups are distinct while
    // the K queries inside one group are identical.
    let spec_of = move |q: usize| -> QuerySpec {
        let group = (q / duplicates) as u64;
        match base_spec {
            QuerySpec::IterCover { delta, seed } => QuerySpec::IterCover {
                delta,
                seed: seed + group,
            },
            QuerySpec::PartialCover {
                epsilon,
                delta,
                seed,
            } => QuerySpec::PartialCover {
                epsilon,
                delta,
                seed: seed + group,
            },
            QuerySpec::GreedyBaseline => QuerySpec::GreedyBaseline,
        }
    };
    if let Some(secs) = flag(args, "--wait-ready") {
        let secs: u64 = secs
            .parse()
            .map_err(|_| format!("bad value for --wait-ready: {secs:?}"))?;
        streaming_set_cover::service::net::wait_ready(&addr, std::time::Duration::from_secs(secs))
            .map_err(|e| format!("client: {e}"))?;
    }

    #[derive(Default)]
    struct Tally {
        ok: usize,
        /// Queries the server shed with `err msg=busy` (only counted
        /// under `--allow-busy`).
        busy: usize,
        cached: usize,
        coalesced: usize,
        /// Responses per server repository generation (`gen=` field) —
        /// shows which generation(s) answered when the repository was
        /// hot-swapped mid-load.
        generations: std::collections::BTreeMap<u64, usize>,
        queue_wait: LatencyHistogram,
        latency: LatencyHistogram,
    }
    let start = std::time::Instant::now();
    let total = std::sync::Mutex::new(Tally::default());
    std::thread::scope(|s| -> Result<(), String> {
        let mut workers = Vec::new();
        let mut start_index = 0usize;
        for c in 0..concurrency {
            // Spread the remainder over the first connections; each
            // connection owns a contiguous global index range so
            // duplicate groups are stable across concurrency levels.
            let share = queries / concurrency + usize::from(c < queries % concurrency);
            let first = start_index;
            start_index += share;
            if share == 0 {
                continue;
            }
            let (addr, total, spec_of, repo) = (&addr, &total, &spec_of, &repo);
            workers.push(s.spawn(move || -> Result<(), String> {
                let conn = TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
                let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
                let mut writer = &conn;
                if let Some(name) = repo {
                    // Retarget before pipelining, and confirm the ack so
                    // a typo'd name fails fast instead of miscounting
                    // query responses downstream.
                    let retarget = Request::Use { repo: name.clone() };
                    writeln!(writer, "{}", retarget.render()).map_err(|e| e.to_string())?;
                    writer.flush().map_err(|e| e.to_string())?;
                    let mut ack = String::new();
                    reader.read_line(&mut ack).map_err(|e| e.to_string())?;
                    if !ack.starts_with("ok use ") {
                        return Err(format!("--repo {name}: {}", ack.trim_end()));
                    }
                }
                // A server over its connection limit answers one busy
                // line and hangs up; under --allow-busy the writes may
                // hit the closed socket (broken pipe) — swallow that and
                // let the read loop below find the busy line.
                let sent = (|| -> Result<(), String> {
                    for q in first..first + share {
                        let request = Request::Query {
                            repo: None,
                            spec: spec_of(q),
                        };
                        writeln!(writer, "{}", request.render()).map_err(|e| e.to_string())?;
                    }
                    writer.flush().map_err(|e| e.to_string())
                })();
                if let Err(e) = sent {
                    if !allow_busy {
                        return Err(e);
                    }
                }
                let mut tally = Tally::default();
                let mut line = String::new();
                for answered in 0..share {
                    line.clear();
                    // After the hang-up a reset can surface as either
                    // EOF or a read error; both mean the rest of this
                    // connection's load was shed.
                    let n = match reader.read_line(&mut line) {
                        Ok(n) => n,
                        Err(_) if allow_busy && tally.busy > 0 => 0,
                        Err(e) => return Err(e.to_string()),
                    };
                    if n == 0 {
                        if allow_busy && tally.busy > 0 {
                            tally.busy += share - answered;
                            break;
                        }
                        return Err("server closed the connection early".into());
                    }
                    if line.starts_with("ok") {
                        tally.ok += 1;
                        tally.cached += usize::from(response_field(&line, "cached") == Some(1));
                        tally.coalesced += usize::from(response_field(&line, "coal") == Some(1));
                        if let Some(generation) = response_field(&line, "gen") {
                            *tally.generations.entry(generation).or_default() += 1;
                        }
                        if let Some(us) = response_field(&line, "wait_us") {
                            tally
                                .queue_wait
                                .record(std::time::Duration::from_micros(us));
                        }
                        if let Some(us) = response_field(&line, "us") {
                            tally.latency.record(std::time::Duration::from_micros(us));
                        }
                    } else if allow_busy && line.trim_end() == Reply::Busy.render() {
                        tally.busy += 1;
                    } else {
                        eprintln!("sctool client: {}", line.trim_end());
                    }
                }
                let mut total = total.lock().expect("tally poisoned");
                total.ok += tally.ok;
                total.busy += tally.busy;
                total.cached += tally.cached;
                total.coalesced += tally.coalesced;
                for (generation, count) in tally.generations {
                    *total.generations.entry(generation).or_default() += count;
                }
                total.queue_wait.merge(&tally.queue_wait);
                total.latency.merge(&tally.latency);
                Ok(())
            }));
        }
        for w in workers {
            w.join().expect("client thread panicked")?;
        }
        Ok(())
    })?;
    let elapsed = start.elapsed();
    let tally = total.into_inner().expect("tally poisoned");
    let (ok, busy) = (tally.ok, tally.busy);
    println!(
        "{queries} queries ({ok} ok, {busy} busy, {} cached, {} coalesced) over {concurrency} connection(s) in {:.1} ms → {:.1} queries/s",
        tally.cached,
        tally.coalesced,
        elapsed.as_secs_f64() * 1e3,
        queries as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    println!("queue wait {}", tally.queue_wait);
    println!("latency    {}", tally.latency);
    // Which server generation(s) answered — a hot swap mid-load shows
    // up as two generations here, with zero answers crossing them.
    let generations: Vec<String> = tally
        .generations
        .iter()
        .map(|(generation, count)| format!("gen {generation} × {count}"))
        .collect();
    if !generations.is_empty() {
        println!("answered from {}", generations.join(", "));
    }
    // `--stats` asks the server for its own tally right after the
    // burst: the `!stats` counters printed here sit next to the
    // client-side numbers above, so mismatches (e.g. answers served to
    // other clients, or a stats surface that stopped moving) are
    // visible in one terminal.
    if args.iter().any(|a| a == "--stats") {
        let conn = TcpStream::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
        let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
        let mut writer = &conn;
        writeln!(writer, "{}", Request::Stats.render()).map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| e.to_string())?;
        match line.trim_end().strip_prefix("ok stats ") {
            Some(stats) => println!("server stats: {stats}"),
            None => println!("server stats: unavailable ({})", line.trim_end()),
        }
    }
    if args.iter().any(|a| a == "--shutdown") {
        // Under deliberate overload the front door can still be at its
        // connection cap here — the burst sockets occupy sessions until
        // the poller reaps their EOFs — and then this connection is
        // shed with a busy line instead of carrying the shutdown.
        // Retry until a connection is admitted: an accepted `shutdown`
        // is acknowledged by the server closing the socket without
        // answering, so EOF means delivered and `err msg=busy` means
        // try again.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let conn = TcpStream::connect(&addr).map_err(|e| format!("{addr}: {e}"))?;
            let mut reader = BufReader::new(conn.try_clone().map_err(|e| e.to_string())?);
            let mut writer = &conn;
            writeln!(writer, "{}", Request::Shutdown.render()).map_err(|e| e.to_string())?;
            writer.flush().map_err(|e| e.to_string())?;
            let mut line = String::new();
            let n = reader.read_line(&mut line).unwrap_or(0);
            if n == 0 || line.trim_end() != Reply::Busy.render() {
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err("shutdown connection kept being shed with busy".to_string());
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
    // Every query must be accounted for: answered ok, or — under
    // `--allow-busy` — explicitly shed by the server.
    if ok + busy != queries {
        return Err(format!(
            "{} of {queries} queries did not return ok{}",
            queries - ok - busy,
            if allow_busy { " or busy" } else { "" },
        ));
    }
    Ok(())
}

fn exact_cmd(args: &[String]) -> Result<(), String> {
    let inst = load_from_arg(args, 0)?;
    let budget: u64 = flag_or(args, "--budget", 50_000_000)?;
    let sets = inst.system.all_bitsets();
    let target = BitSet::full(inst.system.universe());
    match offline::exact(&sets, &target, budget) {
        Some(outcome) => {
            println!(
                "optimum {}: {} sets after {} nodes{}",
                if outcome.optimal {
                    "(certified)"
                } else {
                    "(budget-limited upper bound)"
                },
                outcome.cover.len(),
                outcome.nodes,
                if outcome.optimal {
                    ""
                } else {
                    " — raise --budget to certify"
                },
            );
            let ids: Vec<String> = outcome.cover.iter().map(|i| i.to_string()).collect();
            println!("cover: {}", ids.join(" "));
            Ok(())
        }
        None => Err("instance is not coverable".into()),
    }
}
