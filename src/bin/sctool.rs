//! `sctool` — generate, inspect, and solve set cover instances from the
//! command line.
//!
//! ```text
//! sctool gen planted --n 2048 --m 4096 --k 16 --seed 7 > inst.sc
//! sctool info inst.sc
//! sctool solve iter inst.sc --delta 0.5
//! sctool solve all inst.sc
//! sctool exact inst.sc
//! sctool certify inst.sc
//! sctool convert inst.sc inst.scb      # text -> SCB1 binary
//! sctool convert inst.scb roundtrip.sc # binary -> text
//! ```
//!
//! Instance files are text (`sc_setsystem::io`) or `SCB1` binary
//! (`sc_setsystem::binary`); readers sniff the magic, so either format
//! works wherever a file is accepted.

use std::fs::File;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;

use streaming_set_cover::bitset::BitSet;
use streaming_set_cover::offline;
use streaming_set_cover::prelude::*;
use streaming_set_cover::setsystem::binary as scbin;
use streaming_set_cover::setsystem::io as scio;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sctool: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  sctool gen <planted|noisy|uniform|zipf|sparse|adversarial> [--n N] [--m M] [--k K] [--p P] [--s S] [--theta T] [--max MAX] [--levels L] [--seed SEED] [--binary]
  sctool info <file>
  sctool solve <iter|dimv|store|onepick|progressive|sg|er|cw|akl|all> <file> [--delta D] [--passes P] [--alpha A] [--oracle greedy|exact|pd|lp]
  sctool exact <file> [--budget NODES]
  sctool certify <file>
  sctool convert <in> <out>              (format chosen by .scb extension)
  sctool geomgen <discs|rects|triangles|clustered|grid|twoline> [--n N] [--m M] [--k K] [--half H] [--seed SEED]
  sctool geomsolve <file> [--delta D] [--no-canonical] [--bg]

files: text format everywhere; SCB1 binary is sniffed by magic, use - for stdin (text only)";

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("gen") => gen_cmd(&args[1..]),
        Some("info") => info_cmd(&args[1..]),
        Some("solve") => solve_cmd(&args[1..]),
        Some("exact") => exact_cmd(&args[1..]),
        Some("certify") => certify_cmd(&args[1..]),
        Some("convert") => convert_cmd(&args[1..]),
        Some("geomgen") => geomgen_cmd(&args[1..]),
        Some("geomsolve") => geomsolve_cmd(&args[1..]),
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("missing command".into()),
    }
}

/// Fetches `--flag value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value for {name}: {v:?}")),
        None => Ok(default),
    }
}

fn gen_cmd(args: &[String]) -> Result<(), String> {
    let kind = args.first().ok_or("gen: missing generator")?;
    let n: usize = flag_or(args, "--n", 1024)?;
    let m: usize = flag_or(args, "--m", 2 * n)?;
    let k: usize = flag_or(args, "--k", 16)?;
    let seed: u64 = flag_or(args, "--seed", 0)?;
    let inst = match kind.as_str() {
        "planted" => gen::planted(n, m, k, seed),
        "noisy" => gen::planted_noisy(n, m, k, seed),
        "uniform" => {
            let p: f64 = flag_or(args, "--p", 0.01)?;
            gen::uniform_random(n, m, p, seed)
        }
        "zipf" => {
            let theta: f64 = flag_or(args, "--theta", 1.1)?;
            let max: usize = flag_or(args, "--max", n / 8)?;
            gen::zipf(n, m, theta, max.max(1), seed)
        }
        "sparse" => {
            let s: usize = flag_or(args, "--s", 8)?;
            gen::sparse(n, m, s, seed)
        }
        "adversarial" => {
            let levels: u32 = flag_or(args, "--levels", 6)?;
            gen::greedy_adversarial(levels)
        }
        other => return Err(format!("gen: unknown generator {other:?}")),
    };
    if args.iter().any(|a| a == "--binary") {
        let mut out = std::io::stdout().lock();
        scbin::write_instance_binary(&mut out, &inst).map_err(|e| format!("stdout: {e}"))?;
    } else {
        print!("{}", scio::to_string(&inst));
    }
    Ok(())
}

fn load(path: &str) -> Result<Instance, String> {
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut reader = BufReader::new(file);
    // Sniff the SCB1 magic without consuming the stream.
    let head = reader.fill_buf().map_err(|e| format!("{path}: {e}"))?;
    if head.starts_with(b"SCB1\n") {
        scbin::read_instance_binary(reader).map_err(|e| format!("{path}: {e}"))
    } else {
        scio::read_instance(reader).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_from_arg(args: &[String], at: usize) -> Result<Instance, String> {
    let path = args.get(at).ok_or("missing instance file")?;
    if path == "-" {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        scio::from_str(&text).map_err(|e| format!("stdin: {e}"))
    } else {
        load(path)
    }
}

fn info_cmd(args: &[String]) -> Result<(), String> {
    let inst = load_from_arg(args, 0)?;
    let s = &inst.system;
    println!("label      : {}", inst.label);
    println!("universe   : {}", s.universe());
    println!("sets       : {}", s.num_sets());
    println!("incidences : {}", s.total_size());
    println!("max |r|    : {}", s.max_set_size());
    println!("coverable  : {}", s.is_coverable());
    match &inst.planted {
        Some(p) => println!(
            "known cover: {} sets ({})",
            p.len(),
            match s.verify_cover(p) {
                Ok(()) => "valid",
                Err(_) => "INVALID",
            }
        ),
        None => println!("known cover: none"),
    }
    Ok(())
}

fn solve_cmd(args: &[String]) -> Result<(), String> {
    let which = args.first().ok_or("solve: missing algorithm")?.clone();
    let inst = load_from_arg(args, 1)?;
    let delta: f64 = flag_or(args, "--delta", 0.5)?;
    let passes: usize = flag_or(args, "--passes", 3)?;
    let alpha: f64 = flag_or(args, "--alpha", 4.0)?;
    let solver = match flag(args, "--oracle").as_deref() {
        None | Some("greedy") => OfflineSolver::Greedy,
        Some("exact") => OfflineSolver::DEFAULT_EXACT,
        Some("pd") => OfflineSolver::PrimalDual,
        Some("lp") => OfflineSolver::LpRound { seed: 0 },
        Some(other) => return Err(format!("solve: unknown oracle {other:?}")),
    };

    let mut algs: Vec<Box<dyn StreamingSetCover>> = Vec::new();
    let mut add = |name: &str| -> Result<(), String> {
        algs.push(match name {
            "iter" => Box::new(IterSetCover::new(IterSetCoverConfig {
                delta,
                solver,
                ..Default::default()
            })),
            "dimv" => Box::new(Dimv14::new(Dimv14Config {
                delta,
                solver,
                ..Default::default()
            })),
            "store" => Box::new(StoreAllGreedy),
            "onepick" => Box::new(OnePickPerPassGreedy),
            "progressive" => Box::new(ProgressiveGreedy),
            "sg" => Box::new(SahaGetoor::default()),
            "er" => Box::new(EmekRosen),
            "cw" => Box::new(ChakrabartiWirth::new(passes.max(1))),
            "akl" => Box::new(OnePassProjection {
                alpha: alpha.max(1.0),
                solver,
            }),
            other => return Err(format!("solve: unknown algorithm {other:?}")),
        });
        Ok(())
    };
    if which == "all" {
        for name in [
            "store",
            "onepick",
            "progressive",
            "sg",
            "er",
            "cw",
            "akl",
            "dimv",
            "iter",
        ] {
            add(name)?;
        }
    } else {
        add(&which)?;
    }

    for alg in &mut algs {
        let report = run_reported(alg.as_mut(), &inst.system);
        println!("{report}");
    }
    Ok(())
}

fn geomgen_cmd(args: &[String]) -> Result<(), String> {
    use streaming_set_cover::geometry::instances;
    let kind = args.first().ok_or("geomgen: missing family")?;
    let n: usize = flag_or(args, "--n", 500)?;
    let m: usize = flag_or(args, "--m", n / 2)?;
    let k: usize = flag_or(args, "--k", 8)?;
    let seed: u64 = flag_or(args, "--seed", 0)?;
    let inst = match kind.as_str() {
        "discs" => instances::random_discs(n, m, k, seed),
        "rects" => instances::random_rects(n, m, k, seed),
        "triangles" => instances::random_fat_triangles(n, m, k, seed),
        "clustered" => instances::clustered_discs(n, m, k, seed),
        "grid" => instances::grid_rects(n, m, seed),
        "twoline" => {
            let half: usize = flag_or(args, "--half", 32)?;
            instances::two_line(half, None, seed)
        }
        other => return Err(format!("geomgen: unknown family {other:?}")),
    };
    print!("{}", streaming_set_cover::geometry::io::to_string(&inst));
    Ok(())
}

fn geomsolve_cmd(args: &[String]) -> Result<(), String> {
    use streaming_set_cover::geometry::{io as gio, AlgGeomSc, AlgGeomScConfig};
    let path = args.first().ok_or("geomsolve: missing instance file")?;
    let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let inst = gio::read_instance(BufReader::new(file)).map_err(|e| format!("{path}: {e}"))?;
    let delta: f64 = flag_or(args, "--delta", 0.25)?;
    let decompose = !args.iter().any(|a| a == "--no-canonical");
    if args.iter().any(|a| a == "--bg") {
        use streaming_set_cover::geometry::{bronnimann_goodrich, BgConfig};
        let out = bronnimann_goodrich(&inst.points, &inst.shapes, &BgConfig::default())
            .ok_or("instance is not coverable")?;
        println!(
            "bronnimann-goodrich on {} (n={}, m={}): |sol|={} at guessed k={}, {} doublings, {} net draws — {}",
            inst.label,
            inst.points.len(),
            inst.shapes.len(),
            out.cover.len(),
            out.guessed_k,
            out.doublings,
            out.net_draws,
            match inst.verify_cover(&out.cover) {
                Ok(()) => "ok".to_string(),
                Err(e) => e,
            }
        );
        return Ok(());
    }
    let mut alg = AlgGeomSc::new(AlgGeomScConfig {
        delta,
        decompose_rects: decompose,
        ..Default::default()
    });
    let r = alg.run(&inst);
    println!(
        "algGeomSC(δ={delta}{}) on {} (n={}, m={})",
        if decompose { "" } else { ", no-canonical" },
        inst.label,
        inst.points.len(),
        inst.shapes.len()
    );
    println!(
        "|sol|={} passes={} space={} words, store ≤ {} candidates — {}",
        r.cover_size(),
        r.passes,
        r.space_words,
        r.max_store_candidates,
        match &r.verified {
            Ok(()) => "ok".to_string(),
            Err(e) => e.clone(),
        }
    );
    Ok(())
}

/// Prints the instant OPT sandwich: primal–dual dual witness (lower
/// bound), LP fractional value, and greedy cover (upper bound) — the
/// certificates that cost seconds instead of the exponential solver.
fn certify_cmd(args: &[String]) -> Result<(), String> {
    let inst = load_from_arg(args, 0)?;
    let sets = inst.system.all_bitsets();
    let target = BitSet::full(inst.system.universe());
    let pd = offline::primal_dual(&sets, &target).ok_or("instance is not coverable")?;
    let greedy = offline::greedy(&sets, &target).ok_or("instance is not coverable")?;
    let n = inst.system.universe();
    let frac = offline::fractional_mwu(
        &sets,
        &target,
        offline::lp::default_rounds(n.min(2048)),
        0.5,
    )
    .ok_or("instance is not coverable")?;
    println!(
        "dual lower bound : {} (primal–dual witness, certified)",
        pd.witness.len()
    );
    println!(
        "LP fractional    : {:.2} (MWU, {} rounds{})",
        frac.value,
        frac.rounds,
        if frac.patched > 0 {
            ", UNCONVERGED"
        } else {
            ""
        }
    );
    println!(
        "primal–dual cover: {} (f = {})",
        pd.cover.len(),
        pd.max_frequency
    );
    println!(
        "greedy cover     : {} (ρ = ln n + 1 ≈ {:.1})",
        greedy.len(),
        (n.max(2) as f64).ln() + 1.0
    );
    println!(
        "⇒ OPT ∈ [{}, {}]",
        pd.witness.len().max(frac.value.floor() as usize).max(1),
        greedy.len().min(pd.cover.len())
    );
    Ok(())
}

/// Converts between the text and `SCB1` binary formats; the output
/// format follows the output extension (`.scb` = binary).
fn convert_cmd(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("convert: missing input file")?;
    let output = args.get(1).ok_or("convert: missing output file")?;
    let inst = load(input)?;
    let file = File::create(output).map_err(|e| format!("{output}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    if output.ends_with(".scb") {
        scbin::write_instance_binary(&mut w, &inst).map_err(|e| format!("{output}: {e}"))?;
    } else {
        scio::write_instance(&mut w, &inst).map_err(|e| format!("{output}: {e}"))?;
    }
    w.flush().map_err(|e| format!("{output}: {e}"))?;
    println!(
        "wrote {} ({} sets, {} incidences) as {}",
        output,
        inst.system.num_sets(),
        inst.system.total_size(),
        if output.ends_with(".scb") {
            "SCB1 binary"
        } else {
            "text"
        }
    );
    Ok(())
}

fn exact_cmd(args: &[String]) -> Result<(), String> {
    let inst = load_from_arg(args, 0)?;
    let budget: u64 = flag_or(args, "--budget", 50_000_000)?;
    let sets = inst.system.all_bitsets();
    let target = BitSet::full(inst.system.universe());
    match offline::exact(&sets, &target, budget) {
        Some(outcome) => {
            println!(
                "optimum {}: {} sets after {} nodes{}",
                if outcome.optimal {
                    "(certified)"
                } else {
                    "(budget-limited upper bound)"
                },
                outcome.cover.len(),
                outcome.nodes,
                if outcome.optimal {
                    ""
                } else {
                    " — raise --budget to certify"
                },
            );
            let ids: Vec<String> = outcome.cover.iter().map(|i| i.to_string()).collect();
            println!("cover: {}", ids.join(" "));
            Ok(())
        }
        None => Err("instance is not coverable".into()),
    }
}
