//! Element sampling: relative (p, ε)-approximations (Definition 2.4,
//! Lemma 2.5) and uniform sampling from a bitset.
//!
//! The correctness of `iterSetCover` hinges on one fact: a uniform
//! sample `S` of the uncovered elements of size
//! `c·ρ·k·n^δ·log m·log n` is, with probability `1 - m^{-c}`, a relative
//! `(p, ε)`-approximation for the family of *possible residual sets* `H`
//! (Lemma 2.6 with `p = 2/n^δ`, `ε = 1/2`). Covering the sample then
//! covers all but an `n^{-δ}` fraction of the ground set.

use rand::rngs::StdRng;
use rand::RngExt;
use sc_bitset::BitSet;
use sc_setsystem::ElemId;

/// Sample size required by Lemma 2.5 for a relative (p, ε)-approximation
/// with failure probability `q`, over a family of `ranges` ranges:
///
/// `(c′/(ε²·p)) · (log |F|·log(1/p) + log(1/q))`.
///
/// `c_prime` is the paper's unspecified absolute constant `c′`.
pub fn relative_approx_size(p: f64, eps: f64, q: f64, ranges: f64, c_prime: f64) -> usize {
    assert!(p > 0.0 && p < 1.0, "p={p} out of range");
    assert!(eps > 0.0 && eps < 1.0, "eps={eps} out of range");
    assert!(q > 0.0 && q < 1.0, "q={q} out of range");
    assert!(ranges >= 1.0);
    let lead = c_prime / (eps * eps * p);
    let body = ranges.ln().max(1.0) * (1.0 / p).ln().max(1.0) + (1.0 / q).ln();
    (lead * body).ceil() as usize
}

/// The sample size `⌈c·ρ·k·n^δ·log₂ m·log₂ n⌉` that `iterSetCover` draws
/// each iteration (Figure 1.3), before clamping to the live universe.
pub fn iter_set_cover_sample_size(
    c: f64,
    rho: f64,
    k: usize,
    n: usize,
    m: usize,
    delta: f64,
) -> usize {
    assert!(delta > 0.0 && delta <= 1.0, "delta={delta} out of range");
    let n = n.max(2) as f64;
    let m = m.max(2) as f64;
    let size = c * rho * k as f64 * n.powf(delta) * m.log2() * n.log2();
    size.ceil().max(1.0) as usize
}

/// Draws a uniform sample of `size` distinct elements from the members
/// of `live`, by single-scan reservoir sampling over the set bits.
///
/// Returns all members (sorted) when `size ≥ |live|`. The returned ids
/// are sorted in either case, which downstream code relies on for
/// rank-compaction.
pub fn sample_from_bitset(live: &BitSet, size: usize, rng: &mut StdRng) -> Vec<ElemId> {
    let mut reservoir = Vec::new();
    sample_from_bitset_into(live, size, rng, &mut reservoir);
    reservoir
}

/// [`sample_from_bitset`] into a caller-owned buffer, so per-iteration
/// samples can reuse one allocation. The buffer is cleared and its
/// capacity pinned to exactly `size.min(live.universe())` — the same
/// capacity a fresh draw would allocate, which keeps word-level space
/// accounting identical whether or not the buffer is reused.
pub fn sample_from_bitset_into(
    live: &BitSet,
    size: usize,
    rng: &mut StdRng,
    reservoir: &mut Vec<ElemId>,
) {
    let cap = size.min(live.universe());
    reservoir.clear();
    reservoir.shrink_to(cap);
    reservoir.reserve_exact(cap);
    if size == 0 {
        return;
    }
    for (seen, e) in live.ones().enumerate() {
        if seen < size {
            reservoir.push(e);
        } else {
            let j = rng.random_range(0..=seen);
            if j < size {
                reservoir[j] = e;
            }
        }
    }
    reservoir.sort_unstable();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn relative_approx_size_grows_with_tighter_params() {
        let base = relative_approx_size(0.1, 0.5, 0.01, 100.0, 1.0);
        assert!(
            relative_approx_size(0.05, 0.5, 0.01, 100.0, 1.0) > base,
            "smaller p costs more"
        );
        assert!(
            relative_approx_size(0.1, 0.25, 0.01, 100.0, 1.0) > base,
            "smaller eps costs more"
        );
        assert!(
            relative_approx_size(0.1, 0.5, 0.0001, 100.0, 1.0) > base,
            "smaller q costs more"
        );
        assert!(
            relative_approx_size(0.1, 0.5, 0.01, 10000.0, 1.0) > base,
            "more ranges cost more"
        );
    }

    #[test]
    fn iter_sample_size_scales_like_n_to_delta() {
        let s1 = iter_set_cover_sample_size(1.0, 1.0, 1, 1 << 10, 1 << 10, 0.5);
        let s2 = iter_set_cover_sample_size(1.0, 1.0, 1, 1 << 14, 1 << 14, 0.5);
        // n grew by 16, n^0.5 by 4, logs by (14/10)^2 ≈ 2 → ratio ≈ 8.
        let ratio = s2 as f64 / s1 as f64;
        assert!(ratio > 5.0 && ratio < 12.0, "ratio {ratio}");
    }

    #[test]
    fn sample_is_subset_without_replacement() {
        let mut rng = StdRng::seed_from_u64(1);
        let live = BitSet::from_iter(1000, (0..1000).filter(|e| e % 3 == 0));
        let sample = sample_from_bitset(&live, 50, &mut rng);
        assert_eq!(sample.len(), 50);
        assert!(sample.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        assert!(sample.iter().all(|&e| live.contains(e)));
    }

    #[test]
    fn oversized_request_returns_whole_set() {
        let mut rng = StdRng::seed_from_u64(2);
        let live = BitSet::from_iter(100, [5, 10, 15]);
        let sample = sample_from_bitset(&live, 10, &mut rng);
        assert_eq!(sample, vec![5, 10, 15]);
        assert!(sample_from_bitset(&live, 0, &mut rng).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        // Sample 1 element from {0,…,9} many times; each element should
        // appear a fair share of the time.
        let live = BitSet::full(10);
        let mut counts = [0u32; 10];
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20_000 {
            let s = sample_from_bitset(&live, 1, &mut rng);
            counts[s[0] as usize] += 1;
        }
        for (e, &c) in counts.iter().enumerate() {
            assert!(
                (1600..=2400).contains(&c),
                "element {e} drawn {c} times out of 20000 — not uniform"
            );
        }
    }
}
