//! Streaming set cover algorithms: the paper's contribution and every
//! baseline it compares against.
//!
//! The centrepiece is [`IterSetCover`], the `iterSetCover` algorithm of
//! Figure 1.3: `2/δ` passes, `Õ(mn^δ)` working memory, `O(ρ/δ)`
//! approximation (Theorem 2.8). The [`baselines`] module implements the
//! other rows of Figure 1.1 so the summary table can be regenerated
//! end-to-end:
//!
//! | Row | Type |
//! |-----|------|
//! | greedy, 1 pass, `O(mn)` space | [`baselines::StoreAllGreedy`] |
//! | greedy, ≤ n passes, `O(n)` space | [`baselines::OnePickPerPassGreedy`] |
//! | \[SG09\]-style `O(log n)` passes | [`baselines::ProgressiveGreedy`] |
//! | \[ER14\] one pass, `O(√n)`-approx | [`baselines::EmekRosen`] |
//! | \[CW16\] `p` passes, `(p+1)n^{1/(p+1)}`-approx | [`baselines::ChakrabartiWirth`] |
//! | \[DIMV14\] `O(4^{1/δ})` passes | [`baselines::Dimv14`] |
//! | \[AKL16\] one pass, `Õ(mn/α)` space | [`baselines::OnePassProjection`] |
//!
//! All algorithms implement [`sc_stream::StreamingSetCover`], so
//! [`sc_stream::run_reported`] measures passes, peak words, and solution
//! size uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod iter_set_cover;
pub mod multiplex;
pub mod partial;
pub mod partial_machine;
mod projstore;
pub mod sampling;
pub mod scan_driver;

pub use iter_set_cover::{GuessExecutor, IterSetCover, IterSetCoverConfig, IterationTrace};
pub use multiplex::IterCoverDriver;
pub use partial::{
    coverage_goal, run_partial, PartialChakrabartiWirth, PartialEmekRosen, PartialIterSetCover,
    PartialProgressiveGreedy, PartialReport, PartialStreamingSetCover,
};
pub use partial_machine::PartialCoverDriver;
pub use projstore::ProjStore;
pub use scan_driver::{GuessMachine, MachineOutcome, ScanDriver};
