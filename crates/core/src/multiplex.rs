//! The pass-multiplexed guess executor.
//!
//! Figure 1.3 runs all `log₂ n` guesses of `|OPT|` "in parallel": every
//! guess reads the same stream, so one physical scan of the repository
//! can feed them all. The accounting layer has always charged for that
//! ([`SetStream::absorb_parallel`] takes the *maximum* child pass
//! count), but the original executor replayed the scans sequentially —
//! a factor `log₂ n` more physical work than the model implies.
//!
//! This module closes the gap. Each guess becomes an explicit state
//! machine ([`GuessRun`]) whose phases mirror the algorithm:
//!
//! ```text
//! ┌─> Pass1 ──(offline solve)──> Pass2 ─┐     (× ⌈1/δ⌉ iterations)
//! └─────────────<──────────────────────-┘
//!        └──> Cleanup ──> Finished(Done | Failed)
//! ```
//!
//! The driver ([`IterCoverDriver`]) repeatedly asks which guesses still
//! want a scan, performs **one** shared physical pass via
//! [`SetStream::shared_pass`], and hands every item to every
//! participating guess. Between scans each guess does its non-streaming
//! work (sampling, the offline solve, iteration bookkeeping). Because
//! every guess keeps its own forked [`SetStream`] counter, forked
//! [`SpaceMeter`], and seeded RNG, and performs exactly the operations
//! of the sequential executor in exactly the same order, covers,
//! logical pass counts, and per-guess space peaks are identical to the
//! sequential path — the `multiplex_equivalence` integration test pins
//! all three. Wall-clock improves twice over: the repository is walked
//! `max` instead of `sum` times (and stays cache-hot across guesses
//! within a scan), and the per-item hot paths run on the word-batched
//! `sc_bitset` slice kernels instead of per-element loops.
//!
//! The driver is public so that a scheduler serving *many* queries can
//! apply the same trick one level up: `sc_service` admits several
//! [`IterCoverDriver`]s (and its other query machines) into shared
//! *scan epochs*, concatenating their [`participants`]
//! lists into one [`SetStream::shared_pass`] per epoch — physical scans
//! per epoch group = the maximum logical pass count over all admitted
//! queries, not the sum.
//!
//! [`participants`]: IterCoverDriver::participants
//!
//! [`SetStream::absorb_parallel`]: sc_stream::SetStream::absorb_parallel
//! [`SetStream::shared_pass`]: sc_stream::SetStream::shared_pass
//! [`SetStream`]: sc_stream::SetStream
//! [`SpaceMeter`]: sc_stream::SpaceMeter

use crate::iter_set_cover::{guess_rng_seed, iterations_for, offline_solve, sample_size_for};
use crate::projstore::ProjStore;
use crate::sampling::sample_from_bitset_into;
use crate::scan_driver::{GuessMachine, MachineOutcome, ScanDriver};
use crate::{IterSetCover, IterSetCoverConfig, IterationTrace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::{BitSet, HeapWords};
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, Tracked};

/// What a guess is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Consuming a scan: size test + projection storage (Figure 1.3).
    Pass1,
    /// Consuming a scan: recompute the uncovered set from emitted ids.
    Pass2,
    /// Consuming a scan: one arbitrary covering set per straggler.
    Cleanup,
    /// Released all state; `result` holds the outcome.
    Finished,
}

/// One guess `k`, runnable one stream item at a time.
struct GuessRun<'a> {
    k: usize,
    cfg: IterSetCoverConfig,
    universe: usize,
    max_iterations: usize,
    /// `sample_size(k, n, m)` — constant across iterations.
    sample_want: usize,
    stream: SetStream<'a>,
    meter: SpaceMeter,
    rng: StdRng,
    phase: Phase,
    iteration: usize,
    traces: Vec<IterationTrace>,
    /// `Some(cover)` when the guess finished, `None` when it failed;
    /// populated at `Finished`.
    result: Option<Vec<SetId>>,

    // Guess-lifetime tracked state (alive until `finish`).
    live: Option<Tracked<BitSet>>,
    in_sol: Option<Tracked<BitSet>>,
    sol: Option<Tracked<Vec<SetId>>>,

    // Pass-1 state (alive from `begin_iteration` to `finish_pass1`).
    sample: Option<Tracked<Vec<ElemId>>>,
    l_sample: Option<Tracked<BitSet>>,
    projections: Option<Tracked<ProjStore>>,
    threshold: f64,

    // Trace fields carried from pass 1 into the pass-2 trace push.
    uncovered_before: usize,
    sample_len: usize,
    heavy_picked: usize,
    small_stored: usize,
    projection_words: usize,
    offline_picked: usize,

    // Reused allocations. `spare_sample` / `spare_bitmap` hold the
    // released (uncharged) buffers between iterations so the next
    // `Tracked::new` recharges the same capacity a fresh allocation
    // would have; `scratch` is the unmetered projection gather buffer,
    // exactly as in the sequential executor.
    spare_sample: Vec<ElemId>,
    spare_bitmap: Option<BitSet>,
    scratch: Vec<ElemId>,
}

impl<'a> GuessRun<'a> {
    fn new(cfg: &IterSetCoverConfig, k: usize, stream: &SetStream<'a>, meter: &SpaceMeter) -> Self {
        let n = stream.universe();
        let m = stream.num_sets();
        let child_stream = stream.fork();
        let child_meter = meter.fork();
        let rng = StdRng::seed_from_u64(guess_rng_seed(cfg.seed, k));
        // Same charges, same order as the sequential executor: the
        // residual bitmap U, the membership mask of emitted sets, and
        // the emitted ids (read back during pass 2, so they stay
        // charged — Lemma 2.2).
        let live = Tracked::new(BitSet::full(n), &child_meter);
        let in_sol = Tracked::new(BitSet::new(m), &child_meter);
        let sol = Tracked::new(Vec::new(), &child_meter);
        let mut run = Self {
            k,
            cfg: *cfg,
            universe: n,
            max_iterations: iterations_for(cfg),
            sample_want: sample_size_for(cfg, k, n, m),
            stream: child_stream,
            meter: child_meter,
            rng,
            phase: Phase::Pass1, // placeholder; begin_iteration decides
            iteration: 0,
            traces: Vec::new(),
            result: None,
            live: Some(live),
            in_sol: Some(in_sol),
            sol: Some(sol),
            sample: None,
            l_sample: None,
            projections: None,
            threshold: 0.0,
            uncovered_before: 0,
            sample_len: 0,
            heavy_picked: 0,
            small_stored: 0,
            projection_words: 0,
            offline_picked: 0,
            spare_sample: Vec::new(),
            spare_bitmap: None,
            scratch: Vec::new(),
        };
        run.begin_iteration();
        run
    }

    /// `true` while the guess needs to join the next shared scan.
    fn wants_scan(&self) -> bool {
        self.phase != Phase::Finished
    }

    /// Feeds one stream item to the current phase.
    fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        match self.phase {
            Phase::Pass1 => self.pass1_item(id, elems),
            Phase::Pass2 => self.pass2_item(id, elems),
            Phase::Cleanup => self.cleanup_item(id, elems),
            Phase::Finished => unreachable!("finished guesses leave the scan group"),
        }
    }

    /// Runs the between-scan transition after a shared scan ends.
    fn end_scan(&mut self) {
        match self.phase {
            Phase::Pass1 => self.finish_pass1(),
            Phase::Pass2 => self.finish_pass2(),
            Phase::Cleanup => self.finish(),
            Phase::Finished => unreachable!("finished guesses leave the scan group"),
        }
    }

    /// Starts iteration `self.iteration`: draws the sample `S`, builds
    /// the leftover bitmap `L ← S`, and readies the projection store.
    fn begin_iteration(&mut self) {
        let live = self.live.as_ref().expect("live until finish");
        if self.iteration >= self.max_iterations || live.get().is_empty() {
            self.maybe_cleanup();
            return;
        }
        self.uncovered_before = live.get().count();
        let want = self.sample_want.min(self.uncovered_before);
        let mut buf = std::mem::take(&mut self.spare_sample);
        sample_from_bitset_into(live.get(), want, &mut self.rng, &mut buf);
        let sample = Tracked::new(buf, &self.meter);
        self.sample_len = sample.get().len();
        // L ← S, as a dense bitmap for O(1) membership tests; the spare
        // bitmap has the same capacity a fresh `from_iter` would.
        let mut bitmap = self
            .spare_bitmap
            .take()
            .unwrap_or_else(|| BitSet::new(self.universe));
        bitmap.clear_and_set_from_sorted(sample.get());
        let l_sample = Tracked::new(bitmap, &self.meter);
        self.threshold = self.sample_len as f64 / self.k as f64;
        self.projections = Some(Tracked::new(ProjStore::default(), &self.meter));
        self.sample = Some(sample);
        self.l_sample = Some(l_sample);
        self.heavy_picked = 0;
        self.phase = Phase::Pass1;
    }

    /// Pass 1, one set, solo path: compute the projection with the
    /// branch-free gather kernel, then run the size test. Used when
    /// this guess is the only one in pass 1 this round (the transposed
    /// mask would cost more to build than it saves).
    fn pass1_item(&mut self, id: SetId, elems: &[ElemId]) {
        // One kernel pass replaces the `contains`-filtered scratch
        // loop; the projection doubles as the size-test count.
        self.l_sample
            .as_ref()
            .expect("pass-1 state")
            .get()
            .intersect_sorted_into(elems, &mut self.scratch);
        if self.scratch.is_empty() {
            return;
        }
        if self.is_heavy(self.scratch.len()) {
            self.pass1_emit_heavy(id, elems);
        } else {
            let covered = std::mem::take(&mut self.scratch);
            self.pass1_store(id, &covered);
            self.scratch = covered;
        }
    }

    /// The size test of Figure 1.3 on a precomputed `|elems ∩ L|`.
    fn is_heavy(&self, count: usize) -> bool {
        !self.cfg.disable_size_test && count as f64 >= self.threshold
    }

    /// Emits one set into the solution: the id is pushed to the emitted
    /// list and recorded in the membership mask, in the exact order the
    /// sequential executor charges them.
    fn emit(&mut self, id: SetId) {
        self.sol
            .as_mut()
            .expect("live until finish")
            .mutate(&self.meter, |s| s.push(id));
        self.in_sol
            .as_mut()
            .expect("live until finish")
            .mutate(&self.meter, |s| {
                s.insert(id);
            });
    }

    /// Pass 1 heavy pick: emit the set and batch-remove it from `L`.
    /// Removing the whole set is equivalent to removing its covered
    /// elements — ids outside `L` are no-ops — so the caller never has
    /// to materialise the hit list.
    fn pass1_emit_heavy(&mut self, id: SetId, elems: &[ElemId]) {
        self.emit(id);
        self.heavy_picked += 1;
        self.l_sample
            .as_mut()
            .expect("pass-1 state")
            .mutate(&self.meter, |l| l.remove_sorted_slice(elems));
    }

    /// Pass 1 small set: store its projection `covered = elems ∩ L`
    /// (non-empty, ascending).
    fn pass1_store(&mut self, id: SetId, covered: &[ElemId]) {
        debug_assert!(!covered.is_empty());
        self.projections
            .as_mut()
            .expect("pass-1 state")
            .mutate(&self.meter, |p| p.push(id, covered));
    }

    /// After pass 1: offline solve on the residual sample, then release
    /// the iteration's stores (keeping the raw buffers for reuse).
    fn finish_pass1(&mut self) {
        let sample = self.sample.take().expect("pass-1 state");
        let l_sample = self.l_sample.take().expect("pass-1 state");
        let projections = self.projections.take().expect("pass-1 state");
        self.projection_words = projections.get().heap_words();
        self.small_stored = projections.get().len();
        match offline_solve(self.cfg.solver, &projections, &l_sample, &self.meter) {
            Some(picks) => {
                self.offline_picked = picks.len();
                for idx in picks {
                    let id = projections.get().set_id(idx);
                    self.emit(id);
                }
                let mut buf = sample.release(&self.meter);
                buf.clear();
                self.spare_sample = buf;
                self.spare_bitmap = Some(l_sample.release(&self.meter));
                let _ = projections.release(&self.meter);
                self.phase = Phase::Pass2;
            }
            None => {
                // Some sampled element is in no set at all: the
                // instance is not coverable. Abort the guess.
                let _ = sample.release(&self.meter);
                let _ = l_sample.release(&self.meter);
                let _ = projections.release(&self.meter);
                let _ = self
                    .live
                    .take()
                    .expect("live until finish")
                    .release(&self.meter);
                let _ = self
                    .in_sol
                    .take()
                    .expect("live until finish")
                    .release(&self.meter);
                let _ = self
                    .sol
                    .take()
                    .expect("live until finish")
                    .release(&self.meter);
                self.result = None;
                self.phase = Phase::Finished;
            }
        }
    }

    /// Pass 2, one set: recompute the uncovered set from emitted ids.
    fn pass2_item(&mut self, id: SetId, elems: &[ElemId]) {
        if self
            .in_sol
            .as_ref()
            .expect("live until finish")
            .get()
            .contains(id)
        {
            self.live
                .as_mut()
                .expect("live until finish")
                .mutate(&self.meter, |l| l.remove_sorted_slice(elems));
        }
    }

    /// After pass 2: record the iteration trace and advance.
    fn finish_pass2(&mut self) {
        self.traces.push(IterationTrace {
            k: self.k,
            iteration: self.iteration,
            uncovered_before: self.uncovered_before,
            sample_size: self.sample_len,
            heavy_picked: self.heavy_picked,
            small_stored: self.small_stored,
            projection_words: self.projection_words,
            offline_picked: self.offline_picked,
            uncovered_after: self.live.as_ref().expect("live until finish").get().count(),
        });
        self.iteration += 1;
        self.begin_iteration();
    }

    /// Cleanup, one set already known to cover at least one straggler
    /// (the caller's mask lookup found `elems ∩ live` non-empty): emit
    /// it and remove its elements. Returns `true` — the residual
    /// shrank — so the caller clears this guess's mask lane.
    fn cleanup_hit(&mut self, id: SetId, elems: &[ElemId]) -> bool {
        if self
            .in_sol
            .as_ref()
            .expect("live until finish")
            .get()
            .contains(id)
        {
            // Unreachable in practice: a set in the solution had its
            // elements removed from `live` in pass 2, so it cannot hit.
            return false;
        }
        self.emit(id);
        self.live
            .as_mut()
            .expect("live until finish")
            .mutate(&self.meter, |l| l.remove_sorted_slice(elems));
        true
    }

    /// Decides between the Section 4.2 straggler pass and finishing.
    fn maybe_cleanup(&mut self) {
        let live_empty = self
            .live
            .as_ref()
            .expect("live until finish")
            .get()
            .is_empty();
        if !live_empty && self.cfg.final_cleanup_pass {
            self.phase = Phase::Cleanup;
        } else {
            self.finish();
        }
    }

    /// Cleanup pass, one set, solo path: test for a straggler hit with
    /// the count kernel, then defer to [`cleanup_hit`](Self::cleanup_hit).
    fn cleanup_item(&mut self, id: SetId, elems: &[ElemId]) {
        let live = self.live.as_ref().expect("live until finish");
        if live.get().is_empty() {
            return; // mirrors the sequential executor's early break
        }
        if live.get().intersection_count_slice(elems) > 0 {
            self.cleanup_hit(id, elems);
        }
    }

    /// Releases everything and records the outcome.
    fn finish(&mut self) {
        let live = self.live.take().expect("live until finish");
        let done = live.get().is_empty();
        let _ = live.release(&self.meter);
        let _ = self
            .in_sol
            .take()
            .expect("live until finish")
            .release(&self.meter);
        let sol = self
            .sol
            .take()
            .expect("live until finish")
            .release(&self.meter);
        self.result = done.then_some(sol);
        self.phase = Phase::Finished;
    }
}

/// The multi-guess pass machine behind [`GuessExecutor::Multiplexed`](crate::GuessExecutor),
/// exposed so drivers other than [`IterSetCover::run`] — notably the
/// `sc_service` scan scheduler — can advance an `iterSetCover` query
/// one shared physical scan at a time while interleaving it with other
/// queries on the same repository.
///
/// The driver owns one [`GuessRun`] state machine per guess `k = 2^i`
/// (each with its own forked stream counter, forked space meter, and
/// seeded RNG) and performs exactly the operations of the sequential
/// executor in exactly the same order, so covers, logical pass counts,
/// space peaks, and iteration traces are bit-identical to a solo run —
/// the `multiplex_equivalence` test pins this.
///
/// # Scan protocol
///
/// ```text
/// while driver.wants_scan() {
///     driver.begin_scan();                      // build lane masks
///     let items = stream.shared_pass(&driver.participants());
///     for (id, elems) in items { driver.absorb(id, elems); }
///     driver.end_scan();                        // between-scan work
/// }
/// let (cover, traces) = driver.finish_into(&stream, &meter);
/// ```
///
/// The physical scan itself is the caller's: pass
/// [`participants`](Self::participants) to
/// [`SetStream::shared_pass`] (or [`sc_stream::ScanLedger::scan`]) so
/// every live guess logs its logical pass, then feed each item to
/// [`absorb`](Self::absorb). A scheduler serving many queries simply
/// concatenates the participant lists of all of its drivers before one
/// shared scan.
pub struct IterCoverDriver<'a> {
    inner: ScanDriver<'a, GuessRun<'a>>,
}

/// Driver-lifetime traversal-sharing scratch of the multiplexed
/// executor, rebuilt by [`GuessRun::begin_scan_group`] each scan.
///
/// The mask holds exactly the same bits as the guesses' own
/// (already-charged) `L` bitmaps in transposed order, so it adds
/// nothing to the model's space accounting: it is the simulation's
/// layout of the parallel branches' state, not a new algorithmic
/// store.
struct IterShared {
    /// Transposed leftover bitmaps: `sample_mask[e]` has bit `s` set iff
    /// element `e` is in lane `s`'s residual.
    sample_mask: Vec<u64>,
    lane_hits: Vec<Vec<ElemId>>,
    /// Guesses sharing the element traversal this scan.
    lanes: Vec<(usize, Phase)>,
    /// Guesses walking items through their per-guess kernels instead.
    solo: Vec<usize>,
    share_traversal: bool,
}

impl<'a> GuessMachine<'a> for GuessRun<'a> {
    type Shared = IterShared;

    fn make_shared(machines: &[Self]) -> IterShared {
        let n = machines.first().map_or(0, |m| m.universe);
        IterShared {
            sample_mask: vec![0; n],
            lane_hits: Vec::new(),
            lanes: Vec::new(),
            solo: Vec::new(),
            share_traversal: false,
        }
    }

    fn wants_scan(&self) -> bool {
        GuessRun::wants_scan(self)
    }

    fn stream(&self) -> &SetStream<'a> {
        &self.stream
    }

    fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        GuessRun::absorb(self, id, elems);
    }

    fn end_scan(&mut self) {
        GuessRun::end_scan(self);
    }

    fn into_outcome(self) -> MachineOutcome {
        debug_assert_eq!(self.phase, Phase::Finished);
        MachineOutcome {
            result: self.result,
            traces: self.traces,
            passes: self.stream.passes(),
            peak: self.meter.peak(),
        }
    }

    /// Builds the transposed residual masks for traversal sharing.
    ///
    /// Lanes: guesses sharing the element traversal this round — a
    /// pass-1 lane's residual is its leftover sample `L` (equal to
    /// the fresh sample at scan start), a cleanup lane's residual is
    /// its straggler set `live`. One shared walk of the repository
    /// feeds every lane (the repository is memory-bound, so walking
    /// it once beats walking it per guess even for dense residuals);
    /// a lone lane goes solo through the gather kernel instead,
    /// skipping the mask rebuild. `u64` lanes always suffice: there
    /// are at most log2(usize::MAX) + 1 = 64 guesses.
    fn begin_scan_group(machines: &mut [Self], scanning: &[usize], shared: &mut IterShared) {
        shared.lanes.clear();
        shared.solo.clear();
        for &g in scanning {
            match machines[g].phase {
                Phase::Pass1 | Phase::Cleanup => shared.lanes.push((g, machines[g].phase)),
                _ => shared.solo.push(g),
            }
        }
        if shared.lanes.len() < 2 {
            let lone = shared.lanes.drain(..).map(|(g, _)| g);
            shared.solo.extend(lone);
        }
        shared.share_traversal = !shared.lanes.is_empty();
        if shared.share_traversal {
            assert!(
                shared.lanes.len() <= 64,
                "more than 64 parallel guesses cannot occur"
            );
            shared.sample_mask.fill(0);
            shared.lane_hits.resize_with(shared.lanes.len(), Vec::new);
            for (s, &(g, phase)) in shared.lanes.iter().enumerate() {
                match phase {
                    Phase::Pass1 => {
                        // At scan start L equals the freshly drawn sample.
                        let sample = machines[g].sample.as_ref().expect("pass-1 state");
                        for &e in sample.get().iter() {
                            shared.sample_mask[e as usize] |= 1 << s;
                        }
                    }
                    Phase::Cleanup => {
                        let live = machines[g].live.as_ref().expect("live until finish");
                        for e in live.get().ones() {
                            shared.sample_mask[e as usize] |= 1 << s;
                        }
                    }
                    _ => unreachable!("only pass-1 and cleanup guesses become lanes"),
                }
            }
        }
    }

    fn absorb_group(
        machines: &mut [Self],
        _scanning: &[usize],
        shared: &mut IterShared,
        id: SetId,
        elems: &[ElemId],
    ) {
        if shared.share_traversal {
            // One walk over the set's elements feeds every lane:
            // each mask load yields all lanes containing that
            // element, and per-lane work is proportional to the
            // lane's actual hits, not to the set size.
            for &e in elems {
                let mut m = shared.sample_mask[e as usize];
                while m != 0 {
                    shared.lane_hits[m.trailing_zeros() as usize].push(e);
                    m &= m - 1;
                }
            }
            for (s, &(g, phase)) in shared.lanes.iter().enumerate() {
                if shared.lane_hits[s].is_empty() {
                    continue;
                }
                let shrank = match phase {
                    Phase::Pass1 => {
                        if machines[g].is_heavy(shared.lane_hits[s].len()) {
                            // Removing the hits (= elems ∩ L) is
                            // what the heavy pick does to L.
                            machines[g].pass1_emit_heavy(id, &shared.lane_hits[s]);
                            true
                        } else {
                            machines[g].pass1_store(id, &shared.lane_hits[s]);
                            false
                        }
                    }
                    Phase::Cleanup => machines[g].cleanup_hit(id, elems),
                    _ => unreachable!("only pass-1 and cleanup guesses become lanes"),
                };
                if shrank {
                    // The hit elements left this lane's residual,
                    // so they leave its mask lane too.
                    for &e in &shared.lane_hits[s] {
                        shared.sample_mask[e as usize] &= !(1 << s);
                    }
                }
                shared.lane_hits[s].clear();
            }
        }
        for &g in &shared.solo {
            GuessRun::absorb(&mut machines[g], id, elems);
        }
    }
}

impl<'a> IterCoverDriver<'a> {
    /// Spawns all `log₂ n` guess machines, forking per-guess streams
    /// and meters from `stream` / `meter` (the query's parent handles,
    /// absorbed back by [`finish_into`](Self::finish_into)).
    pub fn new(cfg: &IterSetCoverConfig, stream: &SetStream<'a>, meter: &SpaceMeter) -> Self {
        let n = stream.universe();
        // All guesses k = 2^i, 0 ≤ i ≤ log n, "in parallel" (Fig 1.3).
        let mut guesses = Vec::new();
        let mut i = 0u32;
        loop {
            let k = 1usize << i;
            guesses.push(GuessRun::new(cfg, k, stream, meter));
            if k >= n {
                break;
            }
            i += 1;
        }
        Self {
            inner: ScanDriver::new(guesses),
        }
    }

    /// `true` while at least one guess still needs a physical scan.
    /// Every scan the driver joins must include every guess that wants
    /// one, so physical scans = max logical passes.
    pub fn wants_scan(&self) -> bool {
        self.inner.wants_scan()
    }

    /// The 1-based index of the logical pass the query needs next (see
    /// [`ScanDriver::pass_index`]) — what a pass-aligned scheduler
    /// matches against the scan it splices this query into.
    pub fn pass_index(&self) -> usize {
        self.inner.pass_index()
    }

    /// Prepares the next scan: collects the participating guesses and
    /// builds the transposed residual masks for traversal sharing (see
    /// [`GuessMachine::begin_scan_group`] on the guess machine).
    pub fn begin_scan(&mut self) {
        self.inner.begin_scan();
    }

    /// The forked streams of the guesses joining the current scan, in
    /// guess order — hand these to [`SetStream::shared_pass`] so each
    /// logs its logical pass. Valid after [`begin_scan`](Self::begin_scan).
    pub fn participants(&self) -> Vec<&SetStream<'a>> {
        self.inner.participants()
    }

    /// Feeds one stream item to every participating guess.
    pub fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        self.inner.absorb(id, elems);
    }

    /// Feeds a run of stream items (see [`ScanDriver::absorb_items`]);
    /// items must arrive in repository order across the calls of one
    /// scan.
    pub fn absorb_items(&mut self, items: impl IntoIterator<Item = (SetId, &'a [ElemId])>) {
        self.inner.absorb_items(items);
    }

    /// Runs every participating guess's between-scan transition
    /// (offline solves, iteration bookkeeping, phase changes) after the
    /// caller exhausted the scan's items.
    pub fn end_scan(&mut self) {
        self.inner.end_scan();
    }

    /// Merges the finished guesses exactly as the sequential executor
    /// does and absorbs their pass counts (max) and space peaks (sum)
    /// into the parent stream and meter the driver was created from.
    /// Returns the best cover and the concatenated iteration traces.
    /// See [`ScanDriver::finish_into`] for the merge rule.
    pub fn finish_into(
        self,
        stream: &SetStream<'a>,
        meter: &SpaceMeter,
    ) -> (Vec<SetId>, Vec<IterationTrace>) {
        self.inner.finish_into(stream, meter)
    }
}

/// Advances all guesses through shared physical scans and merges their
/// results exactly as the sequential executor does.
pub(crate) fn run_multiplexed(
    alg: &mut IterSetCover,
    stream: &SetStream<'_>,
    meter: &SpaceMeter,
) -> Vec<SetId> {
    let mut driver = IterCoverDriver::new(alg.cfg(), stream, meter);
    // One shared physical scan per round; every guess that still needs
    // a pass participates, so physical scans = max logical passes.
    while driver.wants_scan() {
        driver.begin_scan();
        driver.absorb_items(stream.shared_pass(&driver.participants()));
        driver.end_scan();
    }
    let (cover, traces) = driver.finish_into(stream, meter);
    alg.traces.extend(traces);
    cover
}
