//! `iterSetCover` — the paper's main algorithm (Figure 1.3).
//!
//! One run with the correct guess `k ∈ [|OPT|, 2|OPT|)` performs `1/δ`
//! iterations of two passes each:
//!
//! 1. **Pass 1** — draw a uniform sample `S` of the uncovered elements;
//!    stream the family. A set covering at least `|S|/k` still-uncovered
//!    *sampled* elements is **heavy**: emit it immediately (no storage).
//!    A set covering fewer is **small**: store its projection onto the
//!    sample explicitly. Afterwards, run `algOfflineSC` on the stored
//!    projections to cover the rest of the sample.
//! 2. **Pass 2** — recompute the uncovered set (the algorithm only knows
//!    what its picks cover on the *sample*, not on the full ground set).
//!
//! Because `S` is a relative `(2/n^δ, ½)`-approximation for the family
//! of possible residuals (Lemma 2.6), each iteration shrinks the
//! uncovered set by a factor `n^δ` with high probability, so `1/δ`
//! iterations finish the job with `O(ρk)` sets per iteration —
//! Theorem 2.8's `O(ρ/δ)` approximation in `2/δ` passes and `Õ(mn^δ)`
//! space.
//!
//! The guess `k` is unknown, so all `log n` powers of two run "in
//! parallel"; the harness accounts passes as the maximum and space as
//! the sum across guesses, exactly as the paper does. By default the
//! guesses are also *executed* in parallel — the multiplexed driver in
//! [`crate::multiplex`] advances every guess's state machine through
//! one shared physical scan per logical pass, so wall-clock matches the
//! model instead of paying the `log₂ n` sequential-replay factor; set
//! [`GuessExecutor::Sequential`] to run the reference executor.

use crate::projstore::ProjStore;
use crate::sampling::{iter_set_cover_sample_size, sample_from_bitset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::{BitSet, HeapWords};
use sc_offline::OfflineSolver;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// How the `log₂ n` parallel guesses are physically executed.
///
/// Both executors are observationally identical — same covers, same
/// logical pass counts, same per-guess space peaks (pinned by the
/// `multiplex_equivalence` integration test) — they differ only in
/// wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GuessExecutor {
    /// Reference executor: each guess forks the stream and performs its
    /// own `2/δ + 1` physical scans, one guess after another — a factor
    /// `log₂ n` more physical scans than the model charges.
    Sequential,
    /// One shared physical scan per logical pass advances every live
    /// guess's state machine at once ([`SetStream::shared_pass`]), the
    /// way the paper's "do in parallel" actually executes. Hot paths
    /// run on the word-batched `sc_bitset` slice kernels.
    #[default]
    Multiplexed,
}

/// Configuration of [`IterSetCover`].
#[derive(Debug, Clone, Copy)]
pub struct IterSetCoverConfig {
    /// The trade-off parameter δ ∈ (0, 1]: `2/δ` passes, `Õ(mn^δ)` space.
    pub delta: f64,
    /// The offline oracle `algOfflineSC` (ρ = 1 exact or ρ = ln n greedy).
    pub solver: OfflineSolver,
    /// RNG seed; every run is deterministic given the seed.
    pub seed: u64,
    /// The constant `c` in the sample size of Figure 1.3.
    pub sample_constant: f64,
    /// Sample-size regime. `true` uses the paper's literal
    /// `c·ρ·k·n^δ·log₂m·log₂n` (which exceeds `n` at laptop scale and
    /// collapses the sample to the whole residual — correct, but it
    /// hides the space/pass trade-off). `false` uses `c·k·n^δ`, the same
    /// `n^δ` scaling with the polylog and ρ factors absorbed into `c`,
    /// which is what the benchmarks sweep. See EXPERIMENTS.md.
    pub paper_constants: bool,
    /// Add one final pass that covers any stragglers left after the
    /// `1/δ` iterations (one arbitrary covering set per element, the
    /// Section 4.2 trick). Without it a guess that fails to finish is
    /// discarded entirely.
    pub final_cleanup_pass: bool,
    /// Ablation switch: disable the "Size Test" of Figure 1.3, storing
    /// *every* intersecting set's projection and covering the sample
    /// purely offline. The paper's design insight is that emitting heavy
    /// sets immediately is what keeps the stored projections small
    /// (`O(|S|/k)` ids each); with the test off, projections of heavy
    /// sets are stored whole and the footprint balloons — experiment
    /// E12 measures by how much.
    pub disable_size_test: bool,
    /// Physical execution strategy for the parallel guesses; the
    /// default multiplexed executor shares one scan per logical pass.
    pub executor: GuessExecutor,
}

impl Default for IterSetCoverConfig {
    fn default() -> Self {
        Self {
            delta: 0.5,
            solver: OfflineSolver::Greedy,
            seed: 0,
            sample_constant: 1.0,
            paper_constants: false,
            final_cleanup_pass: true,
            disable_size_test: false,
            executor: GuessExecutor::default(),
        }
    }
}

/// Measurements from one iteration of one guess, for the Lemma 2.3/2.6
/// diagnostics (experiment E3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterationTrace {
    /// The guess of `|OPT|` this execution branch is running with.
    pub k: usize,
    /// Iteration number within the guess, from 0.
    pub iteration: usize,
    /// Uncovered elements when the iteration began.
    pub uncovered_before: usize,
    /// Sample size actually drawn (after clamping to the residual).
    pub sample_size: usize,
    /// Sets emitted by the size test (heavy sets).
    pub heavy_picked: usize,
    /// Small-set projections stored in memory.
    pub small_stored: usize,
    /// Words of projection storage at the iteration's peak.
    pub projection_words: usize,
    /// Sets emitted by the offline oracle.
    pub offline_picked: usize,
    /// Uncovered elements after pass 2.
    pub uncovered_after: usize,
}

/// The `iterSetCover` streaming algorithm (Figure 1.3, Theorem 2.8).
///
/// # Examples
///
/// ```
/// use sc_core::{IterSetCover, IterSetCoverConfig};
/// use sc_setsystem::gen;
/// use sc_stream::run_reported;
///
/// let inst = gen::planted(256, 512, 8, 7);
/// let mut alg = IterSetCover::new(IterSetCoverConfig::default());
/// let report = run_reported(&mut alg, &inst.system);
/// assert!(report.verified.is_ok());
/// // 2/δ passes plus the cleanup pass at most, per parallel accounting.
/// assert!(report.passes <= 5);
/// ```
#[derive(Debug)]
pub struct IterSetCover {
    cfg: IterSetCoverConfig,
    /// Per-iteration diagnostics for every guess, filled in by `run`.
    pub traces: Vec<IterationTrace>,
}

impl IterSetCover {
    /// Creates the algorithm with the given configuration.
    pub fn new(cfg: IterSetCoverConfig) -> Self {
        assert!(
            cfg.delta > 0.0 && cfg.delta <= 1.0,
            "delta must be in (0,1]"
        );
        assert!(cfg.sample_constant > 0.0);
        Self {
            cfg,
            traces: Vec::new(),
        }
    }

    /// Convenience constructor: default config with the given δ.
    pub fn with_delta(delta: f64) -> Self {
        Self::new(IterSetCoverConfig {
            delta,
            ..Default::default()
        })
    }

    /// Number of iterations per guess, `⌈1/δ⌉`.
    pub fn iterations(&self) -> usize {
        iterations_for(&self.cfg)
    }

    /// The active configuration.
    pub fn cfg(&self) -> &IterSetCoverConfig {
        &self.cfg
    }

    pub(crate) fn sample_size(&self, k: usize, n: usize, m: usize) -> usize {
        sample_size_for(&self.cfg, k, n, m)
    }

    /// Runs the branch for one guess `k`. Returns the emitted cover, or
    /// `None` when the branch could not finish (wrong guess).
    fn run_guess(
        &mut self,
        k: usize,
        stream: &SetStream<'_>,
        meter: &SpaceMeter,
        rng: &mut StdRng,
    ) -> Option<Vec<SetId>> {
        let n = stream.universe();
        let m = stream.num_sets();

        // Residual universe bitmap — the paper's U. O(n) bits.
        let mut live = Tracked::new(BitSet::full(n), meter);
        // Membership mask of emitted sets; the paper charges O(m log m)
        // bits for remembering picks (Lemma 2.2), we charge m bits.
        let mut in_sol = Tracked::new(BitSet::new(m), meter);
        // Emitted ids, read back during pass 2 — so they stay charged.
        let mut sol: Tracked<Vec<SetId>> = Tracked::new(Vec::new(), meter);

        for iteration in 0..self.iterations() {
            if live.get().is_empty() {
                break;
            }
            let uncovered_before = live.get().count();
            let want = self.sample_size(k, n, m).min(uncovered_before);
            let sample = Tracked::new(sample_from_bitset(live.get(), want, rng), meter);
            let sample_len = sample.get().len();
            // L ← S, as a dense bitmap for O(1) membership tests.
            let mut l_sample =
                Tracked::new(BitSet::from_iter(n, sample.get().iter().copied()), meter);
            let threshold = sample_len as f64 / k as f64;

            // Pass 1: size test. Heavy sets are emitted immediately;
            // small sets store their projection onto the sample.
            let mut projections = Tracked::new(ProjStore::default(), meter);
            let mut heavy_picked = 0usize;
            let mut scratch: Vec<ElemId> = Vec::new();
            for (id, elems) in stream.pass() {
                scratch.clear();
                scratch.extend(
                    elems
                        .iter()
                        .copied()
                        .filter(|&e| l_sample.get().contains(e)),
                );
                if scratch.is_empty() {
                    continue;
                }
                if !self.cfg.disable_size_test && scratch.len() as f64 >= threshold {
                    sol.mutate(meter, |s| s.push(id));
                    in_sol.mutate(meter, |s| {
                        s.insert(id);
                    });
                    heavy_picked += 1;
                    let covered = &scratch;
                    l_sample.mutate(meter, |l| {
                        for &e in covered {
                            l.remove(e);
                        }
                    });
                } else {
                    projections.mutate(meter, |p| p.push(id, &scratch));
                }
            }
            let projection_words = projections.get().heap_words();
            let small_stored = projections.get().len();

            let offline_picked;
            let picks = offline_solve(self.cfg.solver, &projections, &l_sample, meter);
            match picks {
                Some(picks) => {
                    offline_picked = picks.len();
                    for idx in picks {
                        let id = projections.get().set_id(idx);
                        sol.mutate(meter, |s| s.push(id));
                        in_sol.mutate(meter, |s| {
                            s.insert(id);
                        });
                    }
                }
                None => {
                    // Some sampled element is in no set at all: the
                    // instance is not coverable. Abort the guess.
                    let _ = sample.release(meter);
                    let _ = l_sample.release(meter);
                    let _ = projections.release(meter);
                    let _ = live.release(meter);
                    let _ = in_sol.release(meter);
                    let _ = sol.release(meter);
                    return None;
                }
            }
            let _ = sample.release(meter);
            let _ = l_sample.release(meter);
            let _ = projections.release(meter);

            // Pass 2: recompute the uncovered set from the emitted ids.
            for (id, elems) in stream.pass() {
                if in_sol.get().contains(id) {
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                }
            }

            self.traces.push(IterationTrace {
                k,
                iteration,
                uncovered_before,
                sample_size: sample_len,
                heavy_picked,
                small_stored,
                projection_words,
                offline_picked,
                uncovered_after: live.get().count(),
            });
        }

        // Stragglers: one extra pass, one arbitrary covering set each
        // (the Section 4.2 trick). Skipped when everything is covered.
        if !live.get().is_empty() && self.cfg.final_cleanup_pass {
            for (id, elems) in stream.pass() {
                if live.get().is_empty() {
                    break;
                }
                if in_sol.get().contains(id) {
                    continue;
                }
                if elems.iter().any(|&e| live.get().contains(e)) {
                    sol.mutate(meter, |s| s.push(id));
                    in_sol.mutate(meter, |s| {
                        s.insert(id);
                    });
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                }
            }
        }

        let done = live.get().is_empty();
        let _ = live.release(meter);
        let _ = in_sol.release(meter);
        let sol = sol.release(meter);
        done.then_some(sol)
    }
}

/// `algOfflineSC` on the residual sample — shared by both executors.
///
/// The greedy oracle runs straight on the stored sparse projections
/// ("linear space"); every other oracle (exact, primal–dual, LP
/// rounding) densifies in rank-compacted coordinates first. Elements
/// already covered by heavy sets are skipped in either case (the target
/// is the live sample bitmap). Returns `None` when some sampled element
/// is in no stored set at all — the instance is not coverable under
/// this guess.
pub(crate) fn offline_solve(
    solver: OfflineSolver,
    projections: &Tracked<ProjStore>,
    l_sample: &Tracked<BitSet>,
    meter: &SpaceMeter,
) -> Option<Vec<usize>> {
    if l_sample.get().is_empty() {
        return Some(Vec::new());
    }
    match solver {
        OfflineSolver::Greedy => {
            // Scratch for the oracle: one target-sized bitmap plus a
            // heap entry per stored set.
            let scratch_words = l_sample.get().as_words().len() + projections.get().len();
            meter.charge(scratch_words);
            let proj = projections.get();
            let picks = sc_offline::greedy_slices(proj.len(), |i| proj.elems(i), l_sample.get());
            meter.release(scratch_words);
            picks
        }
        _ => {
            // Dominance-filter the sparse projections before
            // densifying: only maximal projections can be needed, and
            // only they are charged.
            let proj = projections.get();
            let kept = sc_offline::dominance_filter_slices(proj.len(), |i| proj.elems(i));
            let remaining: Vec<ElemId> = l_sample.get().to_vec();
            let sub_universe = remaining.len();
            let sub_sets = Tracked::new(
                kept.iter()
                    .map(|&i| {
                        BitSet::from_iter(
                            sub_universe,
                            proj.elems(i)
                                .iter()
                                .filter_map(|e| remaining.binary_search(e).ok().map(|r| r as u32)),
                        )
                    })
                    .collect::<Vec<BitSet>>(),
                meter,
            );
            let target = BitSet::full(sub_universe);
            let picks = solver
                .solve(sub_sets.get(), &target)
                .ok()
                .map(|picks| picks.into_iter().map(|i| kept[i]).collect::<Vec<_>>());
            let _ = sub_sets.release(meter);
            picks
        }
    }
}

impl StreamingSetCover for IterSetCover {
    fn name(&self) -> String {
        format!(
            "iterSetCover(δ={}, ρ={}, c={}{}{}{})",
            self.cfg.delta,
            self.cfg.solver.label(),
            self.cfg.sample_constant,
            if self.cfg.paper_constants {
                ", paper-constants"
            } else {
                ""
            },
            if self.cfg.disable_size_test {
                ", no-size-test"
            } else {
                ""
            },
            if self.cfg.executor == GuessExecutor::Sequential {
                ", seq-guesses"
            } else {
                ""
            },
        )
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        self.traces.clear();
        let n = stream.universe();
        if n == 0 {
            return Vec::new();
        }
        match self.cfg.executor {
            GuessExecutor::Multiplexed => crate::multiplex::run_multiplexed(self, stream, meter),
            GuessExecutor::Sequential => self.run_sequential(stream, meter),
        }
    }
}

impl IterSetCover {
    /// The reference executor: one guess after another, each doing its
    /// own physical scans.
    fn run_sequential(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        // All guesses k = 2^i, 0 ≤ i ≤ log n, "in parallel" (Fig 1.3).
        let mut best: Option<Vec<SetId>> = None;
        let mut child_passes = Vec::new();
        let mut child_peaks = Vec::new();
        let mut i = 0u32;
        loop {
            let k = 1usize << i;
            let child_stream = stream.fork();
            let child_meter = meter.fork();
            let mut rng = StdRng::seed_from_u64(guess_rng_seed(self.cfg.seed, k));
            if let Some(sol) = self.run_guess(k, &child_stream, &child_meter, &mut rng) {
                if best.as_ref().is_none_or(|b| sol.len() < b.len()) {
                    best = Some(sol);
                }
            }
            child_passes.push(child_stream.passes());
            child_peaks.push(child_meter.peak());
            if k >= n {
                break;
            }
            i += 1;
        }
        stream.absorb_parallel(child_passes);
        meter.absorb_parallel(child_peaks);
        best.unwrap_or_default()
    }
}

/// Per-guess RNG seed — one fixed formula so both executors draw
/// identical sample streams for the same guess.
pub(crate) fn guess_rng_seed(seed: u64, k: usize) -> u64 {
    seed.wrapping_add(0x9e37_79b9 * k as u64)
}

/// `⌈1/δ⌉` iterations, derivable from the configuration alone so the
/// standalone driver ([`crate::multiplex::IterCoverDriver`]) does not
/// need an [`IterSetCover`] instance.
pub(crate) fn iterations_for(cfg: &IterSetCoverConfig) -> usize {
    (1.0 / cfg.delta).ceil() as usize
}

/// The per-iteration sample size for guess `k` under `cfg` — the same
/// formula [`IterSetCover::run`] uses, factored out for external
/// drivers.
pub(crate) fn sample_size_for(cfg: &IterSetCoverConfig, k: usize, n: usize, m: usize) -> usize {
    if cfg.paper_constants {
        let rho = cfg.solver.rho(n);
        iter_set_cover_sample_size(cfg.sample_constant, rho, k, n, m, cfg.delta)
    } else {
        let size = cfg.sample_constant * k as f64 * (n.max(2) as f64).powf(cfg.delta);
        size.ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn covers_planted_instance_with_bounded_ratio() {
        let inst = gen::planted(512, 1024, 16, 11);
        let mut alg = IterSetCover::new(IterSetCoverConfig::default());
        let report = run_reported(&mut alg, &inst.system);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
        let opt = inst.planted.as_ref().unwrap().len();
        assert!(
            report.cover_size() <= 8 * opt,
            "|sol|={} vs OPT={opt}",
            report.cover_size()
        );
    }

    #[test]
    fn pass_budget_respects_parallel_accounting() {
        let inst = gen::planted(256, 512, 8, 3);
        for delta in [1.0, 0.5, 0.25] {
            let mut alg = IterSetCover::with_delta(delta);
            let report = run_reported(&mut alg, &inst.system);
            assert!(report.verified.is_ok());
            let iters = (1.0 / delta).ceil() as usize;
            assert!(
                report.passes <= 2 * iters + 1,
                "δ={delta}: passes={} > {}",
                report.passes,
                2 * iters + 1
            );
        }
    }

    #[test]
    fn traces_show_residual_decay() {
        let inst = gen::planted(2048, 1024, 8, 5);
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            delta: 0.25,
            ..Default::default()
        });
        let _ = run_reported(&mut alg, &inst.system);
        // For each guess, residuals are non-increasing across iterations.
        for pair in alg.traces.windows(2) {
            if pair[0].k == pair[1].k {
                assert!(
                    pair[1].uncovered_before
                        <= pair[0].uncovered_after.max(pair[0].uncovered_before)
                );
            }
        }
        assert!(!alg.traces.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = gen::planted_noisy(300, 600, 10, 9);
        let mut a = IterSetCover::new(IterSetCoverConfig {
            seed: 42,
            ..Default::default()
        });
        let mut b = IterSetCover::new(IterSetCoverConfig {
            seed: 42,
            ..Default::default()
        });
        let ra = run_reported(&mut a, &inst.system);
        let rb = run_reported(&mut b, &inst.system);
        assert_eq!(ra.cover, rb.cover);
        assert_eq!(ra.space_words, rb.space_words);
    }

    #[test]
    fn uncoverable_instance_yields_flagged_report() {
        let system = sc_setsystem::SetSystem::from_sets(4, vec![vec![0, 1], vec![1, 2]]);
        let mut alg = IterSetCover::new(IterSetCoverConfig::default());
        let report = run_reported(&mut alg, &system);
        assert!(report.verified.is_err());
        assert!(report.cover.is_empty());
    }

    #[test]
    fn meter_balances_to_zero() {
        let inst = gen::planted(128, 256, 4, 1);
        let system = &inst.system;
        let stream = sc_stream::SetStream::new(system);
        let meter = SpaceMeter::new();
        let mut alg = IterSetCover::new(IterSetCoverConfig::default());
        let _ = alg.run(&stream, &meter);
        assert_eq!(meter.current(), 0, "all charges must be released");
        assert!(meter.peak() > 0);
    }

    #[test]
    fn exact_oracle_lowers_solution_size() {
        let inst = gen::planted(256, 400, 8, 17);
        let opt = inst.planted.as_ref().unwrap().len();
        let mut exact = IterSetCover::new(IterSetCoverConfig {
            solver: OfflineSolver::DEFAULT_EXACT,
            ..Default::default()
        });
        let report = run_reported(&mut exact, &inst.system);
        assert!(report.verified.is_ok());
        assert!(report.cover_size() <= 4 * opt);
    }

    #[test]
    fn paper_constants_mode_still_covers() {
        let inst = gen::planted(128, 200, 4, 23);
        let mut alg = IterSetCover::new(IterSetCoverConfig {
            paper_constants: true,
            ..Default::default()
        });
        let report = run_reported(&mut alg, &inst.system);
        assert!(report.verified.is_ok());
    }
}
