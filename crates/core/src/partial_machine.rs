//! The ε-partial `iterSetCover` as a pass state machine.
//!
//! [`crate::partial::PartialIterSetCover`] executes its guesses
//! sequentially, each performing its own physical scans. This module is
//! the driver-API form of the same algorithm: every guess becomes a
//! [`PartialGuessRun`] state machine
//!
//! ```text
//! ┌─> Pass1 ──(greedy on stored projections)──> Pass2 ─┐  (× ⌈1/δ⌉, or
//! └───────────────────<───────────────────────────────-┘   until the
//!        └──> GoalSweep ──> Finished(Done | Failed)         goal is met)
//! ```
//!
//! and [`PartialCoverDriver`] advances all of them through shared
//! physical scans, exactly as [`crate::multiplex::IterCoverDriver`]
//! does for the full-cover algorithm. Each guess keeps its own forked
//! [`SetStream`] counter, forked [`SpaceMeter`], and seeded RNG, and
//! performs the operations of the sequential path in the same order, so
//! covers, logical pass counts, and space peaks are identical — the
//! `partial_machine_equivalence` integration test pins all three.
//!
//! The driver exists for the serving layer: `sc_service` admits partial
//! queries into the same scan epochs as full-cover and baseline
//! queries, so one physical walk of the repository feeds them all.

use crate::iter_set_cover::sample_size_for;
use crate::partial::partial_guess_seed;
use crate::sampling::sample_from_bitset;
use crate::scan_driver::{GuessMachine, MachineOutcome, ScanDriver};
use crate::IterSetCoverConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, Tracked};

/// What a partial guess is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Consuming a scan: size test + projection storage.
    Pass1,
    /// Consuming a scan: recompute the uncovered set from emitted ids.
    Pass2,
    /// Consuming a scan: buy arbitrary covering sets until the goal.
    GoalSweep,
    /// Released all state; `result` holds the outcome.
    Finished,
}

/// One guess `k` of the ε-partial algorithm, runnable one stream item
/// at a time. Mirrors `PartialIterSetCover::run_guess` operation for
/// operation (including the order of every meter charge and release).
struct PartialGuessRun<'a> {
    k: usize,
    universe: usize,
    allowed_residual: usize,
    max_iterations: usize,
    sample_want: usize,
    stream: SetStream<'a>,
    meter: SpaceMeter,
    rng: StdRng,
    phase: Phase,
    iteration: usize,
    result: Option<Vec<SetId>>,

    // Guess-lifetime tracked state (alive until `finish`).
    live: Option<Tracked<BitSet>>,
    in_sol: Option<Tracked<BitSet>>,
    sol: Option<Tracked<Vec<SetId>>>,

    // Pass-1 state (alive from `begin_iteration` to `finish_pass1`).
    sample: Option<Tracked<Vec<ElemId>>>,
    l_sample: Option<Tracked<BitSet>>,
    proj_sets: Option<Tracked<Vec<SetId>>>,
    proj_elems: Option<Tracked<Vec<Vec<ElemId>>>>,
    threshold: f64,

    /// Unmetered per-item gather buffer, as in the sequential path.
    scratch: Vec<ElemId>,
}

impl<'a> PartialGuessRun<'a> {
    fn new(
        cfg: &IterSetCoverConfig,
        k: usize,
        required: usize,
        stream: &SetStream<'a>,
        meter: &SpaceMeter,
    ) -> Self {
        let n = stream.universe();
        let m = stream.num_sets();
        let child_stream = stream.fork();
        let child_meter = meter.fork();
        let rng = StdRng::seed_from_u64(partial_guess_seed(cfg.seed, k));
        // Same charges, same order as the sequential path.
        let live = Tracked::new(BitSet::full(n), &child_meter);
        let in_sol = Tracked::new(BitSet::new(m), &child_meter);
        let sol = Tracked::new(Vec::new(), &child_meter);
        let mut run = Self {
            k,
            universe: n,
            allowed_residual: n.saturating_sub(required),
            max_iterations: (1.0 / cfg.delta).ceil() as usize,
            sample_want: sample_size_for(cfg, k, n, m),
            stream: child_stream,
            meter: child_meter,
            rng,
            phase: Phase::Pass1, // placeholder; begin_iteration decides
            iteration: 0,
            result: None,
            live: Some(live),
            in_sol: Some(in_sol),
            sol: Some(sol),
            sample: None,
            l_sample: None,
            proj_sets: None,
            proj_elems: None,
            threshold: 0.0,
            scratch: Vec::new(),
        };
        run.begin_iteration();
        run
    }

    fn wants_scan(&self) -> bool {
        self.phase != Phase::Finished
    }

    fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        match self.phase {
            Phase::Pass1 => self.pass1_item(id, elems),
            Phase::Pass2 => self.pass2_item(id, elems),
            Phase::GoalSweep => self.goal_item(id, elems),
            Phase::Finished => unreachable!("finished guesses leave the scan group"),
        }
    }

    fn end_scan(&mut self) {
        match self.phase {
            Phase::Pass1 => self.finish_pass1(),
            Phase::Pass2 => self.finish_pass2(),
            Phase::GoalSweep => self.finish(),
            Phase::Finished => unreachable!("finished guesses leave the scan group"),
        }
    }

    /// Emits one set into the solution (id list + membership mask), in
    /// the exact order the sequential path charges them.
    fn emit(&mut self, id: SetId) {
        self.sol
            .as_mut()
            .expect("live until finish")
            .mutate(&self.meter, |s| s.push(id));
        self.in_sol
            .as_mut()
            .expect("live until finish")
            .mutate(&self.meter, |s| {
                s.insert(id);
            });
    }

    /// Starts iteration `self.iteration`, or moves on to the goal sweep
    /// / finish when the iteration budget or the goal is reached.
    fn begin_iteration(&mut self) {
        let live = self.live.as_ref().expect("live until finish");
        if self.iteration >= self.max_iterations || live.get().count() <= self.allowed_residual {
            self.maybe_goal_sweep();
            return;
        }
        let uncovered = live.get().count();
        let want = self.sample_want.min(uncovered);
        let sample = Tracked::new(
            sample_from_bitset(live.get(), want, &mut self.rng),
            &self.meter,
        );
        let sample_len = sample.get().len();
        let l_sample = Tracked::new(
            BitSet::from_iter(self.universe, sample.get().iter().copied()),
            &self.meter,
        );
        self.threshold = sample_len as f64 / self.k as f64;
        self.proj_sets = Some(Tracked::new(Vec::new(), &self.meter));
        self.proj_elems = Some(Tracked::new(Vec::new(), &self.meter));
        self.sample = Some(sample);
        self.l_sample = Some(l_sample);
        self.phase = Phase::Pass1;
    }

    /// Pass 1, one set: size test against the leftover sample; heavy
    /// sets are emitted, small sets store their projection.
    fn pass1_item(&mut self, id: SetId, elems: &[ElemId]) {
        let l_sample = self.l_sample.as_ref().expect("pass-1 state");
        self.scratch.clear();
        self.scratch.extend(
            elems
                .iter()
                .copied()
                .filter(|&e| l_sample.get().contains(e)),
        );
        if self.scratch.is_empty() {
            return;
        }
        if self.scratch.len() as f64 >= self.threshold {
            self.emit(id);
            let covered = std::mem::take(&mut self.scratch);
            self.l_sample
                .as_mut()
                .expect("pass-1 state")
                .mutate(&self.meter, |l| {
                    for &e in &covered {
                        l.remove(e);
                    }
                });
            self.scratch = covered;
        } else {
            self.proj_sets
                .as_mut()
                .expect("pass-1 state")
                .mutate(&self.meter, |p| p.push(id));
            let covered = self.scratch.clone();
            self.proj_elems
                .as_mut()
                .expect("pass-1 state")
                .mutate(&self.meter, |p| p.push(covered));
        }
    }

    /// After pass 1: greedy on the stored projections (the partial
    /// variant always uses the linear-space greedy oracle), then
    /// release the iteration's stores.
    fn finish_pass1(&mut self) {
        let sample = self.sample.take().expect("pass-1 state");
        let l_sample = self.l_sample.take().expect("pass-1 state");
        let proj_sets = self.proj_sets.take().expect("pass-1 state");
        let proj_elems = self.proj_elems.take().expect("pass-1 state");
        if !l_sample.get().is_empty() {
            let scratch_words = l_sample.get().as_words().len() + proj_sets.get().len();
            self.meter.charge(scratch_words);
            let elems = proj_elems.get();
            let picks =
                sc_offline::greedy_slices(elems.len(), |i| elems[i].as_slice(), l_sample.get());
            self.meter.release(scratch_words);
            let Some(picks) = picks else {
                // Some sampled element is in no set at all: abort.
                let _ = sample.release(&self.meter);
                let _ = l_sample.release(&self.meter);
                let _ = proj_sets.release(&self.meter);
                let _ = proj_elems.release(&self.meter);
                let _ = self
                    .live
                    .take()
                    .expect("live until finish")
                    .release(&self.meter);
                let _ = self
                    .in_sol
                    .take()
                    .expect("live until finish")
                    .release(&self.meter);
                let _ = self
                    .sol
                    .take()
                    .expect("live until finish")
                    .release(&self.meter);
                self.result = None;
                self.phase = Phase::Finished;
                return;
            };
            for idx in picks {
                let id = proj_sets.get()[idx];
                self.emit(id);
            }
        }
        let _ = sample.release(&self.meter);
        let _ = l_sample.release(&self.meter);
        let _ = proj_sets.release(&self.meter);
        let _ = proj_elems.release(&self.meter);
        self.phase = Phase::Pass2;
    }

    /// Pass 2, one set: recompute the uncovered set from emitted ids.
    fn pass2_item(&mut self, id: SetId, elems: &[ElemId]) {
        if self
            .in_sol
            .as_ref()
            .expect("live until finish")
            .get()
            .contains(id)
        {
            self.live
                .as_mut()
                .expect("live until finish")
                .mutate(&self.meter, |l| {
                    for &e in elems {
                        l.remove(e);
                    }
                });
        }
    }

    fn finish_pass2(&mut self) {
        self.iteration += 1;
        self.begin_iteration();
    }

    /// Decides between the goal sweep and finishing.
    fn maybe_goal_sweep(&mut self) {
        let live = self.live.as_ref().expect("live until finish");
        if live.get().count() > self.allowed_residual {
            self.phase = Phase::GoalSweep;
        } else {
            self.finish();
        }
    }

    /// Goal sweep, one set: like the cleanup pass, but only down to the
    /// goal — no-ops once the residual is small enough (the sequential
    /// path breaks out of the scan; skipping the remaining items is the
    /// same state transition).
    fn goal_item(&mut self, id: SetId, elems: &[ElemId]) {
        let live = self.live.as_ref().expect("live until finish");
        if live.get().count() <= self.allowed_residual {
            return;
        }
        if self
            .in_sol
            .as_ref()
            .expect("live until finish")
            .get()
            .contains(id)
        {
            return;
        }
        if elems.iter().any(|&e| live.get().contains(e)) {
            self.emit(id);
            self.live
                .as_mut()
                .expect("live until finish")
                .mutate(&self.meter, |l| {
                    for &e in elems {
                        l.remove(e);
                    }
                });
        }
    }

    /// Releases everything and records the outcome.
    fn finish(&mut self) {
        let live = self.live.take().expect("live until finish");
        let done = live.get().count() <= self.allowed_residual;
        let _ = live.release(&self.meter);
        let _ = self
            .in_sol
            .take()
            .expect("live until finish")
            .release(&self.meter);
        let sol = self
            .sol
            .take()
            .expect("live until finish")
            .release(&self.meter);
        self.result = done.then_some(sol);
        self.phase = Phase::Finished;
    }
}

/// Drives all guesses of one ε-partial `iterSetCover` query through
/// shared physical scans.
///
/// Same scan protocol as [`crate::multiplex::IterCoverDriver`]:
/// [`begin_scan`](Self::begin_scan), hand
/// [`participants`](Self::participants) to
/// [`SetStream::shared_pass`], [`absorb`](Self::absorb) every item,
/// [`end_scan`](Self::end_scan); once [`wants_scan`](Self::wants_scan)
/// turns false, [`finish_into`](Self::finish_into) merges the guesses
/// and absorbs pass/space accounting into the query's parent handles.
pub struct PartialCoverDriver<'a> {
    inner: ScanDriver<'a, PartialGuessRun<'a>>,
}

impl<'a> GuessMachine<'a> for PartialGuessRun<'a> {
    /// The ε-partial family shares no per-item state across guesses:
    /// every scanning guess absorbs every item itself (the default
    /// group hooks).
    type Shared = ();

    fn make_shared(_machines: &[Self]) -> Self::Shared {}

    fn wants_scan(&self) -> bool {
        PartialGuessRun::wants_scan(self)
    }

    fn stream(&self) -> &SetStream<'a> {
        &self.stream
    }

    fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        PartialGuessRun::absorb(self, id, elems);
    }

    fn end_scan(&mut self) {
        PartialGuessRun::end_scan(self);
    }

    fn into_outcome(self) -> MachineOutcome {
        debug_assert_eq!(self.phase, Phase::Finished);
        MachineOutcome {
            result: self.result,
            traces: Vec::new(),
            passes: self.stream.passes(),
            peak: self.meter.peak(),
        }
    }
}

impl<'a> PartialCoverDriver<'a> {
    /// Spawns the guess machines for a query that must cover at least
    /// `required` elements. With `required == 0` (or an empty universe)
    /// no guess is spawned and the query finishes with an empty cover,
    /// exactly as the sequential path returns early.
    pub fn new(
        cfg: &IterSetCoverConfig,
        required: usize,
        stream: &SetStream<'a>,
        meter: &SpaceMeter,
    ) -> Self {
        let n = stream.universe();
        let mut guesses = Vec::new();
        if n > 0 && required > 0 {
            let mut i = 0u32;
            loop {
                let k = 1usize << i;
                guesses.push(PartialGuessRun::new(cfg, k, required, stream, meter));
                if k >= n {
                    break;
                }
                i += 1;
            }
        }
        Self {
            inner: ScanDriver::new(guesses),
        }
    }

    /// `true` while at least one guess still needs a physical scan.
    pub fn wants_scan(&self) -> bool {
        self.inner.wants_scan()
    }

    /// The 1-based index of the logical pass the query needs next (see
    /// [`ScanDriver::pass_index`]) — what a pass-aligned scheduler
    /// matches against the scan it splices this query into.
    pub fn pass_index(&self) -> usize {
        self.inner.pass_index()
    }

    /// Collects the guesses participating in the next scan.
    pub fn begin_scan(&mut self) {
        self.inner.begin_scan();
    }

    /// The forked streams of the participating guesses — hand these to
    /// [`SetStream::shared_pass`] so each logs its logical pass. Valid
    /// after [`begin_scan`](Self::begin_scan).
    pub fn participants(&self) -> Vec<&SetStream<'a>> {
        self.inner.participants()
    }

    /// Feeds one stream item to every participating guess.
    pub fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        self.inner.absorb(id, elems);
    }

    /// Feeds a run of stream items (see [`ScanDriver::absorb_items`]);
    /// items must arrive in repository order across the calls of one
    /// scan.
    pub fn absorb_items(&mut self, items: impl IntoIterator<Item = (SetId, &'a [ElemId])>) {
        self.inner.absorb_items(items);
    }

    /// Runs every participating guess's between-scan transition.
    pub fn end_scan(&mut self) {
        self.inner.end_scan();
    }

    /// Merges the finished guesses (k ascending, first minimal cover
    /// wins — the sequential tie-break) and absorbs pass counts (max)
    /// and space peaks (sum) into the parent stream and meter. See
    /// [`ScanDriver::finish_into`] for the single-source merge rule.
    pub fn finish_into(self, stream: &SetStream<'a>, meter: &SpaceMeter) -> Vec<SetId> {
        self.inner.finish_into(stream, meter).0
    }
}
