//! Compact storage for small-set projections.
//!
//! Every space-bounded algorithm in this crate ends up storing "the set
//! `r ∩ L` explicitly in memory" (Figure 1.3) for many sets at once.
//! [`ProjStore`] is the shared container for that: one CSR-style buffer
//! of element ids plus per-set offsets — two ids per 64-bit word, and a
//! constant-time [`HeapWords`] measurement so `Tracked::mutate` stays
//! O(1) per push.

use sc_bitset::HeapWords;
use sc_setsystem::{ElemId, SetId};

/// A CSR-packed family of projected sets, remembering which stream set
/// each projection came from.
///
/// # Examples
///
/// ```
/// use sc_core::ProjStore;
///
/// let mut store = ProjStore::default();
/// store.push(7, &[1, 4, 9]);
/// store.push(3, &[2]);
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.set_id(0), 7);
/// assert_eq!(store.elems(0), &[1, 4, 9]);
/// assert_eq!(store.elems(1), &[2]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ProjStore {
    set_ids: Vec<SetId>,
    offsets: Vec<u32>,
    elems: Vec<ElemId>,
}

impl ProjStore {
    /// Appends the projection `proj` of stream set `id`.
    pub fn push(&mut self, id: SetId, proj: &[ElemId]) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.set_ids.push(id);
        self.elems.extend_from_slice(proj);
        self.offsets.push(self.elems.len() as u32);
    }

    /// Number of stored projections.
    pub fn len(&self) -> usize {
        self.set_ids.len()
    }

    /// `true` if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.set_ids.is_empty()
    }

    /// The stream id of the `i`-th stored projection.
    pub fn set_id(&self, i: usize) -> SetId {
        self.set_ids[i]
    }

    /// The element ids of the `i`-th stored projection, in push order.
    pub fn elems(&self, i: usize) -> &[ElemId] {
        &self.elems[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Total stored element ids across all projections.
    pub fn total_elems(&self) -> usize {
        self.elems.len()
    }

    /// Drops all stored projections, keeping the allocations (the next
    /// iteration's projections reuse them — and stay charged, exactly
    /// as [`HeapWords`] prescribes for reserved capacity).
    pub fn clear(&mut self) {
        self.set_ids.clear();
        self.offsets.clear();
        self.elems.clear();
    }
}

impl HeapWords for ProjStore {
    fn heap_words(&self) -> usize {
        let ids = (self.set_ids.capacity() * 4).div_ceil(8);
        let offs = (self.offsets.capacity() * 4).div_ceil(8);
        let elems = (self.elems.capacity() * 4).div_ceil(8);
        ids + offs + elems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut p = ProjStore::default();
        assert!(p.is_empty());
        p.push(5, &[1, 2, 3]);
        p.push(9, &[]);
        p.push(2, &[7]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.total_elems(), 4);
        assert_eq!((p.set_id(0), p.elems(0)), (5, &[1, 2, 3][..]));
        assert_eq!((p.set_id(1), p.elems(1)), (9, &[][..]));
        assert_eq!((p.set_id(2), p.elems(2)), (2, &[7][..]));
    }

    #[test]
    fn heap_words_track_capacity_not_length() {
        let mut p = ProjStore::default();
        for i in 0..100 {
            p.push(i, &[i]);
        }
        let grown = p.heap_words();
        assert!(grown >= 100, "100 ids + 100 elems ≥ 100 words");
        p.clear();
        assert_eq!(p.heap_words(), grown, "clear keeps reservations charged");
        assert!(p.is_empty());
    }
}
