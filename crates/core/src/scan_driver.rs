//! The generic scan-protocol driver shared by every multi-guess pass
//! machine.
//!
//! [`crate::multiplex::IterCoverDriver`] and
//! [`crate::partial_machine::PartialCoverDriver`] advance a family of
//! per-guess state machines through **shared physical scans**: collect
//! the guesses that still want a pass, hand their forked streams to
//! [`SetStream::shared_pass`] so each logs its logical pass, feed every
//! item to every participant, run the between-scan transitions, and —
//! once everyone finished — merge results (first minimal cover wins,
//! in guess order) and absorb pass counts (max) and space peaks (sum)
//! into the query's parent handles. That scaffolding used to be
//! duplicated per driver; [`ScanDriver`] makes it single-source, so the
//! merge/absorb rule is written exactly once before a third machine
//! appears.
//!
//! A machine family plugs in through [`GuessMachine`]: the per-guess
//! surface (`wants_scan` / `absorb` / `end_scan` / `into_outcome`) plus
//! two optional *group hooks* ([`GuessMachine::begin_scan_group`],
//! [`GuessMachine::absorb_group`]) for families that share per-item
//! work across guesses — the multiplexed `iterSetCover` uses them for
//! its transposed-residual-mask traversal sharing, while the ε-partial
//! machine keeps the defaults (each guess absorbs every item itself).
//!
//! # Scan protocol
//!
//! ```text
//! while driver.wants_scan() {
//!     driver.begin_scan();                      // rebuild the scanning list
//!     let items = stream.shared_pass(&driver.participants());
//!     for (id, elems) in items { driver.absorb(id, elems); }
//!     driver.end_scan();                        // between-scan work
//! }
//! let (cover, traces) = driver.finish_into(&stream, &meter);
//! ```
//!
//! [`SetStream::shared_pass`]: sc_stream::SetStream::shared_pass

use crate::IterationTrace;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter};
use std::marker::PhantomData;

/// What one finished guess machine reports back to the driver.
#[derive(Debug)]
pub struct MachineOutcome {
    /// `Some(cover)` when the guess met its goal, `None` when it
    /// failed or aborted.
    pub result: Option<Vec<SetId>>,
    /// Per-iteration diagnostics (empty for families that record none).
    pub traces: Vec<IterationTrace>,
    /// The guess's logical pass count (its forked stream's counter).
    pub passes: usize,
    /// The guess's peak working memory in words (its forked meter).
    pub peak: usize,
}

/// One guess of a multi-guess streaming algorithm, runnable one stream
/// item at a time, drivable by [`ScanDriver`].
///
/// Each machine owns a forked [`SetStream`] (its logical pass counter)
/// and performs exactly the operations of its sequential reference in
/// exactly the same order, so driving a family of machines through
/// shared scans changes *physical* work only — covers, logical pass
/// counts, and space peaks stay bit-identical.
pub trait GuessMachine<'a>: Sized {
    /// Driver-lifetime scratch shared across all machines of the family
    /// during a scan (e.g. the transposed residual masks of the
    /// multiplexed executor). Families without shared per-item state
    /// use `()`.
    type Shared;

    /// Builds the family's shared scratch once, at driver creation.
    fn make_shared(machines: &[Self]) -> Self::Shared;

    /// `true` while this guess needs to join the next physical scan.
    fn wants_scan(&self) -> bool;

    /// The guess's forked stream — handed to
    /// [`SetStream::shared_pass`](sc_stream::SetStream::shared_pass) so
    /// it logs one logical pass per scan it joins.
    fn stream(&self) -> &SetStream<'a>;

    /// Feeds one stream item to this machine alone (the solo path).
    fn absorb(&mut self, id: SetId, elems: &[ElemId]);

    /// Runs the between-scan transition after a scan's items end.
    fn end_scan(&mut self);

    /// Consumes the finished machine and reports its outcome.
    fn into_outcome(self) -> MachineOutcome;

    /// Group hook run once per scan after the driver rebuilt `scanning`
    /// (indices into `machines` of the guesses joining this scan).
    /// Families that share per-item traversal set up their scratch
    /// here; the default does nothing.
    fn begin_scan_group(machines: &mut [Self], scanning: &[usize], shared: &mut Self::Shared) {
        let _ = (machines, scanning, shared);
    }

    /// Group hook feeding one stream item to every scanning machine.
    /// The default calls [`absorb`](Self::absorb) per machine in
    /// `scanning` order; families with shared traversal override it.
    fn absorb_group(
        machines: &mut [Self],
        scanning: &[usize],
        shared: &mut Self::Shared,
        id: SetId,
        elems: &[ElemId],
    ) {
        let _ = shared;
        for &g in scanning {
            machines[g].absorb(id, elems);
        }
    }
}

/// Drives a family of [`GuessMachine`]s through shared physical scans
/// and merges their outcomes exactly as the sequential executors do.
///
/// The driver owns the scan-protocol scaffolding every machine family
/// needs — the scanning list, the participant collection, the
/// between-scan fan-out, and the merge/absorb accounting — while the
/// family supplies the per-guess state machines and (optionally) the
/// shared-traversal group hooks.
pub struct ScanDriver<'a, M: GuessMachine<'a>> {
    machines: Vec<M>,
    /// Machines joining the current scan (indices into `machines`),
    /// rebuilt by [`begin_scan`](Self::begin_scan).
    scanning: Vec<usize>,
    /// Scans this driver has fully completed (`end_scan` calls) — the
    /// driver-side half of pass-index tagging: the next scan it joins
    /// is logical pass `finished_scans + 1` of the query.
    finished_scans: usize,
    shared: M::Shared,
    _repo: PhantomData<&'a ()>,
}

impl<'a, M: GuessMachine<'a>> ScanDriver<'a, M> {
    /// Wraps an already-spawned machine family.
    pub fn new(machines: Vec<M>) -> Self {
        let shared = M::make_shared(&machines);
        Self {
            machines,
            scanning: Vec::new(),
            finished_scans: 0,
            shared,
            _repo: PhantomData,
        }
    }

    /// The 1-based index of the logical pass the driver needs next —
    /// the tag a pass-aligned scheduler matches against the scan it
    /// plans to splice this driver into (a fresh driver reports `1`).
    /// Meaningful while [`wants_scan`](Self::wants_scan) is `true`; it
    /// stops advancing once every machine finished.
    pub fn pass_index(&self) -> usize {
        self.finished_scans + 1
    }

    /// `true` while at least one machine still needs a physical scan.
    /// Every scan the driver joins must include every machine that
    /// wants one, so physical scans = max logical passes.
    pub fn wants_scan(&self) -> bool {
        self.machines.iter().any(M::wants_scan)
    }

    /// Prepares the next scan: rebuilds the scanning list and runs the
    /// family's [`begin_scan_group`](GuessMachine::begin_scan_group)
    /// hook.
    pub fn begin_scan(&mut self) {
        self.scanning.clear();
        self.scanning
            .extend((0..self.machines.len()).filter(|&g| self.machines[g].wants_scan()));
        debug_assert!(!self.scanning.is_empty(), "begin_scan on a finished driver");
        M::begin_scan_group(&mut self.machines, &self.scanning, &mut self.shared);
    }

    /// The forked streams of the machines joining the current scan, in
    /// guess order — hand these to
    /// [`SetStream::shared_pass`](sc_stream::SetStream::shared_pass)
    /// (or [`sc_stream::ScanLedger::scan`]) so each logs its logical
    /// pass. Valid after [`begin_scan`](Self::begin_scan).
    pub fn participants(&self) -> Vec<&SetStream<'a>> {
        self.scanning
            .iter()
            .map(|&g| self.machines[g].stream())
            .collect()
    }

    /// Feeds one stream item to every participating machine through the
    /// family's [`absorb_group`](GuessMachine::absorb_group) hook.
    pub fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        M::absorb_group(
            &mut self.machines,
            &self.scanning,
            &mut self.shared,
            id,
            elems,
        );
    }

    /// Feeds a run of stream items — the batch form of
    /// [`absorb`](Self::absorb), used by callers that hold the scan as
    /// an iterator or a sharded zero-copy feed
    /// ([`sc_stream::ShardedPass`]) rather than item by item. Items
    /// must arrive in repository order across the calls of one scan;
    /// feeding a scan as consecutive shard iterators satisfies that.
    pub fn absorb_items(&mut self, items: impl IntoIterator<Item = (SetId, &'a [ElemId])>) {
        for (id, elems) in items {
            self.absorb(id, elems);
        }
    }

    /// Runs every participating machine's between-scan transition
    /// (offline solves, iteration bookkeeping, phase changes) after the
    /// caller exhausted the scan's items.
    pub fn end_scan(&mut self) {
        for &g in &self.scanning {
            self.machines[g].end_scan();
        }
        self.finished_scans += 1;
    }

    /// Merges the finished machines exactly as the sequential executors
    /// do and absorbs their pass counts (max) and space peaks (sum)
    /// into the parent stream and meter the family was forked from.
    /// Returns the best cover and the concatenated iteration traces.
    ///
    /// Merge order is machine order (guess `k` ascending, matching the
    /// sequential paths): traces concatenate to the identical sequence,
    /// ties in the best-cover comparison resolve identically (first
    /// minimal cover wins), and the parent absorbs the same per-child
    /// pass counts and space peaks.
    pub fn finish_into(
        self,
        stream: &SetStream<'a>,
        meter: &SpaceMeter,
    ) -> (Vec<SetId>, Vec<IterationTrace>) {
        let mut best: Option<Vec<SetId>> = None;
        let mut traces = Vec::new();
        let mut child_passes = Vec::with_capacity(self.machines.len());
        let mut child_peaks = Vec::with_capacity(self.machines.len());
        for machine in self.machines {
            let outcome = machine.into_outcome();
            traces.extend(outcome.traces);
            if let Some(sol) = outcome.result {
                if best.as_ref().is_none_or(|b| sol.len() < b.len()) {
                    best = Some(sol);
                }
            }
            child_passes.push(outcome.passes);
            child_peaks.push(outcome.peak);
        }
        stream.absorb_parallel(child_passes);
        meter.absorb_parallel(child_peaks);
        (best.unwrap_or_default(), traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::SetSystem;

    /// A machine that wants `want` scans and records what it saw.
    struct Probe<'a> {
        stream: SetStream<'a>,
        want: usize,
        seen: Vec<SetId>,
        ended: usize,
        cover: Vec<SetId>,
    }

    impl<'a> GuessMachine<'a> for Probe<'a> {
        type Shared = ();

        fn make_shared(_machines: &[Self]) -> Self::Shared {}

        fn wants_scan(&self) -> bool {
            self.ended < self.want
        }

        fn stream(&self) -> &SetStream<'a> {
            &self.stream
        }

        fn absorb(&mut self, id: SetId, _elems: &[ElemId]) {
            self.seen.push(id);
        }

        fn end_scan(&mut self) {
            self.ended += 1;
        }

        fn into_outcome(self) -> MachineOutcome {
            MachineOutcome {
                result: Some(self.cover),
                traces: Vec::new(),
                passes: self.stream.passes(),
                peak: self.want, // stands in for a meter peak
            }
        }
    }

    #[test]
    fn drives_machines_to_their_individual_pass_counts() {
        let sys = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
        let root = SetStream::new(&sys);
        let meter = SpaceMeter::new();
        let mk = |want: usize, cover: Vec<SetId>| Probe {
            stream: root.fork(),
            want,
            seen: Vec::new(),
            ended: 0,
            cover,
        };
        let mut driver = ScanDriver::new(vec![mk(1, vec![0, 1]), mk(3, vec![2])]);
        let mut physical = 0;
        while driver.wants_scan() {
            driver.begin_scan();
            let items = root.shared_pass(&driver.participants());
            for (id, elems) in items {
                driver.absorb(id, elems);
            }
            driver.end_scan();
            physical += 1;
        }
        assert_eq!(physical, 3, "one shared scan per round, max over machines");
        let (cover, traces) = driver.finish_into(&root, &meter);
        // First minimal cover wins: the single-set cover of machine 2.
        assert_eq!(cover, vec![2]);
        assert!(traces.is_empty());
        assert_eq!(root.passes(), 3, "parent absorbed the max logical count");
        assert_eq!(meter.peak(), 1 + 3, "parent absorbed the summed peaks");
    }

    #[test]
    fn finished_machines_leave_the_scanning_list() {
        let sys = SetSystem::from_sets(2, vec![vec![0], vec![1]]);
        let root = SetStream::new(&sys);
        let short = Probe {
            stream: root.fork(),
            want: 1,
            seen: Vec::new(),
            ended: 0,
            cover: vec![0, 1],
        };
        let long = Probe {
            stream: root.fork(),
            want: 2,
            seen: Vec::new(),
            ended: 0,
            cover: vec![0, 1],
        };
        let mut driver = ScanDriver::new(vec![short, long]);
        driver.begin_scan();
        assert_eq!(driver.participants().len(), 2);
        for (id, elems) in root.shared_pass(&driver.participants()) {
            driver.absorb(id, elems);
        }
        driver.end_scan();
        driver.begin_scan();
        assert_eq!(driver.participants().len(), 1, "short machine retired");
    }
}
