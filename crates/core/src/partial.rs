//! ε-Partial Set Cover in the streaming model.
//!
//! The paper notes (Section 1, related work) that the \[ER14\] and \[CW16\]
//! results hold for the ε-Partial Set Cover problem — cover a `(1-ε)`
//! fraction of `U`, compared against the optimal *full* cover — and
//! `iterSetCover` supports it natively: its iterations shrink the
//! residual geometrically, so stopping once the residual reaches `ε·n`
//! simply truncates the loop after `⌈log(1/ε)/(δ·log n)⌉` iterations.
//! Fewer passes, the same per-iteration space, and no cleanup pass:
//! partial coverage is *cheaper* in exactly the way the analysis
//! predicts, which experiment E11 measures.
//!
//! Four algorithms implement [`PartialStreamingSetCover`]:
//! [`PartialIterSetCover`] (the paper's algorithm, truncated),
//! [`PartialEmekRosen`] and [`PartialChakrabartiWirth`] (the two
//! semi-streaming results the paper says extend to partial cover), and
//! [`PartialProgressiveGreedy`] (the threshold-halving baseline).

use crate::sampling::sample_from_bitset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId, SetSystem};
use sc_stream::{SetStream, SpaceMeter, Tracked};

/// Outcome of a partial-cover run.
#[derive(Debug, Clone)]
pub struct PartialReport {
    /// Algorithm label.
    pub algorithm: String,
    /// Emitted set ids.
    pub cover: Vec<SetId>,
    /// Elements covered.
    pub covered: usize,
    /// The goal `⌈(1-ε)·n⌉`.
    pub required: usize,
    /// Passes over the repository.
    pub passes: usize,
    /// Peak working memory in words.
    pub space_words: usize,
}

impl PartialReport {
    /// `true` iff the coverage goal was met.
    pub fn goal_met(&self) -> bool {
        self.covered >= self.required
    }

    /// Cover size.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }
}

/// A streaming algorithm that covers at least `required` elements.
pub trait PartialStreamingSetCover {
    /// Label with configuration.
    fn name(&self) -> String;

    /// Emits a partial cover reaching `required` elements (when the
    /// instance allows it).
    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter, required: usize) -> Vec<SetId>;
}

/// The coverage goal `⌈(1-ε)·n⌉` for a universe of `n` elements.
///
/// # Panics
///
/// Panics unless `ε ∈ [0, 1)`.
pub fn coverage_goal(n: usize, epsilon: f64) -> usize {
    assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0,1)");
    ((1.0 - epsilon) * n as f64).ceil() as usize
}

/// Per-guess RNG seed of the ε-partial `iterSetCover` — one fixed
/// formula so the sequential path and the state-machine driver
/// ([`crate::PartialCoverDriver`]) draw identical sample streams.
pub(crate) fn partial_guess_seed(seed: u64, k: usize) -> u64 {
    seed.wrapping_add(0x5bd1_e995 * k as u64)
}

/// Runs a partial-cover algorithm and measures coverage, passes, space.
pub fn run_partial(
    alg: &mut dyn PartialStreamingSetCover,
    system: &SetSystem,
    epsilon: f64,
) -> PartialReport {
    let n = system.universe();
    let required = coverage_goal(n, epsilon);
    let stream = SetStream::new(system);
    let meter = SpaceMeter::new();
    let cover = alg.run(&stream, &meter, required);

    let mut covered = BitSet::new(n);
    for &id in &cover {
        for &e in system.set(id) {
            covered.insert(e);
        }
    }
    PartialReport {
        algorithm: alg.name(),
        cover,
        covered: covered.count(),
        required,
        passes: stream.passes(),
        space_words: meter.peak(),
    }
}

/// ε-partial `iterSetCover`: the Figure 1.3 loop, stopped as soon as
/// the residual drops to `n - required`.
#[derive(Debug)]
pub struct PartialIterSetCover {
    /// Underlying configuration (δ, oracle, seed, constants).
    pub cfg: crate::IterSetCoverConfig,
}

impl PartialIterSetCover {
    /// Wraps a configuration.
    pub fn new(cfg: crate::IterSetCoverConfig) -> Self {
        Self { cfg }
    }

    fn sample_size(&self, k: usize, n: usize, m: usize) -> usize {
        crate::iter_set_cover::sample_size_for(&self.cfg, k, n, m)
    }

    fn run_guess(
        &self,
        k: usize,
        stream: &SetStream<'_>,
        meter: &SpaceMeter,
        rng: &mut StdRng,
        required: usize,
    ) -> Option<Vec<SetId>> {
        let n = stream.universe();
        let m = stream.num_sets();
        let allowed_residual = n.saturating_sub(required);
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut in_sol = Tracked::new(BitSet::new(m), meter);
        let mut sol: Tracked<Vec<SetId>> = Tracked::new(Vec::new(), meter);
        let iters = (1.0 / self.cfg.delta).ceil() as usize;

        for _ in 0..iters {
            if live.get().count() <= allowed_residual {
                break;
            }
            let uncovered = live.get().count();
            let want = self.sample_size(k, n, m).min(uncovered);
            let sample = Tracked::new(sample_from_bitset(live.get(), want, rng), meter);
            let sample_len = sample.get().len();
            let mut l_sample =
                Tracked::new(BitSet::from_iter(n, sample.get().iter().copied()), meter);
            let threshold = sample_len as f64 / k as f64;

            let mut proj_sets: Tracked<Vec<SetId>> = Tracked::new(Vec::new(), meter);
            let mut proj_elems: Tracked<Vec<Vec<ElemId>>> = Tracked::new(Vec::new(), meter);
            let mut scratch: Vec<ElemId> = Vec::new();
            for (id, elems) in stream.pass() {
                scratch.clear();
                scratch.extend(
                    elems
                        .iter()
                        .copied()
                        .filter(|&e| l_sample.get().contains(e)),
                );
                if scratch.is_empty() {
                    continue;
                }
                if scratch.len() as f64 >= threshold {
                    sol.mutate(meter, |s| s.push(id));
                    in_sol.mutate(meter, |s| {
                        s.insert(id);
                    });
                    let covered = &scratch;
                    l_sample.mutate(meter, |l| {
                        for &e in covered {
                            l.remove(e);
                        }
                    });
                } else {
                    proj_sets.mutate(meter, |p| p.push(id));
                    proj_elems.mutate(meter, |p| p.push(scratch.clone()));
                }
            }

            if !l_sample.get().is_empty() {
                let scratch_words = l_sample.get().as_words().len() + proj_sets.get().len();
                meter.charge(scratch_words);
                let elems = proj_elems.get();
                let picks =
                    sc_offline::greedy_slices(elems.len(), |i| elems[i].as_slice(), l_sample.get());
                meter.release(scratch_words);
                let Some(picks) = picks else {
                    let _ = sample.release(meter);
                    let _ = l_sample.release(meter);
                    let _ = proj_sets.release(meter);
                    let _ = proj_elems.release(meter);
                    let _ = live.release(meter);
                    let _ = in_sol.release(meter);
                    let _ = sol.release(meter);
                    return None;
                };
                for idx in picks {
                    let id = proj_sets.get()[idx];
                    sol.mutate(meter, |s| s.push(id));
                    in_sol.mutate(meter, |s| {
                        s.insert(id);
                    });
                }
            }
            let _ = sample.release(meter);
            let _ = l_sample.release(meter);
            let _ = proj_sets.release(meter);
            let _ = proj_elems.release(meter);

            for (id, elems) in stream.pass() {
                if in_sol.get().contains(id) {
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                }
            }
        }

        // Goal sweep: like the cleanup pass, but only down to the goal.
        if live.get().count() > allowed_residual {
            for (id, elems) in stream.pass() {
                if live.get().count() <= allowed_residual {
                    break;
                }
                if in_sol.get().contains(id) {
                    continue;
                }
                if elems.iter().any(|&e| live.get().contains(e)) {
                    sol.mutate(meter, |s| s.push(id));
                    in_sol.mutate(meter, |s| {
                        s.insert(id);
                    });
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                }
            }
        }

        let done = live.get().count() <= allowed_residual;
        let _ = live.release(meter);
        let _ = in_sol.release(meter);
        let sol = sol.release(meter);
        done.then_some(sol)
    }
}

impl PartialStreamingSetCover for PartialIterSetCover {
    fn name(&self) -> String {
        format!(
            "partial-iterSetCover(δ={}, ρ={})",
            self.cfg.delta,
            self.cfg.solver.label()
        )
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter, required: usize) -> Vec<SetId> {
        let n = stream.universe();
        if n == 0 || required == 0 {
            return Vec::new();
        }
        let mut best: Option<Vec<SetId>> = None;
        let mut child_passes = Vec::new();
        let mut child_peaks = Vec::new();
        let mut i = 0u32;
        loop {
            let k = 1usize << i;
            let cs = stream.fork();
            let cm = meter.fork();
            let mut rng = StdRng::seed_from_u64(partial_guess_seed(self.cfg.seed, k));
            if let Some(sol) = self.run_guess(k, &cs, &cm, &mut rng, required) {
                if best.as_ref().is_none_or(|b| sol.len() < b.len()) {
                    best = Some(sol);
                }
            }
            child_passes.push(cs.passes());
            child_peaks.push(cm.peak());
            if k >= n {
                break;
            }
            i += 1;
        }
        stream.absorb_parallel(child_passes);
        meter.absorb_parallel(child_peaks);
        best.unwrap_or_default()
    }
}

/// ε-partial progressive greedy: threshold halving that stops at the
/// coverage goal — the \[SG09\]/\[CW16\]-style baseline for partial cover.
#[derive(Debug, Default)]
pub struct PartialProgressiveGreedy;

impl PartialStreamingSetCover for PartialProgressiveGreedy {
    fn name(&self) -> String {
        "partial-progressive-greedy".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter, required: usize) -> Vec<SetId> {
        let n = stream.universe();
        let allowed_residual = n.saturating_sub(required);
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut sol = Vec::new();
        let mut threshold = n.max(1);
        loop {
            if live.get().count() <= allowed_residual {
                break;
            }
            for (id, elems) in stream.pass() {
                if live.get().count() <= allowed_residual {
                    break;
                }
                let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
                if gain >= threshold {
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                    sol.push(id);
                }
            }
            if threshold == 1 {
                break;
            }
            threshold /= 2;
        }
        let _ = live.release(meter);
        sol
    }
}

/// ε-partial Emek–Rosén: the one-pass `O(√n)` algorithm, with the
/// pointer-buying phase stopped at the coverage goal. The paper notes
/// (Section 1, related work) that the \[ER14\] upper *and lower* bounds
/// hold for ε-Partial Set Cover; this is the upper-bound side.
///
/// Partial coverage only helps the post-pass phase — the pass itself is
/// identical — so passes and space match the full-cover variant while
/// the cover shrinks by the skipped pointer purchases.
#[derive(Debug, Default)]
pub struct PartialEmekRosen;

impl PartialStreamingSetCover for PartialEmekRosen {
    fn name(&self) -> String {
        "partial-emek-rosen[ER14]".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter, required: usize) -> Vec<SetId> {
        let n = stream.universe();
        let allowed_residual = n.saturating_sub(required);
        let threshold = (n as f64).sqrt().ceil() as usize;
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut ptr: Tracked<Vec<u32>> = Tracked::new(vec![u32::MAX; n], meter);
        let mut sol = Vec::new();

        for (id, elems) in stream.pass() {
            let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
            if gain >= threshold.max(1) {
                live.mutate(meter, |l| {
                    for &e in elems {
                        l.remove(e);
                    }
                });
                sol.push(id);
            } else {
                ptr.mutate(meter, |p| {
                    for &e in elems {
                        if p[e as usize] == u32::MAX {
                            p[e as usize] = id;
                        }
                    }
                });
            }
        }

        // Buy pointers only until the goal is met. Preferring the
        // pointers shared by the most leftovers would be a second
        // greedy; the \[ER14\] guarantee needs only *any* order.
        if live.get().count() > allowed_residual {
            let mut bought = BitSet::new(stream.num_sets().max(1));
            meter.charge(bought.as_words().len());
            let leftovers: Vec<u32> = live.get().ones().collect();
            for e in leftovers {
                if live.get().count() <= allowed_residual {
                    break;
                }
                if !live.get().contains(e) {
                    continue; // an earlier purchase covered it
                }
                let p = ptr.get()[e as usize];
                if p != u32::MAX && bought.insert(p) {
                    sol.push(p);
                    live.mutate(meter, |l| l.remove(e));
                }
            }
            meter.release(bought.as_words().len());
        }

        let _ = ptr.release(meter);
        let _ = live.release(meter);
        sol
    }
}

/// ε-partial Chakrabarti–Wirth: the `p`-pass descending-threshold
/// algorithm with every phase cut off at the coverage goal — the other
/// semi-streaming result the paper points out extends to ε-Partial Set
/// Cover. Later passes are skipped entirely once the goal is met, so
/// larger ε buys *fewer passes*, not just a smaller cover.
#[derive(Debug, Clone, Copy)]
pub struct PartialChakrabartiWirth {
    /// Threshold passes `p ≥ 1`, as in
    /// [`crate::baselines::ChakrabartiWirth`].
    pub passes: usize,
}

impl PartialStreamingSetCover for PartialChakrabartiWirth {
    fn name(&self) -> String {
        format!("partial-chakrabarti-wirth[CW16](p={})", self.passes)
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter, required: usize) -> Vec<SetId> {
        assert!(self.passes >= 1, "need at least one pass");
        let n = stream.universe();
        let allowed_residual = n.saturating_sub(required);
        let p = self.passes;
        let beta = (n.max(1) as f64).powf(1.0 / (p as f64 + 1.0));

        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut sol = Vec::new();
        let mut ptr: Tracked<Vec<u32>> = Tracked::new(Vec::new(), meter);

        for j in 1..=p {
            if live.get().count() <= allowed_residual {
                break;
            }
            let threshold = (n as f64 / beta.powi(j as i32)).max(1.0);
            let last = j == p;
            if last {
                ptr.mutate(meter, |v| v.resize(n, u32::MAX));
            }
            for (id, elems) in stream.pass() {
                let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
                if gain as f64 >= threshold && live.get().count() > allowed_residual {
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                    sol.push(id);
                } else if last {
                    ptr.mutate(meter, |v| {
                        for &e in elems {
                            if v[e as usize] == u32::MAX {
                                v[e as usize] = id;
                            }
                        }
                    });
                }
            }
        }

        if live.get().count() > allowed_residual && !ptr.get().is_empty() {
            let mut bought = BitSet::new(stream.num_sets().max(1));
            meter.charge(bought.as_words().len());
            let leftovers: Vec<u32> = live.get().ones().collect();
            for e in leftovers {
                if live.get().count() <= allowed_residual {
                    break;
                }
                if !live.get().contains(e) {
                    continue;
                }
                let q = ptr.get()[e as usize];
                if q != u32::MAX && bought.insert(q) {
                    sol.push(q);
                    live.mutate(meter, |l| l.remove(e));
                }
            }
            meter.release(bought.as_words().len());
        }

        let _ = ptr.release(meter);
        let _ = live.release(meter);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterSetCoverConfig;
    use sc_setsystem::gen;

    #[test]
    fn partial_iter_meets_goal_with_fewer_passes() {
        let inst = gen::planted(1024, 1024, 8, 3);
        let mut full = crate::IterSetCover::with_delta(0.25);
        let full_report = sc_stream::run_reported(&mut full, &inst.system);
        assert!(full_report.verified.is_ok());

        let mut partial = PartialIterSetCover::new(IterSetCoverConfig {
            delta: 0.25,
            ..Default::default()
        });
        let report = run_partial(&mut partial, &inst.system, 0.2);
        assert!(
            report.goal_met(),
            "covered {}/{}",
            report.covered,
            report.required
        );
        assert!(
            report.passes <= full_report.passes,
            "partial {} vs full {}",
            report.passes,
            full_report.passes
        );
        assert!(report.cover_size() <= full_report.cover_size());
    }

    #[test]
    fn epsilon_zero_means_full_cover() {
        let inst = gen::planted(200, 300, 6, 5);
        let mut alg = PartialIterSetCover::new(IterSetCoverConfig::default());
        let report = run_partial(&mut alg, &inst.system, 0.0);
        assert!(report.goal_met());
        assert_eq!(report.covered, 200);
    }

    #[test]
    fn larger_epsilon_never_needs_more_sets() {
        let inst = gen::planted_noisy(400, 600, 10, 7);
        let mut sizes = Vec::new();
        for eps in [0.0, 0.1, 0.3, 0.5] {
            let mut alg = PartialIterSetCover::new(IterSetCoverConfig::default());
            let report = run_partial(&mut alg, &inst.system, eps);
            assert!(report.goal_met(), "ε={eps}");
            sizes.push(report.cover_size());
        }
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0] + 1),
            "sizes should be non-increasing-ish: {sizes:?}"
        );
    }

    #[test]
    fn partial_progressive_stops_early() {
        let inst = gen::planted(512, 256, 8, 9);
        let mut alg = PartialProgressiveGreedy;
        let report = run_partial(&mut alg, &inst.system, 0.25);
        assert!(report.goal_met());
        assert!(report.passes <= 10);
        let mut full = PartialProgressiveGreedy;
        let full_report = run_partial(&mut full, &inst.system, 0.0);
        assert!(full_report.goal_met());
        assert!(report.cover_size() <= full_report.cover_size());
    }

    #[test]
    fn partial_emek_rosen_meets_goal_in_one_pass() {
        let inst = gen::planted(900, 500, 6, 4);
        for eps in [0.0, 0.1, 0.4] {
            let mut alg = PartialEmekRosen;
            let report = run_partial(&mut alg, &inst.system, eps);
            assert!(
                report.goal_met(),
                "ε={eps}: {}/{}",
                report.covered,
                report.required
            );
            assert_eq!(report.passes, 1, "ε={eps}");
        }
        // Larger ε buys a (weakly) smaller cover.
        let full = run_partial(&mut PartialEmekRosen, &inst.system, 0.0);
        let half = run_partial(&mut PartialEmekRosen, &inst.system, 0.5);
        assert!(half.cover_size() <= full.cover_size());
    }

    #[test]
    fn partial_cw_skips_passes_at_large_epsilon() {
        let inst = gen::planted(1024, 600, 8, 6);
        let full = run_partial(
            &mut PartialChakrabartiWirth { passes: 4 },
            &inst.system,
            0.0,
        );
        assert!(full.goal_met());
        let loose = run_partial(
            &mut PartialChakrabartiWirth { passes: 4 },
            &inst.system,
            0.6,
        );
        assert!(loose.goal_met());
        assert!(
            loose.passes <= full.passes,
            "looser goal used more passes ({} > {})",
            loose.passes,
            full.passes
        );
        assert!(loose.cover_size() <= full.cover_size());
    }

    #[test]
    fn partial_baselines_against_iter_set_cover() {
        // All three ε-partial algorithms meet the same goal; the
        // iterSetCover variant should not be grossly worse in quality
        // than the semi-streaming ones on planted instances.
        let inst = gen::planted(512, 512, 8, 11);
        let eps = 0.2;
        let mut iter = PartialIterSetCover::new(IterSetCoverConfig::default());
        let a = run_partial(&mut iter, &inst.system, eps);
        let b = run_partial(&mut PartialEmekRosen, &inst.system, eps);
        let c = run_partial(
            &mut PartialChakrabartiWirth { passes: 3 },
            &inst.system,
            eps,
        );
        for r in [&a, &b, &c] {
            assert!(
                r.goal_met(),
                "{}: {}/{}",
                r.algorithm,
                r.covered,
                r.required
            );
        }
        assert!(a.cover_size() <= 3 * b.cover_size().max(c.cover_size()).max(1));
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0,1)")]
    fn epsilon_one_rejected() {
        let inst = gen::planted(10, 10, 2, 1);
        let mut alg = PartialProgressiveGreedy;
        let _ = run_partial(&mut alg, &inst.system, 1.0);
    }

    #[test]
    fn meter_balances() {
        let inst = gen::planted(128, 128, 4, 2);
        let stream = sc_stream::SetStream::new(&inst.system);
        let meter = SpaceMeter::new();
        let mut alg = PartialIterSetCover::new(IterSetCoverConfig::default());
        let _ = alg.run(&stream, &meter, 100);
        assert_eq!(meter.current(), 0);
    }
}
