//! One-pass `O(√n)`-approximation in `Õ(n)` space — the \[ER14\] row.

use sc_bitset::BitSet;
use sc_setsystem::SetId;
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Single-pass semi-streaming set cover in the spirit of Emek–Rosén.
///
/// While streaming: a set whose residual gain is at least `√n` is taken
/// immediately (there can be at most `√n · OPT`-ish of those); every
/// element also remembers one set containing it (`ptr[e]`, `n` words).
/// After the pass, each still-uncovered element buys its pointer set.
///
/// The `O(√n)` bound: a set `r` of the optimum that was never taken had
/// gain `< √n` *at the moment it streamed by*, and the elements of `r`
/// uncovered at the end were uncovered then too — so at most `√n - 1`
/// of them per optimal set, i.e. at most `(√n-1)·OPT` pointer
/// purchases, plus at most `n/√n = √n` threshold purchases (each
/// covered ≥ √n fresh elements). Emek–Rosén's actual algorithm is a
/// finer bucketed version with the matching lower bound; this
/// implementation hits the same `O(√n)` guarantee with the same pass
/// and space budget, which is what Figure 1.1 compares.
#[derive(Debug, Default)]
pub struct EmekRosen;

impl StreamingSetCover for EmekRosen {
    fn name(&self) -> String {
        "emek-rosen[ER14](1 pass)".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        let threshold = (n as f64).sqrt().ceil() as usize;
        let mut live = Tracked::new(BitSet::full(n), meter);
        // ptr[e] = some set containing e (u32::MAX = none yet). n words
        // in the model (we charge the full array).
        let mut ptr: Tracked<Vec<u32>> = Tracked::new(vec![u32::MAX; n], meter);
        let mut sol = Vec::new();

        for (id, elems) in stream.pass() {
            let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
            if gain >= threshold.max(1) {
                live.mutate(meter, |l| {
                    for &e in elems {
                        l.remove(e);
                    }
                });
                sol.push(id);
            } else {
                ptr.mutate(meter, |p| {
                    for &e in elems {
                        if p[e as usize] == u32::MAX {
                            p[e as usize] = id;
                        }
                    }
                });
            }
        }

        // Buy pointers for the leftovers, deduplicated.
        let mut bought = BitSet::new(stream.num_sets().max(1));
        meter.charge(bought.as_words().len());
        let leftovers: Vec<u32> = live.get().ones().collect();
        for e in leftovers {
            let p = ptr.get()[e as usize];
            if p != u32::MAX && bought.insert(p) {
                sol.push(p);
            }
        }
        meter.release(bought.as_words().len());

        let _ = ptr.release(meter);
        let _ = live.release(meter);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn single_pass_linear_space() {
        let inst = gen::planted(400, 800, 10, 3);
        let report = run_reported(&mut EmekRosen, &inst.system);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
        assert_eq!(report.passes, 1);
        // ptr array dominates: ~n/2 words (u32 per element) + bitmaps.
        assert!(report.space_words <= 2 * inst.system.universe());
    }

    #[test]
    fn ratio_within_sqrt_n_band() {
        for seed in 0..5 {
            let inst = gen::planted(900, 400, 6, seed);
            let opt = inst.planted.as_ref().unwrap().len();
            let report = run_reported(&mut EmekRosen, &inst.system);
            assert!(report.verified.is_ok());
            let bound = ((900f64).sqrt() as usize + 1) * opt + 30;
            assert!(
                report.cover_size() <= bound,
                "seed {seed}: {} > {bound}",
                report.cover_size()
            );
        }
    }

    #[test]
    fn pointer_fallback_covers_sparse_tail() {
        // No set reaches the √n=4 threshold except via pointers.
        let system = sc_setsystem::SetSystem::from_sets(16, (0..16).map(|e| vec![e]).collect());
        let report = run_reported(&mut EmekRosen, &system);
        assert!(report.verified.is_ok());
        assert_eq!(
            report.cover_size(),
            16,
            "all singletons bought via pointers"
        );
    }
}
