//! The Saha–Getoor baseline (\[SG09\] row of Figure 1.1): Set Cover via
//! `O(log n)` rounds of streaming Max-k-Cover.
//!
//! \[SG09\] solve Max-k-Cover in one pass by keeping the best-k-so-far
//! *with their contents* in memory, then reduce Set Cover to `O(log n)`
//! such rounds: each round, run Max-k-Cover on the still-uncovered
//! elements and commit the result; with `k ≥ OPT`, each round covers at
//! least a `(1 - 1/e)` fraction of what remains, so `O(log n)` rounds
//! finish with `O(k log n)` sets.
//!
//! Holding k candidate sets verbatim is what drives the paper's
//! `O(n² log n)` space figure for this row (k can be Θ(n), each set up
//! to n ids); the measured footprint here is `Σ` of the kept sets'
//! sizes, which the harness reports.

use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// \[SG09\]-style Set Cover: repeated one-pass greedy Max-k-Cover.
///
/// The unknown `OPT` is guessed in parallel powers of two, like the
/// other k-parameterised algorithms; within a guess, rounds repeat
/// until the universe is covered or a round makes no progress, with a
/// `⌈log₂ n⌉ + 1` safety bound matching the analysis.
#[derive(Debug, Clone, Copy)]
pub struct SahaGetoor {
    /// Swap-in threshold slack: a streamed set replaces the current
    /// poorest kept candidate only if its marginal gain exceeds the
    /// candidate's kept gain (1.0 = plain comparison).
    pub slack: f64,
}

impl Default for SahaGetoor {
    fn default() -> Self {
        Self { slack: 1.0 }
    }
}

impl SahaGetoor {
    /// One streaming Max-k-Cover round over `target`: returns the kept
    /// `(id, contents)` candidates, greedily swap-maintained.
    fn max_k_cover_round(
        &self,
        k: usize,
        stream: &SetStream<'_>,
        meter: &SpaceMeter,
        target: &BitSet,
    ) -> Vec<(SetId, Vec<ElemId>)> {
        // Kept candidates with contents — the O(k·n) working set that
        // costs [SG09] its quadratic space.
        let mut kept: Tracked<Vec<(SetId, Vec<ElemId>)>> = Tracked::new(Vec::new(), meter);
        // Union of kept candidates' coverage of the target.
        let mut covered = Tracked::new(BitSet::new(target.universe()), meter);

        for (id, elems) in stream.pass() {
            let gain = elems
                .iter()
                .filter(|&&e| target.contains(e) && !covered.get().contains(e))
                .count();
            if gain == 0 {
                continue;
            }
            if kept.get().len() < k {
                kept.mutate(meter, |ks| ks.push((id, elems.to_vec())));
                covered.mutate(meter, |c| {
                    for &e in elems {
                        if target.contains(e) {
                            c.insert(e);
                        }
                    }
                });
                continue;
            }
            // Find the poorest kept candidate by *current* marginal
            // contribution (its elements covered by no other candidate).
            let (worst_idx, worst_unique) = {
                let ks = kept.get();
                let mut worst = (0usize, usize::MAX);
                for (i, (_, members)) in ks.iter().enumerate() {
                    let unique = members
                        .iter()
                        .filter(|&&e| {
                            target.contains(e)
                                && !ks.iter().enumerate().any(|(j, (_, other))| {
                                    j != i && other.binary_search(&e).is_ok()
                                })
                        })
                        .count();
                    if unique < worst.1 {
                        worst = (i, unique);
                    }
                }
                worst
            };
            if gain as f64 > self.slack * worst_unique as f64 {
                kept.mutate(meter, |ks| ks[worst_idx] = (id, elems.to_vec()));
                covered.mutate(meter, |c| {
                    c.clear();
                    for (_, members) in kept.get() {
                        for &e in members {
                            if target.contains(e) {
                                c.insert(e);
                            }
                        }
                    }
                });
            }
        }

        let _ = covered.release(meter);
        kept.release(meter)
    }

    fn run_guess(
        &self,
        k: usize,
        stream: &SetStream<'_>,
        meter: &SpaceMeter,
    ) -> Option<Vec<SetId>> {
        let n = stream.universe();
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut in_sol = Tracked::new(BitSet::new(stream.num_sets().max(1)), meter);
        let mut sol: Vec<SetId> = Vec::new();
        let rounds = (n.max(2) as f64).log2().ceil() as usize + 1;

        for _ in 0..rounds {
            if live.get().is_empty() {
                break;
            }
            let before = live.get().count();
            let picked = self.max_k_cover_round(k, stream, meter, live.get());
            for (id, members) in picked {
                if in_sol.get().contains(id) {
                    continue;
                }
                let gains = members.iter().any(|&e| live.get().contains(e));
                if !gains {
                    continue;
                }
                in_sol.mutate(meter, |s| {
                    s.insert(id);
                });
                live.mutate(meter, |l| {
                    for &e in &members {
                        l.remove(e);
                    }
                });
                sol.push(id);
            }
            if live.get().count() == before {
                break; // no progress: k too small (or uncoverable)
            }
        }

        let done = live.get().is_empty();
        let _ = live.release(meter);
        let _ = in_sol.release(meter);
        done.then_some(sol)
    }
}

impl StreamingSetCover for SahaGetoor {
    fn name(&self) -> String {
        "saha-getoor[SG09](max-k-cover rounds)".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        if n == 0 {
            return Vec::new();
        }
        let mut best: Option<Vec<SetId>> = None;
        let mut child_passes = Vec::new();
        let mut child_peaks = Vec::new();
        let mut i = 0u32;
        loop {
            let k = 1usize << i;
            let cs = stream.fork();
            let cm = meter.fork();
            if let Some(sol) = self.run_guess(k, &cs, &cm) {
                if best.as_ref().is_none_or(|b| sol.len() < b.len()) {
                    best = Some(sol);
                }
            }
            child_passes.push(cs.passes());
            child_peaks.push(cm.peak());
            if k >= n {
                break;
            }
            i += 1;
        }
        stream.absorb_parallel(child_passes);
        meter.absorb_parallel(child_peaks);
        best.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn covers_planted_instances_within_log_factor() {
        let inst = gen::planted(256, 400, 8, 3);
        let opt = inst.planted.as_ref().unwrap().len();
        let report = run_reported(&mut SahaGetoor::default(), &inst.system);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
        let log_n = (256f64).log2();
        assert!(
            report.cover_size() as f64 <= 3.0 * log_n * opt as f64,
            "|sol|={} vs O(k log n)",
            report.cover_size()
        );
    }

    #[test]
    fn pass_budget_is_logarithmic() {
        let inst = gen::planted(512, 300, 4, 5);
        let report = run_reported(&mut SahaGetoor::default(), &inst.system);
        assert!(report.verified.is_ok());
        let rounds = (512f64).log2().ceil() as usize + 1;
        assert!(report.passes <= rounds, "passes {}", report.passes);
    }

    #[test]
    fn keeps_set_contents_hence_larger_space_than_progressive() {
        use crate::baselines::ProgressiveGreedy;
        let inst = gen::planted(512, 1024, 8, 7);
        let sg = run_reported(&mut SahaGetoor::default(), &inst.system);
        let pg = run_reported(&mut ProgressiveGreedy, &inst.system);
        assert!(sg.verified.is_ok() && pg.verified.is_ok());
        assert!(
            sg.space_words > pg.space_words,
            "SG09 {} vs progressive {}",
            sg.space_words,
            pg.space_words
        );
    }

    #[test]
    fn uncoverable_instance_flagged() {
        let system = sc_setsystem::SetSystem::from_sets(3, vec![vec![0]]);
        let report = run_reported(&mut SahaGetoor::default(), &system);
        assert!(report.verified.is_err());
    }

    #[test]
    fn meter_balances() {
        let inst = gen::planted(128, 128, 4, 1);
        let stream = sc_stream::SetStream::new(&inst.system);
        let meter = SpaceMeter::new();
        let _ = SahaGetoor::default().run(&stream, &meter);
        assert_eq!(meter.current(), 0);
    }
}
