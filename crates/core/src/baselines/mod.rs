//! The comparison rows of Figure 1.1, implemented as streaming
//! algorithms under the same instrumented model as `iterSetCover`.
//!
//! | Figure 1.1 row | Type here | Passes | Space | Approximation |
//! |----------------|-----------|--------|-------|---------------|
//! | Greedy (store input) | [`StoreAllGreedy`] | 1 | `O(mn)` | `ln n` |
//! | Greedy (iterative) | [`OnePickPerPassGreedy`] | `|sol|` ≤ n | `O(n)` | `ln n` |
//! | \[SG09\] | [`ProgressiveGreedy`] | `O(log n)` | `O(n)` | `O(log n)` |
//! | \[ER14\] | [`EmekRosen`] | 1 | `Õ(n)` | `O(√n)` |
//! | \[CW16\] | [`ChakrabartiWirth`] | `p` | `Õ(n)` | `(p+1)·n^{1/(p+1)}` |
//! | \[DIMV14\] | [`Dimv14`] | `O(2^{1/δ})` | `Õ(mn^δ)` | `O(2^{1/δ}ρ)` |
//! | \[AKL16\] curve (§1.1) | [`OnePassProjection`] | 1 | `Õ(mn/α)` | `α + ρ·OPT` |
//!
//! Every implementation follows the cited construction closely enough
//! that the measured trade-offs land in the paper's bands; deviations
//! (notably the DIMV14 recursion constant) are documented on the types
//! and in DESIGN.md.

mod chakrabarti_wirth;
mod dimv14;
mod emek_rosen;
mod one_pass_projection;
mod one_pick;
mod progressive;
mod saha_getoor;
mod store_all;

pub use chakrabarti_wirth::ChakrabartiWirth;
pub use dimv14::{Dimv14, Dimv14Config};
pub use emek_rosen::EmekRosen;
pub use one_pass_projection::OnePassProjection;
pub use one_pick::OnePickPerPassGreedy;
pub use progressive::ProgressiveGreedy;
pub use saha_getoor::SahaGetoor;
pub use store_all::{greedy_over_stored, StoreAllGreedy};
