//! Threshold-halving greedy: `O(log n)` passes, `O(log n)`-approx,
//! `O(n)` space — the \[SG09\] row of Figure 1.1.

use sc_bitset::BitSet;
use sc_setsystem::SetId;
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Progressive (threshold-halving) greedy.
///
/// Pass `j` takes, on sight, every set whose *residual* gain is at least
/// `τ_j = n / 2^j`, updating the uncovered set as it goes; the threshold
/// halves between passes until it reaches 1, whereupon every coverable
/// element gets covered.
///
/// Each taken set has gain within a factor 2 of the current maximum, so
/// the solution is an `O(log n)`-approximation (the standard analysis of
/// Saha–Getoor-style progressive greedy); passes are `⌈log₂ n⌉ + 1` and
/// working memory is the `n`-bit residual bitmap.
#[derive(Debug, Default)]
pub struct ProgressiveGreedy;

impl StreamingSetCover for ProgressiveGreedy {
    fn name(&self) -> String {
        "progressive-greedy(log n passes)".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut sol = Vec::new();

        let mut threshold = n.max(1);
        loop {
            if live.get().is_empty() {
                break;
            }
            for (id, elems) in stream.pass() {
                let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
                if gain >= threshold {
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                    sol.push(id);
                }
            }
            if threshold == 1 {
                break; // final pass took everything takeable
            }
            threshold /= 2;
        }

        let _ = live.release(meter);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn log_passes_log_approx() {
        let inst = gen::planted(1024, 512, 8, 6);
        let report = run_reported(&mut ProgressiveGreedy, &inst.system);
        assert!(report.verified.is_ok());
        assert!(
            report.passes <= 11,
            "⌈log₂ 1024⌉ + 1 = 11, got {}",
            report.passes
        );
        let opt = inst.planted.as_ref().unwrap().len();
        assert!(report.cover_size() <= opt * 11);
    }

    #[test]
    fn space_is_residual_bitmap_only() {
        let inst = gen::planted(4096, 1024, 16, 8);
        let report = run_reported(&mut ProgressiveGreedy, &inst.system);
        assert!(report.verified.is_ok());
        assert_eq!(report.space_words, 4096 / 64);
    }

    #[test]
    fn early_exit_when_covered() {
        // One set covers everything: the first pass (τ = n) takes it and
        // the loop stops immediately.
        let system = sc_setsystem::SetSystem::from_sets(64, vec![(0..64).collect()]);
        let report = run_reported(&mut ProgressiveGreedy, &system);
        assert!(report.verified.is_ok());
        assert_eq!(report.passes, 1);
        assert_eq!(report.cover, vec![0]);
    }
}
