//! One greedy pick per pass: `≤ n` passes, `O(n)` space.
//!
//! Footnote 2's other endpoint: greedy "implemented … by iteratively
//! updating the set of yet-uncovered elements (in at most n passes)".

use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Exact greedy with `O(n)` memory: each pass scans the family for the
/// set of maximum residual gain, remembers *only* that set's contents,
/// and commits it at the end of the pass.
///
/// Produces the identical solution to offline greedy (same tie-breaking
/// toward smaller ids) at a cost of one pass per picked set.
#[derive(Debug, Default)]
pub struct OnePickPerPassGreedy;

impl StreamingSetCover for OnePickPerPassGreedy {
    fn name(&self) -> String {
        "greedy/one-pick-per-pass".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut sol = Vec::new();

        while !live.get().is_empty() {
            // One pass: running argmax of residual gain. The candidate's
            // element list is the only per-set state we keep (≤ n ids).
            let mut best: Tracked<Vec<ElemId>> = Tracked::new(Vec::new(), meter);
            let mut best_gain = 0usize;
            let mut best_id: Option<SetId> = None;
            for (id, elems) in stream.pass() {
                let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
                if gain > best_gain {
                    best_gain = gain;
                    best_id = Some(id);
                    best.mutate(meter, |b| {
                        b.clear();
                        b.extend_from_slice(elems);
                    });
                }
            }
            let elems = best.release(meter);
            match best_id {
                Some(id) => {
                    live.mutate(meter, |l| {
                        for &e in &elems {
                            l.remove(e);
                        }
                    });
                    sol.push(id);
                }
                None => break, // nothing can make progress: uncoverable
            }
        }

        let _ = live.release(meter);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn one_pass_per_picked_set() {
        let inst = gen::planted(200, 240, 6, 2);
        let report = run_reported(&mut OnePickPerPassGreedy, &inst.system);
        assert!(report.verified.is_ok());
        assert_eq!(report.passes, report.cover_size());
    }

    #[test]
    fn space_stays_linear_in_n() {
        let inst = gen::planted(512, 2048, 16, 4);
        let report = run_reported(&mut OnePickPerPassGreedy, &inst.system);
        assert!(report.verified.is_ok());
        // live bitmap (n/64) + one candidate list (≤ n ids ≈ n/2 words):
        // comfortably under n words, and far under the input size.
        assert!(report.space_words <= inst.system.universe());
        assert!(report.space_words * 4 < inst.system.total_size());
    }

    #[test]
    fn agrees_with_offline_greedy_on_adversarial_instance() {
        let inst = gen::greedy_adversarial(4);
        let report = run_reported(&mut OnePickPerPassGreedy, &inst.system);
        assert_eq!(
            report.cover,
            vec![0, 1, 2, 3],
            "same picks as offline greedy"
        );
    }

    #[test]
    fn uncoverable_terminates() {
        let system = sc_setsystem::SetSystem::from_sets(3, vec![vec![0]]);
        let report = run_reported(&mut OnePickPerPassGreedy, &system);
        assert!(report.verified.is_err());
        assert_eq!(report.cover, vec![0]);
    }
}
