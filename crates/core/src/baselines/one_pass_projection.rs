//! One-pass algorithm on the `Õ(mn/α)`-space curve of \[AKL16\].
//!
//! Section 1.1 closes with the follow-up result of Assadi, Khanna and
//! Li: approximating SetCover within any factor `α = O(√n)` in a single
//! pass requires `Ω(mn/α)` space — the generalisation of this paper's
//! Theorem 3.8 (which is the `α < 3/2` endpoint). This module is the
//! natural *upper bound* on that curve, so the benchmark can trace the
//! whole single-pass trade-off: space shrinking linearly in `α` while
//! the quality guarantee relaxes by an additive `α`.

use crate::projstore::ProjStore;
use sc_bitset::BitSet;
use sc_offline::OfflineSolver;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Single-pass set cover storing only *small residual projections*.
///
/// With threshold `τ = ⌈n/α⌉`, the pass maintains the exact residual
/// `live ⊆ U` and, for each arriving set `r`:
///
/// * if `|r ∩ live| ≥ τ`, `r` is **taken** immediately (each take
///   covers ≥ τ fresh elements, so there are at most `n/τ = α` takes);
/// * otherwise `r ∩ live` is **stored** — strictly fewer than `τ = n/α`
///   ids, so the store holds `O(m·n/α)` words.
///
/// After the pass the offline oracle covers the leftovers from the
/// store. Feasibility is unconditional: `live` only shrinks, so a
/// leftover element was live when each of its sets streamed by and sits
/// in every one of their stored projections. The optimal sets' stored
/// projections therefore cover the leftovers, giving the bound
///
/// ```text
///   |sol|  ≤  α + ρ·OPT      i.e.   ratio ≤ α/OPT + ρ.
/// ```
///
/// At `α = 1` this degenerates into storing (the residual of) the whole
/// input — the `Ω(mn)` wall of Theorem 3.8 — and at `α = √n` it meets
/// the \[ER14\] corner of Figure 1.1 with projections instead of
/// pointers.
#[derive(Debug)]
pub struct OnePassProjection {
    /// The space/quality knob `α ≥ 1`.
    pub alpha: f64,
    /// Offline oracle for the leftover sub-instance.
    pub solver: OfflineSolver,
}

impl OnePassProjection {
    /// Creates the algorithm with the given `α` and the greedy oracle.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 1.0, "alpha must be ≥ 1");
        Self {
            alpha,
            solver: OfflineSolver::Greedy,
        }
    }
}

impl StreamingSetCover for OnePassProjection {
    fn name(&self) -> String {
        format!(
            "one-pass-projection[AKL16](α={}, ρ={})",
            self.alpha,
            self.solver.label()
        )
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        let tau = ((n as f64 / self.alpha).ceil() as usize).max(1);
        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut projections = Tracked::new(ProjStore::default(), meter);
        let mut sol = Vec::new();

        let mut scratch: Vec<ElemId> = Vec::new();
        for (id, elems) in stream.pass() {
            scratch.clear();
            scratch.extend(elems.iter().copied().filter(|&e| live.get().contains(e)));
            if scratch.is_empty() {
                continue;
            }
            if scratch.len() >= tau {
                let covered = &scratch;
                live.mutate(meter, |l| {
                    for &e in covered {
                        l.remove(e);
                    }
                });
                sol.push(id);
            } else {
                projections.mutate(meter, |p| p.push(id, &scratch));
            }
        }

        // Offline phase on the leftovers. The stored projections are the
        // complete residual instance, so the oracle sees everything.
        if !live.get().is_empty() {
            let picks: Option<Vec<usize>> = match self.solver {
                OfflineSolver::Greedy => {
                    let scratch_words = live.get().as_words().len() + projections.get().len();
                    meter.charge(scratch_words);
                    let store = projections.get();
                    let picks =
                        sc_offline::greedy_slices(store.len(), |i| store.elems(i), live.get());
                    meter.release(scratch_words);
                    picks
                }
                _ => {
                    let store = projections.get();
                    let kept = sc_offline::dominance_filter_slices(store.len(), |i| store.elems(i));
                    let remaining: Vec<ElemId> = live.get().to_vec();
                    let sub_universe = remaining.len();
                    let sub_sets = Tracked::new(
                        kept.iter()
                            .map(|&i| {
                                BitSet::from_iter(
                                    sub_universe,
                                    store.elems(i).iter().filter_map(|e| {
                                        remaining.binary_search(e).ok().map(|r| r as u32)
                                    }),
                                )
                            })
                            .collect::<Vec<BitSet>>(),
                        meter,
                    );
                    let picks = self
                        .solver
                        .solve(sub_sets.get(), &BitSet::full(sub_universe))
                        .ok()
                        .map(|picks| picks.into_iter().map(|i| kept[i]).collect::<Vec<_>>());
                    let _ = sub_sets.release(meter);
                    picks
                }
            };
            if let Some(picks) = picks {
                for idx in picks {
                    sol.push(projections.get().set_id(idx));
                }
            }
            // On None the instance itself is uncoverable; the harness's
            // verifier reports it.
        }

        let _ = projections.release(meter);
        let _ = live.release(meter);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn single_pass_and_verified() {
        for alpha in [1.0, 2.0, 4.0, 16.0] {
            let inst = gen::planted(512, 1024, 8, 5);
            let report = run_reported(&mut OnePassProjection::new(alpha), &inst.system);
            assert!(report.verified.is_ok(), "α={alpha}: {:?}", report.verified);
            assert_eq!(report.passes, 1, "α={alpha}");
        }
    }

    #[test]
    fn space_shrinks_as_alpha_grows() {
        // Dense uniform instance (expected |r| ≈ 61): once τ = n/α drops
        // below the set size, takes replace stored projections and the
        // footprint falls — the mn/α scaling.
        let inst = gen::uniform_random(512, 1024, 0.12, 9);
        let s1 = run_reported(&mut OnePassProjection::new(1.0), &inst.system).space_words;
        let s16 = run_reported(&mut OnePassProjection::new(16.0), &inst.system).space_words;
        let s64 = run_reported(&mut OnePassProjection::new(64.0), &inst.system).space_words;
        assert!(s16 < s1, "α=16 ({s16}) should use less than α=1 ({s1})");
        assert!(s64 < s16, "α=64 ({s64}) should use less than α=16 ({s16})");
        // Below every set size the threshold is inert: same store.
        let s4 = run_reported(&mut OnePassProjection::new(4.0), &inst.system).space_words;
        assert!(s4 <= s1);
    }

    #[test]
    fn quality_tracks_alpha_plus_rho_opt() {
        let inst = gen::planted(1024, 512, 8, 2);
        let opt = inst.planted.as_ref().unwrap().len();
        for alpha in [2.0, 8.0] {
            let report = run_reported(&mut OnePassProjection::new(alpha), &inst.system);
            assert!(report.verified.is_ok());
            let rho = (1024f64).ln() + 1.0;
            let bound = alpha + rho * opt as f64 + 1.0;
            assert!(
                (report.cover_size() as f64) <= bound,
                "α={alpha}: |sol|={} > {bound}",
                report.cover_size()
            );
        }
    }

    #[test]
    fn exact_oracle_works_on_leftovers() {
        let inst = gen::planted(128, 256, 4, 17);
        let mut alg = OnePassProjection {
            alpha: 4.0,
            solver: OfflineSolver::DEFAULT_EXACT,
        };
        let report = run_reported(&mut alg, &inst.system);
        assert!(report.verified.is_ok());
        assert_eq!(report.passes, 1);
    }

    #[test]
    fn singleton_universe_and_thin_sets() {
        // τ = n/α rounds up to ≥ 1: singletons are "heavy" when α = n.
        let system = sc_setsystem::SetSystem::from_sets(8, (0..8).map(|e| vec![e]).collect());
        let report = run_reported(&mut OnePassProjection::new(8.0), &system);
        assert!(report.verified.is_ok());
        assert_eq!(report.cover_size(), 8);
    }
}
