//! `p`-pass `(p+1)·n^{1/(p+1)}`-approximation in `Õ(n)` space — the
//! \[CW16\] row of Figure 1.1.

use sc_bitset::BitSet;
use sc_setsystem::SetId;
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Multi-pass descending-threshold algorithm of Chakrabarti–Wirth.
///
/// With `β = n^{1/(p+1)}`, pass `j ∈ {1, …, p}` takes every set whose
/// residual gain is at least `n/β^j` the moment it streams by. During
/// the final pass each element also records one covering set, and the
/// leftovers buy their pointers.
///
/// The analysis (Section 1's description of \[CW16\]): after pass `j`
/// every set's residual gain is below `n/β^j`, so the uncovered count is
/// at most `OPT·n/β^j`; hence pass `j+1` takes at most `OPT·β` sets, and
/// the final pointer purchases number at most `OPT·n/β^p = OPT·β`.
/// Total: `(p+1)·β·OPT = (p+1)·n^{1/(p+1)}·OPT`.
#[derive(Debug, Clone, Copy)]
pub struct ChakrabartiWirth {
    /// Number of threshold passes `p ≥ 1` (total passes = `p`; the
    /// pointer collection rides along with pass `p`).
    pub passes: usize,
}

impl ChakrabartiWirth {
    /// `p`-pass configuration.
    ///
    /// # Panics
    ///
    /// Panics if `passes == 0`.
    pub fn new(passes: usize) -> Self {
        assert!(passes >= 1, "need at least one pass");
        Self { passes }
    }

    /// The approximation guarantee `(p+1)·n^{1/(p+1)}` for universe `n`.
    pub fn guarantee(&self, n: usize) -> f64 {
        let p = self.passes as f64;
        (p + 1.0) * (n.max(1) as f64).powf(1.0 / (p + 1.0))
    }
}

impl StreamingSetCover for ChakrabartiWirth {
    fn name(&self) -> String {
        format!("chakrabarti-wirth[CW16](p={})", self.passes)
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        let p = self.passes;
        let beta = (n.max(1) as f64).powf(1.0 / (p as f64 + 1.0));

        let mut live = Tracked::new(BitSet::full(n), meter);
        let mut sol = Vec::new();
        let mut ptr: Tracked<Vec<u32>> = Tracked::new(Vec::new(), meter);

        for j in 1..=p {
            if live.get().is_empty() {
                break;
            }
            let threshold = (n as f64 / beta.powi(j as i32)).max(1.0);
            let last = j == p;
            if last {
                ptr.mutate(meter, |v| v.resize(n, u32::MAX));
            }
            for (id, elems) in stream.pass() {
                let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
                if gain as f64 >= threshold {
                    live.mutate(meter, |l| {
                        for &e in elems {
                            l.remove(e);
                        }
                    });
                    sol.push(id);
                } else if last {
                    ptr.mutate(meter, |v| {
                        for &e in elems {
                            if v[e as usize] == u32::MAX {
                                v[e as usize] = id;
                            }
                        }
                    });
                }
            }
        }

        // Leftovers buy their recorded pointer set (deduplicated).
        if !live.get().is_empty() && !ptr.get().is_empty() {
            let mut bought = BitSet::new(stream.num_sets().max(1));
            meter.charge(bought.as_words().len());
            let leftovers: Vec<u32> = live.get().ones().collect();
            for e in leftovers {
                let q = ptr.get()[e as usize];
                if q != u32::MAX && bought.insert(q) {
                    sol.push(q);
                }
            }
            meter.release(bought.as_words().len());
        }

        let _ = ptr.release(meter);
        let _ = live.release(meter);
        sol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn p_passes_exactly() {
        let inst = gen::planted(625, 300, 5, 12);
        for p in [1, 2, 3, 4] {
            let report = run_reported(&mut ChakrabartiWirth::new(p), &inst.system);
            assert!(report.verified.is_ok(), "p={p}: {:?}", report.verified);
            assert!(report.passes <= p, "p={p}: used {}", report.passes);
        }
    }

    #[test]
    fn ratio_improves_with_more_passes() {
        // Average over several seeds: more passes must not hurt much and
        // should generally help on planted instances.
        let mut sums = [0usize; 2];
        for seed in 0..6 {
            let inst = gen::planted_noisy(1024, 700, 8, seed);
            for (i, p) in [1usize, 4].into_iter().enumerate() {
                let report = run_reported(&mut ChakrabartiWirth::new(p), &inst.system);
                assert!(report.verified.is_ok());
                sums[i] += report.cover_size();
            }
        }
        assert!(
            sums[1] <= sums[0],
            "4 passes ({}) should beat 1 pass ({}) in aggregate",
            sums[1],
            sums[0]
        );
    }

    #[test]
    fn respects_analytic_guarantee_with_slack() {
        for seed in 0..4 {
            let inst = gen::planted(512, 256, 4, seed);
            let opt = inst.planted.as_ref().unwrap().len();
            for p in [1, 2, 3] {
                let alg = ChakrabartiWirth::new(p);
                let report = run_reported(&mut ChakrabartiWirth::new(p), &inst.system);
                let bound = (alg.guarantee(512) * opt as f64).ceil() as usize + 8;
                assert!(
                    report.cover_size() <= bound,
                    "p={p} seed={seed}: {} > {bound}",
                    report.cover_size()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one pass")]
    fn zero_passes_rejected() {
        let _ = ChakrabartiWirth::new(0);
    }
}
