//! One pass, `O(mn)` space: store the input, run offline greedy.
//!
//! The first row of Figure 1.1 — the trivial upper endpoint of the
//! space/pass trade-off, and footnote 2's "the simple greedy algorithm
//! can be implemented by storing the whole input (in one pass)".

use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Single-pass greedy that stores the entire family in working memory.
///
/// Space is `Θ(Σ|r|)` words — the paper's `O(mn)` input size — which is
/// exactly what Theorem 3.8 proves unavoidable for one-pass algorithms
/// with low approximation factors.
#[derive(Debug, Default)]
pub struct StoreAllGreedy;

impl StreamingSetCover for StoreAllGreedy {
    fn name(&self) -> String {
        "greedy/store-all(1 pass)".into()
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();

        // Pass 1: copy the repository (CSR layout, two ids per word).
        let mut store: Tracked<(Vec<u32>, Vec<ElemId>)> =
            Tracked::new((vec![0u32], Vec::new()), meter);
        for (_, elems) in stream.pass() {
            store.mutate(meter, |(offsets, flat)| {
                flat.extend_from_slice(elems);
                offsets.push(flat.len() as u32);
            });
        }
        greedy_over_stored(store, n, meter)
    }
}

/// The post-pass half of [`StoreAllGreedy`]: offline greedy over the
/// CSR copy of the repository, releasing the store when done. Shared
/// with `sc_service`'s baseline job so both stay operation-identical
/// (same tie-break, same meter charges).
pub fn greedy_over_stored(
    mut store: Tracked<(Vec<u32>, Vec<ElemId>)>,
    universe: usize,
    meter: &SpaceMeter,
) -> Vec<SetId> {
    // Drop the growth slack: the model charges what is kept, and
    // what is kept is exactly Σ|r| ids plus the offsets.
    store.mutate(meter, |(offsets, flat)| {
        offsets.shrink_to_fit();
        flat.shrink_to_fit();
    });

    // Offline greedy directly on the stored CSR (no per-set bitsets:
    // that would square the footprint for sparse families).
    let mut live = Tracked::new(BitSet::full(universe), meter);
    let mut sol = Vec::new();
    loop {
        if live.get().is_empty() {
            break;
        }
        let (offsets, flat) = store.get();
        let mut best: Option<(usize, usize)> = None; // (gain, set)
        for i in 0..offsets.len() - 1 {
            let elems = &flat[offsets[i] as usize..offsets[i + 1] as usize];
            let gain = elems.iter().filter(|&&e| live.get().contains(e)).count();
            if gain > 0 && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, i));
            }
        }
        let Some((_, i)) = best else { break };
        let range = offsets[i] as usize..offsets[i + 1] as usize;
        let elems: Vec<ElemId> = flat[range].to_vec();
        live.mutate(meter, |l| {
            for &e in &elems {
                l.remove(e);
            }
        });
        sol.push(i as SetId);
    }

    let _ = live.release(meter);
    let _ = store.release(meter);
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn one_pass_and_input_sized_space() {
        let inst = gen::planted(256, 300, 8, 1);
        let report = run_reported(&mut StoreAllGreedy, &inst.system);
        assert!(report.verified.is_ok());
        assert_eq!(report.passes, 1);
        // Space is at least half the incidence count (2 ids per word).
        assert!(report.space_words >= inst.system.total_size() / 2);
    }

    #[test]
    fn matches_offline_greedy_quality() {
        let inst = gen::greedy_adversarial(5);
        let report = run_reported(&mut StoreAllGreedy, &inst.system);
        assert!(report.verified.is_ok());
        assert_eq!(
            report.cover_size(),
            5,
            "takes the baits like offline greedy"
        );
    }

    #[test]
    fn handles_empty_universe() {
        let system = sc_setsystem::SetSystem::from_sets(0, vec![vec![], vec![]]);
        let report = run_reported(&mut StoreAllGreedy, &system);
        assert!(report.verified.is_ok());
        assert!(report.cover.is_empty());
    }
}
