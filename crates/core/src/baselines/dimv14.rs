//! The Demaine–Indyk–Mahabadi–Vakilian recursive element-sampling
//! algorithm — the \[DIMV14\] row of Figure 1.1, the paper's direct
//! predecessor and the algorithm `iterSetCover` improves on.

use crate::projstore::ProjStore;
use crate::sampling::sample_from_bitset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_bitset::BitSet;
use sc_offline::OfflineSolver;
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, StreamingSetCover, Tracked};

/// Configuration of [`Dimv14`].
#[derive(Debug, Clone, Copy)]
pub struct Dimv14Config {
    /// Trade-off parameter δ: `Õ(mn^δ)` space, `O(2^{1/δ})`-ish passes.
    pub delta: f64,
    /// Offline oracle used at the recursion's base.
    pub solver: OfflineSolver,
    /// RNG seed.
    pub seed: u64,
    /// The constant in the base-case capacity `c·n^δ·log₂ m`: residuals
    /// at most this large are solved by storing all projections.
    pub sample_constant: f64,
    /// Sampling repetitions per recursion level (the paper's fixed
    /// constant; 2 reproduces the exponential pass blow-up).
    pub rounds_per_level: usize,
}

impl Default for Dimv14Config {
    fn default() -> Self {
        Self {
            delta: 0.5,
            solver: OfflineSolver::Greedy,
            seed: 0,
            sample_constant: 1.0,
            rounds_per_level: 2,
        }
    }
}

/// Recursive element-sampling set cover in the style of \[DIMV14\].
///
/// To cover a target `T`: if `|T|` is below the storable capacity
/// `c·n^δ·log m`, one pass stores every set's projection onto `T` and
/// the offline oracle finishes (the base case — `Õ(m·n^δ)` stored ids).
/// Otherwise the level performs a fixed number of rounds, each sampling
/// a `1/n^δ` fraction of `T`, covering the sample recursively, and
/// subtracting what the picks cover (one pass); the element-sampling
/// lemma of \[DIMV14\] shrinks `T` geometrically per round.
///
/// Every recursion level *multiplies* the pass count by
/// `rounds_per_level + 1`, which is exactly the paper's criticism of
/// \[DIMV14\]: `O(4^{1/δ})` passes against `iterSetCover`'s `2/δ` for the
/// same `Õ(mn^δ)` space. Unlike `iterSetCover` there is no optimum
/// guessing: the space bound never depends on `k`, so no parallel
/// ladder is needed.
#[derive(Debug)]
pub struct Dimv14 {
    cfg: Dimv14Config,
}

impl Dimv14 {
    /// Creates the algorithm with the given configuration.
    pub fn new(cfg: Dimv14Config) -> Self {
        assert!(cfg.delta > 0.0 && cfg.delta <= 1.0);
        assert!(cfg.rounds_per_level >= 1);
        Self { cfg }
    }

    /// Default configuration with the given δ.
    pub fn with_delta(delta: f64) -> Self {
        Self::new(Dimv14Config {
            delta,
            ..Default::default()
        })
    }

    /// Covers `target` completely, appending picks to `sol`/`in_sol`.
    /// Returns `None` when some target element is uncoverable.
    #[allow(clippy::too_many_arguments)]
    fn cover_rec(
        &self,
        stream: &SetStream<'_>,
        meter: &SpaceMeter,
        rng: &mut StdRng,
        cap: usize,
        depth: usize,
        target: BitSet,
        sol: &mut Tracked<Vec<SetId>>,
        in_sol: &mut Tracked<BitSet>,
    ) -> Option<()> {
        let n = stream.universe();
        let shrink = (n.max(2) as f64).powf(self.cfg.delta).max(2.0);
        let mut t = Tracked::new(target, meter);

        let mut rounds = 0;
        while t.get().count() > cap && depth > 0 && rounds < self.cfg.rounds_per_level {
            let count = t.get().count();
            let want = ((count as f64 / shrink).ceil() as usize).max(cap.min(count));
            let ids = sample_from_bitset(t.get(), want, rng);
            let sample = BitSet::from_iter(n, ids.iter().copied());
            if self
                .cover_rec(stream, meter, rng, cap, depth - 1, sample, sol, in_sol)
                .is_none()
            {
                let _ = t.release(meter);
                return None;
            }
            // One pass: subtract everything picked so far from T.
            for (id, elems) in stream.pass() {
                if in_sol.get().contains(id) {
                    t.mutate(meter, |t| {
                        for &e in elems {
                            t.remove(e);
                        }
                    });
                }
            }
            rounds += 1;
        }

        // Base case: store all projections onto T, solve offline.
        if !t.get().is_empty() {
            let mut proj = Tracked::new(ProjStore::default(), meter);
            for (id, elems) in stream.pass() {
                let hit: Vec<ElemId> = elems
                    .iter()
                    .copied()
                    .filter(|&e| t.get().contains(e))
                    .collect();
                if !hit.is_empty() {
                    proj.mutate(meter, |p| p.push(id, &hit));
                }
            }
            let picks: Result<Vec<usize>, sc_offline::Infeasible> = match self.cfg.solver {
                OfflineSolver::Greedy => {
                    let scratch_words = t.get().as_words().len() + proj.get().len();
                    meter.charge(scratch_words);
                    let store = proj.get();
                    let picks = sc_offline::greedy_slices(store.len(), |i| store.elems(i), t.get())
                        .ok_or(sc_offline::Infeasible);
                    meter.release(scratch_words);
                    picks
                }
                // Every other oracle works on dense rank-compacted
                // bitsets.
                _ => {
                    let store = proj.get();
                    let kept = sc_offline::dominance_filter_slices(store.len(), |i| store.elems(i));
                    let remaining: Vec<ElemId> = t.get().to_vec();
                    let sub_universe = remaining.len();
                    let sub_sets = Tracked::new(
                        kept.iter()
                            .map(|&i| {
                                BitSet::from_iter(
                                    sub_universe,
                                    store.elems(i).iter().filter_map(|e| {
                                        remaining.binary_search(e).ok().map(|r| r as u32)
                                    }),
                                )
                            })
                            .collect::<Vec<BitSet>>(),
                        meter,
                    );
                    let picks = self
                        .cfg
                        .solver
                        .solve(sub_sets.get(), &BitSet::full(sub_universe))
                        .map(|picks| picks.into_iter().map(|i| kept[i]).collect::<Vec<_>>());
                    let _ = sub_sets.release(meter);
                    picks
                }
            };
            let outcome = match picks {
                Ok(picks) => {
                    for idx in picks {
                        let id = proj.get().set_id(idx);
                        if !in_sol.get().contains(id) {
                            sol.mutate(meter, |s| s.push(id));
                            in_sol.mutate(meter, |s| {
                                s.insert(id);
                            });
                        }
                    }
                    Some(())
                }
                Err(_) => None,
            };
            let _ = proj.release(meter);
            let _ = t.release(meter);
            return outcome;
        }

        let _ = t.release(meter);
        Some(())
    }
}

impl StreamingSetCover for Dimv14 {
    fn name(&self) -> String {
        format!(
            "dimv14(δ={}, ρ={})",
            self.cfg.delta,
            self.cfg.solver.label()
        )
    }

    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
        let n = stream.universe();
        let m = stream.num_sets();
        if n == 0 {
            return Vec::new();
        }
        let cap = (self.cfg.sample_constant
            * (n.max(2) as f64).powf(self.cfg.delta)
            * (m.max(2) as f64).log2())
        .ceil()
        .max(1.0) as usize;
        let depth = (1.0 / self.cfg.delta).ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(0x51_7c_c1));

        let mut sol: Tracked<Vec<SetId>> = Tracked::new(Vec::new(), meter);
        let mut in_sol = Tracked::new(BitSet::new(m), meter);
        let outcome = self.cover_rec(
            stream,
            meter,
            &mut rng,
            cap,
            depth,
            BitSet::full(n),
            &mut sol,
            &mut in_sol,
        );
        let _ = in_sol.release(meter);
        let sol = sol.release(meter);
        match outcome {
            Some(()) => sol,
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::gen;
    use sc_stream::run_reported;

    #[test]
    fn covers_planted_instances() {
        let inst = gen::planted(512, 800, 16, 21);
        let mut alg = Dimv14::with_delta(0.5);
        let report = run_reported(&mut alg, &inst.system);
        assert!(report.verified.is_ok(), "{:?}", report.verified);
        let opt = inst.planted.as_ref().unwrap().len();
        assert!(report.cover_size() <= 10 * opt);
    }

    #[test]
    fn uses_more_passes_than_iter_set_cover_at_small_delta() {
        // Thin sets: covering a sample leaves most of the residual
        // uncovered, so the recursion must keep spending passes, while
        // iterSetCover's budget is pinned at 2/δ (+1) by construction.
        let inst = gen::uniform_random(2048, 1024, 0.004, 2);
        let delta = 0.25;
        let mut dimv = Dimv14::with_delta(delta);
        let dimv_report = run_reported(&mut dimv, &inst.system);
        let mut iter = crate::IterSetCover::with_delta(delta);
        let iter_report = run_reported(&mut iter, &inst.system);
        assert!(dimv_report.verified.is_ok());
        assert!(iter_report.verified.is_ok());
        assert!(
            dimv_report.passes > iter_report.passes,
            "dimv14 {} passes vs iterSetCover {}",
            dimv_report.passes,
            iter_report.passes
        );
    }

    #[test]
    fn space_does_not_balloon_past_the_input() {
        // The base-case capacity is k-free, so the footprint stays near
        // m·n^δ·log m ids even though no optimum guess exists.
        let inst = gen::planted(1024, 2048, 8, 5);
        let mut alg = Dimv14::with_delta(0.5);
        let report = run_reported(&mut alg, &inst.system);
        assert!(report.verified.is_ok());
        let input_words = inst.system.total_size() / 2;
        assert!(
            report.space_words <= input_words,
            "dimv14 {} words vs input {}",
            report.space_words,
            input_words
        );
    }

    #[test]
    fn uncoverable_yields_empty_flagged_report() {
        let system = sc_setsystem::SetSystem::from_sets(4, vec![vec![0]]);
        let mut alg = Dimv14::with_delta(0.5);
        let report = run_reported(&mut alg, &system);
        assert!(report.verified.is_err());
        assert!(report.cover.is_empty());
    }

    #[test]
    fn meter_balances() {
        let inst = gen::planted(128, 200, 4, 5);
        let stream = sc_stream::SetStream::new(&inst.system);
        let meter = SpaceMeter::new();
        let mut alg = Dimv14::with_delta(0.5);
        let _ = alg.run(&stream, &meter);
        assert_eq!(meter.current(), 0);
    }
}
