//! The ε-partial state-machine driver must be observationally
//! identical to the sequential `PartialIterSetCover`: same cover (bit
//! for bit), same logical pass count, same space peak. Only wall-clock
//! and physical scan count may differ.

use sc_core::partial::{coverage_goal, run_partial, PartialIterSetCover, PartialReport};
use sc_core::{IterSetCoverConfig, PartialCoverDriver};
use sc_setsystem::{gen, SetSystem};
use sc_stream::{SetStream, SpaceMeter};

/// Runs the driver form of the ε-partial algorithm the way a scheduler
/// would: one shared physical scan per round.
fn run_via_driver(cfg: IterSetCoverConfig, system: &SetSystem, epsilon: f64) -> PartialReport {
    let n = system.universe();
    let required = coverage_goal(n, epsilon);
    let stream = SetStream::new(system);
    let meter = SpaceMeter::new();
    let mut driver = PartialCoverDriver::new(&cfg, required, &stream, &meter);
    while driver.wants_scan() {
        driver.begin_scan();
        let items = stream.shared_pass(&driver.participants());
        for (id, elems) in items {
            driver.absorb(id, elems);
        }
        driver.end_scan();
    }
    let cover = driver.finish_into(&stream, &meter);

    let mut covered = sc_bitset::BitSet::new(n);
    for &id in &cover {
        for &e in system.set(id) {
            covered.insert(e);
        }
    }
    assert_eq!(meter.current(), 0, "all charges must be released");
    PartialReport {
        algorithm: "driver".into(),
        cover,
        covered: covered.count(),
        required,
        passes: stream.passes(),
        space_words: meter.peak(),
    }
}

fn assert_equivalent(system: &SetSystem, cfg: IterSetCoverConfig, epsilon: f64, label: &str) {
    let solo = run_partial(&mut PartialIterSetCover::new(cfg), system, epsilon);
    let driven = run_via_driver(cfg, system, epsilon);
    assert_eq!(driven.cover, solo.cover, "{label}: covers differ");
    assert_eq!(driven.passes, solo.passes, "{label}: pass counts differ");
    assert_eq!(
        driven.space_words, solo.space_words,
        "{label}: space peaks differ"
    );
    assert_eq!(driven.covered, solo.covered, "{label}: coverage differs");
}

#[test]
fn epsilon_and_delta_sweep_on_planted_instances() {
    let inst = gen::planted(512, 1024, 16, 11);
    for delta in [1.0, 0.5, 0.25] {
        for epsilon in [0.0, 0.1, 0.4] {
            assert_equivalent(
                &inst.system,
                IterSetCoverConfig {
                    delta,
                    seed: 7,
                    ..Default::default()
                },
                epsilon,
                &format!("planted δ={delta} ε={epsilon}"),
            );
        }
    }
}

#[test]
fn noisy_instances_and_seeds() {
    let inst = gen::planted_noisy(300, 600, 10, 9);
    for seed in [0, 1, 0xdead_beef] {
        assert_equivalent(
            &inst.system,
            IterSetCoverConfig {
                seed,
                ..Default::default()
            },
            0.2,
            &format!("noisy seed={seed}"),
        );
    }
}

#[test]
fn uncoverable_instance_fails_identically() {
    let system = SetSystem::from_sets(4, vec![vec![0, 1], vec![1, 2]]);
    assert_equivalent(&system, IterSetCoverConfig::default(), 0.0, "uncoverable");
    // With a loose enough goal the partial cover succeeds anyway.
    assert_equivalent(&system, IterSetCoverConfig::default(), 0.3, "loose goal");
}

#[test]
fn tiny_universes_and_required_zero() {
    for n in [1usize, 2, 3] {
        let system = SetSystem::from_sets(n, vec![(0..n as u32).collect()]);
        assert_equivalent(
            &system,
            IterSetCoverConfig::default(),
            0.0,
            &format!("full single set, n={n}"),
        );
    }
    // ε close to 1: required becomes tiny but non-zero (ceil).
    let inst = gen::planted(64, 32, 4, 3);
    assert_equivalent(&inst.system, IterSetCoverConfig::default(), 0.9, "ε=0.9");
}
