//! The multiplexed guess executor must be observationally identical to
//! the sequential reference executor: same cover (bit for bit), same
//! pass count, same space peak, same per-iteration traces. Only
//! wall-clock may differ.

use sc_core::{GuessExecutor, IterSetCover, IterSetCoverConfig, IterationTrace};
use sc_offline::OfflineSolver;
use sc_setsystem::gen;
use sc_setsystem::SetSystem;
use sc_stream::run_reported;

/// Runs one config under both executors and asserts every observable
/// matches.
fn assert_equivalent(system: &SetSystem, cfg: IterSetCoverConfig, label: &str) {
    let mut sequential = IterSetCover::new(IterSetCoverConfig {
        executor: GuessExecutor::Sequential,
        ..cfg
    });
    let mut multiplexed = IterSetCover::new(IterSetCoverConfig {
        executor: GuessExecutor::Multiplexed,
        ..cfg
    });
    let seq = run_reported(&mut sequential, system);
    let mux = run_reported(&mut multiplexed, system);
    assert_eq!(mux.cover, seq.cover, "{label}: covers differ");
    assert_eq!(mux.passes, seq.passes, "{label}: pass counts differ");
    assert_eq!(
        mux.space_words, seq.space_words,
        "{label}: space peaks differ"
    );
    assert_eq!(
        mux.verified.is_ok(),
        seq.verified.is_ok(),
        "{label}: verification verdicts differ"
    );
    let seq_traces: Vec<IterationTrace> = sequential.traces.clone();
    let mux_traces: Vec<IterationTrace> = multiplexed.traces.clone();
    assert_eq!(mux_traces, seq_traces, "{label}: iteration traces differ");
}

#[test]
fn delta_sweep_on_planted_instances() {
    let inst = gen::planted(512, 1024, 16, 11);
    for delta in [1.0, 0.5, 0.25] {
        assert_equivalent(
            &inst.system,
            IterSetCoverConfig {
                delta,
                seed: 7,
                ..Default::default()
            },
            &format!("planted δ={delta}"),
        );
    }
}

#[test]
fn delta_sweep_on_noisy_instances() {
    let inst = gen::planted_noisy(300, 600, 10, 9);
    for delta in [1.0, 0.5, 0.25] {
        assert_equivalent(
            &inst.system,
            IterSetCoverConfig {
                delta,
                seed: 42,
                ..Default::default()
            },
            &format!("noisy δ={delta}"),
        );
    }
}

#[test]
fn seeds_vary_but_equivalence_holds() {
    let inst = gen::planted(256, 512, 8, 3);
    for seed in [0, 1, 0xdead_beef, u64::MAX] {
        assert_equivalent(
            &inst.system,
            IterSetCoverConfig {
                seed,
                ..Default::default()
            },
            &format!("seed={seed}"),
        );
    }
}

#[test]
fn exact_oracle_path() {
    let inst = gen::planted(128, 200, 4, 17);
    assert_equivalent(
        &inst.system,
        IterSetCoverConfig {
            solver: OfflineSolver::DEFAULT_EXACT,
            seed: 5,
            ..Default::default()
        },
        "exact oracle",
    );
}

#[test]
fn ablation_flags() {
    let inst = gen::planted(128, 256, 4, 23);
    assert_equivalent(
        &inst.system,
        IterSetCoverConfig {
            disable_size_test: true,
            ..Default::default()
        },
        "no size test",
    );
    assert_equivalent(
        &inst.system,
        IterSetCoverConfig {
            final_cleanup_pass: false,
            ..Default::default()
        },
        "no cleanup pass",
    );
    assert_equivalent(
        &inst.system,
        IterSetCoverConfig {
            paper_constants: true,
            ..Default::default()
        },
        "paper constants",
    );
}

#[test]
fn uncoverable_instance_fails_identically() {
    let system = SetSystem::from_sets(4, vec![vec![0, 1], vec![1, 2]]);
    assert_equivalent(&system, IterSetCoverConfig::default(), "uncoverable");
}

#[test]
fn equivalence_holds_with_telemetry_recording() {
    // Telemetry watches the scan kernels under these runs (backend-hit
    // counters); recording must not perturb the sequential/multiplexed
    // equivalence bit for bit. The gate is process-global, so hold the
    // telemetry lock while it is on.
    let _hold = sc_telemetry::test_hold();
    let was = sc_telemetry::enabled();
    sc_telemetry::set_enabled(true);
    let inst = gen::planted(512, 1024, 16, 11);
    for delta in [1.0, 0.5, 0.25] {
        assert_equivalent(
            &inst.system,
            IterSetCoverConfig {
                delta,
                seed: 7,
                ..Default::default()
            },
            &format!("telemetry-on planted δ={delta}"),
        );
    }
    sc_telemetry::set_enabled(was);
}

#[test]
fn single_set_and_tiny_universes() {
    for n in [1usize, 2, 3] {
        let system = SetSystem::from_sets(n, vec![(0..n as u32).collect()]);
        assert_equivalent(
            &system,
            IterSetCoverConfig::default(),
            &format!("full single set, n={n}"),
        );
    }
}
