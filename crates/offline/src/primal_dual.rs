//! Primal–dual (local-ratio) set cover: ρ = f, plus a certified dual
//! lower bound.
//!
//! The classic frequency approximation: repeatedly pick an uncovered
//! element and buy *every* set containing it. Each picked element's
//! "star" of sets is disjoint from every other picked element's star
//! (a set meeting two picked elements would have covered the later one
//! already), so setting the dual variable `y_e = 1` on the picked
//! elements is feasible for the covering LP. Hence
//!
//! ```text
//!   |witness|  ≤  OPT_LP  ≤  OPT  ≤  |cover|  ≤  f · |witness|
//! ```
//!
//! where `f` is the maximum element frequency. Beyond being a solver in
//! its own right (excellent when frequencies are small, e.g. the sparse
//! instances of Section 6), the **witness is a certified lower bound on
//! OPT** that costs one linear scan — the benchmarks use it to bound
//! approximation ratios without invoking the exponential exact solver.

use sc_bitset::BitSet;

/// Result of a [`primal_dual`] run.
#[derive(Debug, Clone)]
pub struct PrimalDualOutcome {
    /// The cover (indices into the input slice).
    pub cover: Vec<usize>,
    /// The picked elements. Their set-stars are pairwise disjoint, so
    /// `witness.len() ≤ OPT`: a certified lower bound.
    pub witness: Vec<u32>,
    /// Maximum frequency over `target` elements — the factor `f` in the
    /// guarantee `|cover| ≤ f · |witness|`.
    pub max_frequency: usize,
}

/// Primal–dual set cover of `target`; returns `None` iff some target
/// element lies in no set.
///
/// Picks the *least frequent* uncovered element each round (the most
/// constrained one — its star is smallest, which keeps the cover lean),
/// breaking ties toward the smaller element id so the output is
/// deterministic.
///
/// # Examples
///
/// ```
/// use sc_bitset::BitSet;
/// use sc_offline::primal_dual;
///
/// let u = 4;
/// let sets = vec![
///     BitSet::from_iter(u, [0, 1]),
///     BitSet::from_iter(u, [2, 3]),
///     BitSet::from_iter(u, [1, 2]),
/// ];
/// let out = primal_dual(&sets, &BitSet::full(u)).unwrap();
/// // Element 0 has frequency 1: its star {set 0} is bought first.
/// assert!(out.cover.contains(&0));
/// assert!(out.witness.len() <= out.cover.len());
/// assert!(out.cover.len() <= out.max_frequency * out.witness.len());
/// ```
pub fn primal_dual(sets: &[BitSet], target: &BitSet) -> Option<PrimalDualOutcome> {
    let mut uncovered = target.clone();
    let mut cover = Vec::new();
    let mut witness = Vec::new();
    if uncovered.is_empty() {
        return Some(PrimalDualOutcome {
            cover,
            witness,
            max_frequency: 0,
        });
    }

    // Static incidence: frequencies never change, only coverage does.
    let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); target.universe()];
    for (i, s) in sets.iter().enumerate() {
        for e in s.ones() {
            if target.contains(e) {
                incidence[e as usize].push(i as u32);
            }
        }
    }
    let max_frequency = target
        .ones()
        .map(|e| incidence[e as usize].len())
        .max()
        .unwrap_or(0);

    let mut chosen = BitSet::new(sets.len());
    while !uncovered.is_empty() {
        let pivot = uncovered
            .ones()
            .min_by_key(|&e| (incidence[e as usize].len(), e))
            .expect("uncovered nonempty");
        let star = &incidence[pivot as usize];
        if star.is_empty() {
            return None; // pivot lies in no set: infeasible
        }
        witness.push(pivot);
        for &s in star {
            if !chosen.contains(s) {
                chosen.insert(s);
                cover.push(s as usize);
                uncovered.difference_with(&sets[s as usize]);
            }
        }
    }
    Some(PrimalDualOutcome {
        cover,
        witness,
        max_frequency,
    })
}

/// A certified lower bound on the optimal cover size of `target`:
/// the dual witness of [`primal_dual`], or `None` if `target` is not
/// coverable. Costs one primal–dual run (near-linear in `Σ|r|`).
pub fn dual_lower_bound(sets: &[BitSet], target: &BitSet) -> Option<usize> {
    primal_dual(sets, target).map(|out| out.witness.len())
}

/// Maximum element frequency over `target`: the `f` in the primal–dual
/// guarantee, and the sparsity-side parameter of Section 6's regime.
pub fn max_frequency(sets: &[BitSet], target: &BitSet) -> usize {
    let mut freq = vec![0usize; target.universe()];
    for s in sets {
        for e in s.ones() {
            freq[e as usize] += 1;
        }
    }
    target.ones().map(|e| freq[e as usize]).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn feasible(sets: &[BitSet], target: &BitSet, cover: &[usize]) -> bool {
        let mut covered = BitSet::new(target.universe());
        for &i in cover {
            covered.union_with(&sets[i]);
        }
        target.is_subset(&covered)
    }

    #[test]
    fn partition_instance_is_solved_optimally() {
        // Pairwise disjoint sets: f = 1, so primal–dual is exact.
        let u = 9;
        let sets = vec![
            BitSet::from_iter(u, [0, 1, 2]),
            BitSet::from_iter(u, [3, 4, 5]),
            BitSet::from_iter(u, [6, 7, 8]),
        ];
        let out = primal_dual(&sets, &BitSet::full(u)).unwrap();
        assert_eq!(out.max_frequency, 1);
        assert_eq!(out.cover.len(), 3);
        assert_eq!(out.witness.len(), 3, "f = 1 makes the witness tight");
    }

    #[test]
    fn empty_target_and_infeasible() {
        let u = 3;
        let sets = vec![BitSet::from_iter(u, [0])];
        let out = primal_dual(&sets, &BitSet::new(u)).unwrap();
        assert!(out.cover.is_empty() && out.witness.is_empty());
        assert!(primal_dual(&sets, &BitSet::full(u)).is_none());
        assert_eq!(dual_lower_bound(&sets, &BitSet::full(u)), None);
    }

    #[test]
    fn witness_stars_are_pairwise_disjoint() {
        let mut rng = StdRng::seed_from_u64(2024);
        for _ in 0..50 {
            let u = rng.random_range(4..30);
            let m = rng.random_range(2..15);
            let mut sets: Vec<BitSet> = (0..m)
                .map(|_| BitSet::from_iter(u, (0..u as u32).filter(|_| rng.random_bool(0.3))))
                .collect();
            sets.push(BitSet::full(u));
            let target = BitSet::full(u);
            let out = primal_dual(&sets, &target).unwrap();
            assert!(feasible(&sets, &target, &out.cover));
            // No set may contain two witness elements.
            for s in &sets {
                let hits = out.witness.iter().filter(|&&e| s.contains(e)).count();
                assert!(hits <= 1, "a set meets {hits} witness elements");
            }
        }
    }

    #[test]
    fn sandwich_bound_holds_against_brute_force() {
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..40 {
            let u = rng.random_range(4..10);
            let m = rng.random_range(3..9);
            let mut sets: Vec<BitSet> = (0..m)
                .map(|_| BitSet::from_iter(u, (0..u as u32).filter(|_| rng.random_bool(0.4))))
                .collect();
            sets.push(BitSet::full(u));
            let target = BitSet::full(u);
            let out = primal_dual(&sets, &target).unwrap();
            let opt = brute_force_opt(&sets, &target);
            assert!(
                out.witness.len() <= opt,
                "trial {trial}: witness {} exceeds OPT {opt}",
                out.witness.len()
            );
            assert!(
                opt <= out.cover.len(),
                "trial {trial}: cover smaller than OPT?!"
            );
            assert!(
                out.cover.len() <= out.max_frequency.max(1) * out.witness.len(),
                "trial {trial}: f-approximation violated"
            );
        }
    }

    fn brute_force_opt(sets: &[BitSet], target: &BitSet) -> usize {
        let m = sets.len();
        assert!(m <= 20);
        let mut best = usize::MAX;
        for mask in 0u32..(1 << m) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let mut covered = BitSet::new(target.universe());
            for (i, s) in sets.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    covered.union_with(s);
                }
            }
            if target.is_subset(&covered) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn max_frequency_reports_target_restricted_frequency() {
        let u = 4;
        let sets = vec![
            BitSet::from_iter(u, [0, 3]),
            BitSet::from_iter(u, [1, 3]),
            BitSet::from_iter(u, [2, 3]),
        ];
        assert_eq!(max_frequency(&sets, &BitSet::full(u)), 3);
        // Restricting the target away from the hot element drops f.
        assert_eq!(max_frequency(&sets, &BitSet::from_iter(u, [0, 1])), 1);
        assert_eq!(max_frequency(&sets, &BitSet::new(u)), 0);
    }

    #[test]
    fn pays_f_over_2_on_the_frequency_trap() {
        // The generator plants the worst case: the hub is the least
        // frequent uncovered element, so the pivot buys its whole star
        // of f sets where the optimum needs 2 per block.
        let f = 8;
        let inst = sc_setsystem::gen::primal_dual_adversarial(f, 4);
        let sets = inst.system.all_bitsets();
        let target = BitSet::full(inst.system.universe());
        let out = primal_dual(&sets, &target).unwrap();
        let opt = inst.planted.as_ref().unwrap().len(); // 2 per block
        assert!(inst
            .system
            .verify_cover(&out.cover.iter().map(|&i| i as u32).collect::<Vec<_>>())
            .is_ok());
        assert_eq!(out.cover.len(), f * 4, "one star per block, f sets each");
        assert_eq!(
            out.cover.len(),
            (f / 2) * opt,
            "the advertised f/2 ratio, exactly"
        );
        // Greedy dodges this trap entirely (the blanket is the biggest
        // set), which is why both oracles earn their keep.
        let g = crate::greedy::greedy(&sets, &target).unwrap();
        assert!(
            g.len() <= opt + 4,
            "greedy shouldn't fall for the stars: {}",
            g.len()
        );
    }

    #[test]
    fn deterministic_output() {
        let inst = sc_setsystem::gen::planted_noisy(30, 20, 4, 9);
        let sets = inst.system.all_bitsets();
        let target = BitSet::full(inst.system.universe());
        let a = primal_dual(&sets, &target).unwrap();
        let b = primal_dual(&sets, &target).unwrap();
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.witness, b.witness);
    }
}
