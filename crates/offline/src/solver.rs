//! The `algOfflineSC` oracle handle passed into the streaming algorithms.

use crate::ExactOutcome;
use sc_bitset::BitSet;
use std::fmt;

/// The sub-instance could not be covered: some target element lies in no
/// stored set. Streaming algorithms treat this as a logic error — every
/// element of the residual universe is, by construction, in at least one
/// stored projection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Infeasible;

impl fmt::Display for Infeasible {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub-instance is not coverable")
    }
}

impl std::error::Error for Infeasible {}

/// Which offline oracle `algOfflineSC` is (ρ in the paper's bounds).
///
/// `iterSetCover` and `algGeomSC` are parameterised by this choice; the
/// benchmarks run both to populate the ρ-dependent rows of Figure 1.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OfflineSolver {
    /// Lazy greedy: ρ = ln n + 1, polynomial time.
    Greedy,
    /// Branch-and-bound with a node budget: ρ = 1 when the budget
    /// suffices (it always does at our sub-instance sizes; on exhaustion
    /// the solver degrades to its greedy warm start).
    Exact {
        /// Maximum branch-and-bound nodes before degrading to greedy.
        node_budget: u64,
    },
    /// Primal–dual (local-ratio): ρ = f, the maximum element frequency
    /// of the sub-instance. Near-linear time, and its dual witness is a
    /// certified lower bound on OPT (see [`mod@crate::primal_dual`]).
    PrimalDual,
    /// Multiplicative-weights fractional LP + randomized rounding:
    /// ρ = O(log n) with high probability, measured against the *LP*
    /// optimum (see [`crate::lp`]). Deterministic given the seed.
    LpRound {
        /// Seed for the rounding draw.
        seed: u64,
    },
}

impl OfflineSolver {
    /// A reasonable exact configuration for sub-instances up to a few
    /// thousand sets: after the dominance preprocessing this budget is
    /// almost never exhausted, and when it is, the solver degrades to
    /// its greedy warm start rather than stalling. Callers needing
    /// certified optimality (the Section 5 experiments) pass their own,
    /// larger budget and assert `optimal`.
    pub const DEFAULT_EXACT: OfflineSolver = OfflineSolver::Exact {
        node_budget: 300_000,
    };

    /// Solves the sub-instance, returning indices into `sets`.
    pub fn solve(&self, sets: &[BitSet], target: &BitSet) -> Result<Vec<usize>, Infeasible> {
        match *self {
            OfflineSolver::Greedy => crate::greedy::greedy(sets, target).ok_or(Infeasible),
            OfflineSolver::Exact { node_budget } => crate::exact::exact(sets, target, node_budget)
                .map(|ExactOutcome { cover, .. }| cover)
                .ok_or(Infeasible),
            OfflineSolver::PrimalDual => crate::primal_dual::primal_dual(sets, target)
                .map(|out| out.cover)
                .ok_or(Infeasible),
            OfflineSolver::LpRound { seed } => {
                use rand::SeedableRng;
                let n = target.count();
                let frac =
                    crate::lp::fractional_mwu(sets, target, crate::lp::default_rounds(n), 0.5)
                        .ok_or(Infeasible)?;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                crate::lp::randomized_rounding(sets, target, &frac, 1.0, &mut rng)
                    .map(|out| out.cover)
                    .ok_or(Infeasible)
            }
        }
    }

    /// Short label for reports: `"greedy"`, `"exact"`, `"primal-dual"`,
    /// or `"lp-round"`.
    pub fn label(&self) -> &'static str {
        match self {
            OfflineSolver::Greedy => "greedy",
            OfflineSolver::Exact { .. } => "exact",
            OfflineSolver::PrimalDual => "primal-dual",
            OfflineSolver::LpRound { .. } => "lp-round",
        }
    }

    /// The approximation factor ρ this oracle guarantees on
    /// sub-instances with `n` elements.
    ///
    /// For [`PrimalDual`](OfflineSolver::PrimalDual) the true guarantee
    /// is the max element frequency `f`, which is instance-dependent; in
    /// the `m = O(n)` regime the paper's lower bounds assume, `f ≤ m =
    /// O(n)`, so `n` is the honest static bound. It is only consumed by
    /// the `paper_constants` ablation, where the sample is clamped to
    /// the residual ground set anyway.
    pub fn rho(&self, n: usize) -> f64 {
        match self {
            OfflineSolver::Greedy => (n.max(2) as f64).ln() + 1.0,
            OfflineSolver::Exact { .. } => 1.0,
            OfflineSolver::PrimalDual => n.max(2) as f64,
            OfflineSolver::LpRound { .. } => 2.0 * ((n.max(2) as f64).ln() + 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> (Vec<BitSet>, BitSet) {
        let inst = sc_setsystem::gen::greedy_adversarial(4);
        let u = inst.system.universe();
        (inst.system.all_bitsets(), BitSet::full(u))
    }

    #[test]
    fn greedy_and_exact_disagree_exactly_where_rho_says() {
        let (sets, target) = instance();
        let g = OfflineSolver::Greedy.solve(&sets, &target).unwrap();
        let e = OfflineSolver::DEFAULT_EXACT.solve(&sets, &target).unwrap();
        assert_eq!(e.len(), 2);
        assert!(g.len() > e.len());
    }

    #[test]
    fn infeasible_surfaces_as_error() {
        let sets = vec![BitSet::from_iter(2, [0])];
        let target = BitSet::full(2);
        assert_eq!(OfflineSolver::Greedy.solve(&sets, &target), Err(Infeasible));
        assert_eq!(
            OfflineSolver::DEFAULT_EXACT.solve(&sets, &target),
            Err(Infeasible)
        );
    }

    #[test]
    fn rho_labels() {
        assert_eq!(OfflineSolver::Greedy.label(), "greedy");
        assert_eq!(OfflineSolver::DEFAULT_EXACT.label(), "exact");
        assert_eq!(OfflineSolver::PrimalDual.label(), "primal-dual");
        assert_eq!(OfflineSolver::LpRound { seed: 0 }.label(), "lp-round");
        assert_eq!(OfflineSolver::DEFAULT_EXACT.rho(1000), 1.0);
        assert!(OfflineSolver::Greedy.rho(1000) > 6.0);
        assert_eq!(OfflineSolver::PrimalDual.rho(1000), 1000.0);
        assert!(OfflineSolver::LpRound { seed: 0 }.rho(1000) > OfflineSolver::Greedy.rho(1000));
    }

    #[test]
    fn all_oracles_produce_feasible_covers() {
        let (sets, target) = instance();
        for solver in [
            OfflineSolver::Greedy,
            OfflineSolver::DEFAULT_EXACT,
            OfflineSolver::PrimalDual,
            OfflineSolver::LpRound { seed: 42 },
        ] {
            let cover = solver.solve(&sets, &target).unwrap();
            let mut covered = BitSet::new(target.universe());
            for &i in &cover {
                covered.union_with(&sets[i]);
            }
            assert!(
                target.is_subset(&covered),
                "{} produced a non-cover",
                solver.label()
            );
        }
    }

    #[test]
    fn new_oracles_report_infeasible() {
        let sets = vec![BitSet::from_iter(2, [0])];
        let target = BitSet::full(2);
        assert_eq!(
            OfflineSolver::PrimalDual.solve(&sets, &target),
            Err(Infeasible)
        );
        assert_eq!(
            OfflineSolver::LpRound { seed: 7 }.solve(&sets, &target),
            Err(Infeasible)
        );
    }

    #[test]
    fn lp_round_is_deterministic_for_a_seed() {
        let (sets, target) = instance();
        let solver = OfflineSolver::LpRound { seed: 9 };
        assert_eq!(solver.solve(&sets, &target), solver.solve(&sets, &target));
    }
}
