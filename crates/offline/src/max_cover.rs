//! Greedy Max-k-Cover, the primitive behind the Saha–Getoor baseline.

use sc_bitset::BitSet;

/// Picks at most `k` sets greedily to maximise coverage of `target`.
///
/// Returns the chosen indices and the number of target elements they
/// cover. This is the classical `(1 - 1/e)`-approximate greedy for
/// Max-k-Cover; the Saha–Getoor streaming baseline (\[SG09\] in the paper)
/// reduces Set Cover to `O(log n)` rounds of Max-k-Cover.
///
/// Stops early once `target` is exhausted, so the returned vector may be
/// shorter than `k`.
///
/// # Examples
///
/// ```
/// use sc_bitset::BitSet;
/// use sc_offline::max_k_cover;
///
/// let u = 6;
/// let sets = vec![
///     BitSet::from_iter(u, [0, 1, 2]),
///     BitSet::from_iter(u, [2, 3]),
///     BitSet::from_iter(u, [4, 5]),
/// ];
/// let (picked, covered) = max_k_cover(&sets, &BitSet::full(u), 2);
/// assert_eq!(picked, vec![0, 2]);
/// assert_eq!(covered, 5);
/// ```
pub fn max_k_cover(sets: &[BitSet], target: &BitSet, k: usize) -> (Vec<usize>, usize) {
    let mut uncovered = target.clone();
    let total = uncovered.count();
    let mut picked = Vec::with_capacity(k.min(sets.len()));
    for _ in 0..k {
        if uncovered.is_empty() {
            break;
        }
        let best = sets
            .iter()
            .enumerate()
            .map(|(i, s)| (s.intersection_count(&uncovered), std::cmp::Reverse(i)))
            .max();
        match best {
            Some((gain, std::cmp::Reverse(idx))) if gain > 0 => {
                picked.push(idx);
                uncovered.difference_with(&sets[idx]);
            }
            _ => break, // nothing left to gain
        }
    }
    (picked, total - uncovered.count())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stops_when_target_covered() {
        let u = 4;
        let sets = vec![BitSet::full(u), BitSet::from_iter(u, [0])];
        let (picked, covered) = max_k_cover(&sets, &BitSet::full(u), 3);
        assert_eq!(picked, vec![0]);
        assert_eq!(covered, 4);
    }

    #[test]
    fn respects_k() {
        let u = 6;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [2, 3]),
            BitSet::from_iter(u, [4, 5]),
        ];
        let (picked, covered) = max_k_cover(&sets, &BitSet::full(u), 2);
        assert_eq!(picked.len(), 2);
        assert_eq!(covered, 4);
    }

    #[test]
    fn zero_gain_terminates() {
        let u = 4;
        let sets = vec![BitSet::from_iter(u, [0])];
        let (picked, covered) = max_k_cover(&sets, &BitSet::full(u), 4);
        assert_eq!(picked, vec![0]);
        assert_eq!(covered, 1, "remaining elements unreachable");
    }

    #[test]
    fn empty_inputs() {
        let (picked, covered) = max_k_cover(&[], &BitSet::full(3), 2);
        assert!(picked.is_empty());
        assert_eq!(covered, 0);
        let sets = vec![BitSet::from_iter(3, [0])];
        let (picked, covered) = max_k_cover(&sets, &BitSet::new(3), 2);
        assert!(picked.is_empty());
        assert_eq!(covered, 0);
    }
}
