//! Offline set cover solvers — the paper's `algOfflineSC`.
//!
//! `iterSetCover` (Figure 1.3) and `algGeomSC` (Figure 4.1) both invoke
//! an offline oracle on the instance held in memory. The paper
//! parameterises its bounds by the oracle quality ρ:
//!
//! * **ρ = ln n** — the classical greedy algorithm, here implemented as
//!   *lazy greedy* ([`greedy()`](greedy::greedy)): gains only shrink, so a stale priority
//!   entry can be re-evaluated on pop instead of rescanning the family.
//!   The priority structure is a gain-indexed [`BucketQueue`] whose
//!   cursor only moves down — amortised `O(1)` per queue operation
//!   versus the `O(log m)` of the retained heap reference
//!   ([`greedy_heap`](greedy::greedy_heap)).
//! * **ρ = 1** — an exact solver, which the paper invokes under the
//!   "exponential computational power" assumption (Theorem 2.8 sets
//!   δ = c/log n with ρ = 1 to match Nisan's lower bound). Implemented
//!   as branch-and-bound ([`exact()`](exact::exact)) with dominance-free branching on the
//!   hardest element, greedy warm start, and a counting lower bound.
//!
//! Both operate on *sub-instances*: a slice of dense bitsets over a
//! compact local universe (the element sample of the moment), because
//! that is exactly what the streaming algorithms hold in memory when
//! they call the oracle. [`max_k_cover`] is the Max-k-Cover greedy that
//! the Saha–Getoor baseline needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket_queue;
pub mod exact;
pub mod greedy;
pub mod lp;
pub mod max_cover;
pub mod primal_dual;
mod solver;

pub use bucket_queue::BucketQueue;
pub use exact::{exact, ExactOutcome};
pub use greedy::{greedy, greedy_heap, greedy_slices, greedy_slices_heap};
pub use lp::{
    fractional_coverage, fractional_mwu, randomized_rounding, FractionalCover, RoundedCover,
};
pub use max_cover::max_k_cover;
pub use primal_dual::{dual_lower_bound, max_frequency, primal_dual, PrimalDualOutcome};
pub use solver::{Infeasible, OfflineSolver};

use sc_bitset::BitSet;

/// Checks that `target ⊆ ⋃ sets` — the precondition of every solver.
pub fn is_feasible(sets: &[BitSet], target: &BitSet) -> bool {
    let mut reach = BitSet::new(target.universe());
    for s in sets {
        reach.union_with(s);
    }
    target.is_subset(&reach)
}

/// Dominance filter over sparse sets given as sorted id slices: returns
/// the indices of the inclusion-*maximal* sets (duplicates keep their
/// first occurrence).
///
/// Some optimal cover uses only maximal sets, so solvers may restrict
/// to the survivors. Streaming callers run this on their stored
/// projections before densifying anything — typically collapsing
/// thousands of dominated projections to a handful.
pub fn dominance_filter_slices<'a, F>(count: usize, get: F) -> Vec<usize>
where
    F: Fn(usize) -> &'a [u32],
{
    let mut order: Vec<usize> = (0..count).filter(|&i| !get(i).is_empty()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(get(i).len()), i));
    let mut kept: Vec<usize> = Vec::new();
    'cand: for i in order {
        let s = get(i);
        for &j in &kept {
            if sorted_subset(s, get(j)) {
                continue 'cand;
            }
        }
        kept.push(i);
    }
    kept.sort_unstable();
    kept
}

/// `a ⊆ b` for sorted, deduplicated slices (linear merge).
fn sorted_subset(a: &[u32], b: &[u32]) -> bool {
    let mut bi = 0usize;
    'outer: for &x in a {
        while bi < b.len() {
            match b[bi].cmp(&x) {
                std::cmp::Ordering::Less => bi += 1,
                std::cmp::Ordering::Equal => {
                    bi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasibility_check() {
        let u = 4;
        let sets = vec![BitSet::from_iter(u, [0, 1]), BitSet::from_iter(u, [2])];
        assert!(is_feasible(&sets, &BitSet::from_iter(u, [0, 2])));
        assert!(!is_feasible(&sets, &BitSet::from_iter(u, [3])));
        assert!(
            is_feasible(&sets, &BitSet::new(u)),
            "empty target always feasible"
        );
    }

    #[test]
    fn dominance_filter_keeps_maximal_only() {
        let sets: Vec<Vec<u32>> = vec![
            vec![1, 2, 3], // kept
            vec![1, 2],    // dominated by 0
            vec![4, 5],    // kept
            vec![],        // dropped (empty)
            vec![1, 2, 3], // duplicate of 0 — dropped
            vec![3, 4],    // kept (not a subset of anything)
        ];
        let kept = dominance_filter_slices(sets.len(), |i| sets[i].as_slice());
        assert_eq!(kept, vec![0, 2, 5]);
    }

    #[test]
    fn dominance_filter_union_is_preserved() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let m = rng.random_range(1..20);
            let sets: Vec<Vec<u32>> = (0..m)
                .map(|_| {
                    let mut v: Vec<u32> = (0..20u32).filter(|_| rng.random_bool(0.3)).collect();
                    v.sort_unstable();
                    v
                })
                .collect();
            let kept = dominance_filter_slices(sets.len(), |i| sets[i].as_slice());
            let full: std::collections::BTreeSet<u32> = sets.iter().flatten().copied().collect();
            let reduced: std::collections::BTreeSet<u32> =
                kept.iter().flat_map(|&i| sets[i].iter().copied()).collect();
            assert_eq!(full, reduced, "filter lost coverage");
        }
    }

    #[test]
    fn sorted_subset_basics() {
        assert!(sorted_subset(&[], &[1, 2]));
        assert!(sorted_subset(&[2], &[1, 2, 3]));
        assert!(!sorted_subset(&[0], &[1, 2]));
        assert!(!sorted_subset(&[1, 4], &[1, 2, 3]));
        assert!(sorted_subset(&[1, 2, 3], &[1, 2, 3]));
    }
}
