//! Lazy greedy set cover (ρ = ln n + 1).

use sc_bitset::BitSet;
use std::collections::BinaryHeap;

/// Greedy set cover over a sub-instance.
///
/// Repeatedly picks the set covering the most still-uncovered elements
/// of `target` until `target` is exhausted; returns indices into `sets`.
/// Classic `(ln n + 1)`-approximation (Johnson/Lovász/Chvátal).
///
/// Uses *lazy evaluation*: gains are monotone non-increasing as elements
/// get covered, so a heap entry holding a stale gain is still an upper
/// bound; on pop we re-count, and only re-push when the fresh gain lost
/// the top spot. Ties break toward the smaller index, which keeps the
/// output deterministic.
///
/// Returns `None` if some element of `target` is in no set.
///
/// # Examples
///
/// ```
/// use sc_bitset::BitSet;
/// use sc_offline::greedy;
///
/// let u = 6;
/// let sets = vec![
///     BitSet::from_iter(u, [0, 1, 2, 3]),
///     BitSet::from_iter(u, [0, 1]),
///     BitSet::from_iter(u, [4, 5]),
/// ];
/// let cover = greedy(&sets, &BitSet::full(u)).unwrap();
/// assert_eq!(cover, vec![0, 2]);
/// ```
pub fn greedy(sets: &[BitSet], target: &BitSet) -> Option<Vec<usize>> {
    let mut uncovered = target.clone();
    let mut solution = Vec::new();
    if uncovered.is_empty() {
        return Some(solution);
    }

    // Max-heap of (gain, Reverse-ish index). BinaryHeap is a max-heap on
    // the tuple; we want larger gain first and *smaller* index first on
    // ties, so store (gain, !index).
    let mut heap: BinaryHeap<(usize, usize)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| (s.intersection_count(&uncovered), !i))
        .filter(|&(g, _)| g > 0)
        .collect();

    while !uncovered.is_empty() {
        let (stale_gain, key) = heap.pop()?;
        let idx = !key;
        let fresh_gain = sets[idx].intersection_count(&uncovered);
        if fresh_gain == 0 {
            continue;
        }
        if fresh_gain < stale_gain {
            // Entry was stale; only re-insert if it may still win.
            if let Some(&(top_gain, _)) = heap.peek() {
                if fresh_gain < top_gain {
                    heap.push((fresh_gain, key));
                    continue;
                }
            }
        }
        solution.push(idx);
        uncovered.difference_with(&sets[idx]);
    }
    Some(solution)
}

/// Greedy set cover over *sparse* sets given as sorted id slices —
/// `algOfflineSC` exactly as the streaming algorithms hold it in memory
/// (stored projections), without densifying anything.
///
/// Identical semantics to [`greedy`] (same lazy-heap strategy, same
/// tie-breaking), but working memory beyond the caller's own structures
/// is one `target`-sized bitmap plus the heap — the "linear space"
/// promise the paper makes for its offline oracle.
///
/// `get(i)` returns the sorted element ids of set `i`.
pub fn greedy_slices<'a, F>(num_sets: usize, get: F, target: &BitSet) -> Option<Vec<usize>>
where
    F: Fn(usize) -> &'a [u32],
{
    let mut uncovered = target.clone();
    let mut solution = Vec::new();
    if uncovered.is_empty() {
        return Some(solution);
    }
    // Word-batched kernel: the stored projections are sorted id slices.
    let count =
        |i: usize, uncovered: &BitSet| -> usize { uncovered.intersection_count_slice(get(i)) };
    let mut heap: BinaryHeap<(usize, usize)> = (0..num_sets)
        .map(|i| (count(i, &uncovered), !i))
        .filter(|&(g, _)| g > 0)
        .collect();
    while !uncovered.is_empty() {
        let (stale_gain, key) = heap.pop()?;
        let idx = !key;
        let fresh_gain = count(idx, &uncovered);
        if fresh_gain == 0 {
            continue;
        }
        if fresh_gain < stale_gain {
            if let Some(&(top_gain, _)) = heap.peek() {
                if fresh_gain < top_gain {
                    heap.push((fresh_gain, key));
                    continue;
                }
            }
        }
        solution.push(idx);
        uncovered.remove_sorted_slice(get(idx));
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_cover(sets: &[BitSet], u: usize) -> Option<Vec<usize>> {
        greedy(sets, &BitSet::full(u))
    }

    #[test]
    fn picks_largest_first() {
        let u = 10;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, (0..7).collect::<Vec<_>>()),
            BitSet::from_iter(u, [7, 8, 9]),
        ];
        assert_eq!(full_cover(&sets, u).unwrap(), vec![1, 2]);
    }

    #[test]
    fn infeasible_returns_none() {
        let u = 3;
        let sets = vec![BitSet::from_iter(u, [0])];
        assert_eq!(full_cover(&sets, u), None);
    }

    #[test]
    fn empty_target_is_empty_cover() {
        let u = 5;
        let sets = vec![BitSet::from_iter(u, [0])];
        assert_eq!(greedy(&sets, &BitSet::new(u)).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn covers_only_the_target() {
        let u = 6;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [2, 3]),
            BitSet::from_iter(u, [4, 5]),
        ];
        let target = BitSet::from_iter(u, [0, 4]);
        let cover = greedy(&sets, &target).unwrap();
        assert_eq!(cover, vec![0, 2], "set 1 is irrelevant to the target");
    }

    #[test]
    fn tie_breaks_toward_smaller_index() {
        let u = 4;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [2, 3]),
        ];
        assert_eq!(full_cover(&sets, u).unwrap(), vec![0, 2]);
    }

    #[test]
    fn classic_log_gap_instance() {
        // Greedy takes the baits on the adversarial instance: the point
        // of the ρ = ln n label.
        let inst = sc_setsystem::gen::greedy_adversarial(5);
        let sets = inst.system.all_bitsets();
        let cover = full_cover(&sets, inst.system.universe()).unwrap();
        assert!(
            cover.len() >= 5,
            "greedy must fall for the baits, got {}",
            cover.len()
        );
        // Sanity: it is still a cover.
        let ids: Vec<u32> = cover.iter().map(|&i| i as u32).collect();
        assert!(inst.system.verify_cover(&ids).is_ok());
    }

    #[test]
    fn duplicate_sets_dont_loop() {
        let u = 2;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 1]),
        ];
        assert_eq!(full_cover(&sets, u).unwrap(), vec![0]);
    }

    #[test]
    fn greedy_slices_matches_dense_greedy() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let u = rng.random_range(4..40);
            let m = rng.random_range(1..12);
            let mut raw: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..u as u32).filter(|_| rng.random_bool(0.3)).collect())
                .collect();
            raw.push((0..u as u32).collect());
            let dense: Vec<BitSet> = raw
                .iter()
                .map(|s| BitSet::from_iter(u, s.iter().copied()))
                .collect();
            let target = BitSet::full(u);
            let a = greedy(&dense, &target).unwrap();
            let b = greedy_slices(raw.len(), |i| raw[i].as_slice(), &target).unwrap();
            assert_eq!(a, b, "sparse and dense greedy must agree");
        }
    }

    #[test]
    fn greedy_slices_infeasible_is_none() {
        let raw = [vec![0u32]];
        let target = BitSet::full(2);
        assert_eq!(greedy_slices(1, |i| raw[i].as_slice(), &target), None);
    }
}
