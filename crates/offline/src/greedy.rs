//! Lazy greedy set cover (ρ = ln n + 1).
//!
//! Two queue disciplines implement the same lazy-evaluation strategy:
//! the production path runs on a gain-indexed [`BucketQueue`] (gains
//! only shrink, so a cursor walking the buckets top-down does the work
//! of a max-heap in amortised `O(1)` per operation — `O(Σ|proj|)`
//! total for the sparse oracle), while the original `BinaryHeap`
//! implementations are retained as [`greedy_heap`] /
//! [`greedy_slices_heap`]: the reference the property suite pins the
//! bucket path against bit for bit, and the baseline the `kernels`
//! experiment (E21) measures the speedup over.

use crate::bucket_queue::BucketQueue;
use sc_bitset::BitSet;
use std::collections::BinaryHeap;

/// Greedy set cover over a sub-instance.
///
/// Repeatedly picks the set covering the most still-uncovered elements
/// of `target` until `target` is exhausted; returns indices into `sets`.
/// Classic `(ln n + 1)`-approximation (Johnson/Lovász/Chvátal).
///
/// Uses *lazy evaluation*: gains are monotone non-increasing as elements
/// get covered, so a queue entry holding a stale gain is still an upper
/// bound; on pop we re-count, and only re-file when the fresh gain lost
/// the top spot. Ties break toward the smaller index, which keeps the
/// output deterministic — and identical to [`greedy_heap`].
///
/// Returns `None` if some element of `target` is in no set.
///
/// # Examples
///
/// ```
/// use sc_bitset::BitSet;
/// use sc_offline::greedy;
///
/// let u = 6;
/// let sets = vec![
///     BitSet::from_iter(u, [0, 1, 2, 3]),
///     BitSet::from_iter(u, [0, 1]),
///     BitSet::from_iter(u, [4, 5]),
/// ];
/// let cover = greedy(&sets, &BitSet::full(u)).unwrap();
/// assert_eq!(cover, vec![0, 2]);
/// ```
pub fn greedy(sets: &[BitSet], target: &BitSet) -> Option<Vec<usize>> {
    greedy_bucket_core(
        sets.len(),
        |i, uncovered| sets[i].intersection_count(uncovered),
        |i, uncovered| uncovered.difference_with(&sets[i]),
        target,
    )
}

/// Greedy set cover over *sparse* sets given as sorted id slices —
/// `algOfflineSC` exactly as the streaming algorithms hold it in memory
/// (stored projections), without densifying anything.
///
/// Identical semantics to [`greedy`] (same lazy strategy, same
/// tie-breaking), but working memory beyond the caller's own structures
/// is one `target`-sized bitmap plus the bucket queue — the "linear
/// space" promise the paper makes for its offline oracle — and total
/// queue work is `O(Σ|proj|)`.
///
/// `get(i)` returns the sorted element ids of set `i`.
pub fn greedy_slices<'a, F>(num_sets: usize, get: F, target: &BitSet) -> Option<Vec<usize>>
where
    F: Fn(usize) -> &'a [u32],
{
    greedy_bucket_core(
        num_sets,
        |i, uncovered| uncovered.intersection_count_slice(get(i)),
        |i, uncovered| uncovered.remove_sorted_slice(get(i)),
        target,
    )
}

/// The shared lazy-greedy loop on the gain-indexed bucket queue.
///
/// Replicates the lazy heap's selection rule exactly: pop in `(gain
/// desc, index asc)` order; a popped entry whose fresh gain dropped is
/// re-filed only when it is *strictly* below the next queued gain —
/// when it merely ties, the popped entry wins, exactly as the heap
/// version kept it. `multiplex_equivalence` and `service_equivalence`
/// depend on covers staying bit-identical through this swap.
fn greedy_bucket_core(
    num_sets: usize,
    count: impl Fn(usize, &BitSet) -> usize,
    remove: impl Fn(usize, &mut BitSet),
    target: &BitSet,
) -> Option<Vec<usize>> {
    let mut uncovered = target.clone();
    let mut solution = Vec::new();
    if uncovered.is_empty() {
        return Some(solution);
    }
    assert!(
        u32::try_from(num_sets).is_ok(),
        "bucket queue indexes sets as u32"
    );
    let gains: Vec<usize> = (0..num_sets).map(|i| count(i, &uncovered)).collect();
    let max_gain = gains.iter().copied().max().unwrap_or(0);
    let mut queue = BucketQueue::new(max_gain);
    for (i, &g) in gains.iter().enumerate() {
        if g > 0 {
            queue.push(g, i as u32);
        }
    }
    while !uncovered.is_empty() {
        let (stale_gain, idx) = queue.pop()?;
        let idx = idx as usize;
        let fresh_gain = count(idx, &uncovered);
        debug_assert!(fresh_gain <= stale_gain, "gains must be monotone");
        if fresh_gain == 0 {
            continue;
        }
        if fresh_gain < stale_gain {
            if let Some(top_gain) = queue.peek_gain() {
                if fresh_gain < top_gain {
                    queue.push(fresh_gain, idx as u32);
                    continue;
                }
            }
        }
        solution.push(idx);
        remove(idx, &mut uncovered);
    }
    Some(solution)
}

/// The original `BinaryHeap` lazy greedy, retained as the reference
/// implementation: equivalence tests pin [`greedy`] against it, and
/// E21 measures the bucket queue's speedup over it.
pub fn greedy_heap(sets: &[BitSet], target: &BitSet) -> Option<Vec<usize>> {
    greedy_heap_core(
        sets.len(),
        |i, uncovered| sets[i].intersection_count(uncovered),
        |i, uncovered| uncovered.difference_with(&sets[i]),
        target,
    )
}

/// The original `BinaryHeap` sparse lazy greedy, retained as the
/// reference for [`greedy_slices`] (see [`greedy_heap`]).
pub fn greedy_slices_heap<'a, F>(num_sets: usize, get: F, target: &BitSet) -> Option<Vec<usize>>
where
    F: Fn(usize) -> &'a [u32],
{
    greedy_heap_core(
        num_sets,
        |i, uncovered| uncovered.intersection_count_slice(get(i)),
        |i, uncovered| uncovered.remove_sorted_slice(get(i)),
        target,
    )
}

/// The shared lazy-greedy loop on a max-heap of `(gain, !index)` —
/// larger gain first, *smaller* index first on ties.
fn greedy_heap_core(
    num_sets: usize,
    count: impl Fn(usize, &BitSet) -> usize,
    remove: impl Fn(usize, &mut BitSet),
    target: &BitSet,
) -> Option<Vec<usize>> {
    let mut uncovered = target.clone();
    let mut solution = Vec::new();
    if uncovered.is_empty() {
        return Some(solution);
    }
    let mut heap: BinaryHeap<(usize, usize)> = (0..num_sets)
        .map(|i| (count(i, &uncovered), !i))
        .filter(|&(g, _)| g > 0)
        .collect();
    while !uncovered.is_empty() {
        let (stale_gain, key) = heap.pop()?;
        let idx = !key;
        let fresh_gain = count(idx, &uncovered);
        if fresh_gain == 0 {
            continue;
        }
        if fresh_gain < stale_gain {
            // Entry was stale; only re-insert if it may still win.
            if let Some(&(top_gain, _)) = heap.peek() {
                if fresh_gain < top_gain {
                    heap.push((fresh_gain, key));
                    continue;
                }
            }
        }
        solution.push(idx);
        remove(idx, &mut uncovered);
    }
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_cover(sets: &[BitSet], u: usize) -> Option<Vec<usize>> {
        greedy(sets, &BitSet::full(u))
    }

    #[test]
    fn picks_largest_first() {
        let u = 10;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, (0..7).collect::<Vec<_>>()),
            BitSet::from_iter(u, [7, 8, 9]),
        ];
        assert_eq!(full_cover(&sets, u).unwrap(), vec![1, 2]);
    }

    #[test]
    fn infeasible_returns_none() {
        let u = 3;
        let sets = vec![BitSet::from_iter(u, [0])];
        assert_eq!(full_cover(&sets, u), None);
        assert_eq!(greedy_heap(&sets, &BitSet::full(u)), None);
    }

    #[test]
    fn empty_target_is_empty_cover() {
        let u = 5;
        let sets = vec![BitSet::from_iter(u, [0])];
        assert_eq!(greedy(&sets, &BitSet::new(u)).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn covers_only_the_target() {
        let u = 6;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [2, 3]),
            BitSet::from_iter(u, [4, 5]),
        ];
        let target = BitSet::from_iter(u, [0, 4]);
        let cover = greedy(&sets, &target).unwrap();
        assert_eq!(cover, vec![0, 2], "set 1 is irrelevant to the target");
    }

    #[test]
    fn tie_breaks_toward_smaller_index() {
        let u = 4;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [2, 3]),
        ];
        assert_eq!(full_cover(&sets, u).unwrap(), vec![0, 2]);
    }

    #[test]
    fn classic_log_gap_instance() {
        // Greedy takes the baits on the adversarial instance: the point
        // of the ρ = ln n label.
        let inst = sc_setsystem::gen::greedy_adversarial(5);
        let sets = inst.system.all_bitsets();
        let cover = full_cover(&sets, inst.system.universe()).unwrap();
        assert!(
            cover.len() >= 5,
            "greedy must fall for the baits, got {}",
            cover.len()
        );
        // Sanity: it is still a cover.
        let ids: Vec<u32> = cover.iter().map(|&i| i as u32).collect();
        assert!(inst.system.verify_cover(&ids).is_ok());
    }

    #[test]
    fn duplicate_sets_dont_loop() {
        let u = 2;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 1]),
        ];
        assert_eq!(full_cover(&sets, u).unwrap(), vec![0]);
    }

    #[test]
    fn greedy_slices_matches_dense_greedy() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let u = rng.random_range(4..40);
            let m = rng.random_range(1..12);
            let mut raw: Vec<Vec<u32>> = (0..m)
                .map(|_| (0..u as u32).filter(|_| rng.random_bool(0.3)).collect())
                .collect();
            raw.push((0..u as u32).collect());
            let dense: Vec<BitSet> = raw
                .iter()
                .map(|s| BitSet::from_iter(u, s.iter().copied()))
                .collect();
            let target = BitSet::full(u);
            let a = greedy(&dense, &target).unwrap();
            let b = greedy_slices(raw.len(), |i| raw[i].as_slice(), &target).unwrap();
            assert_eq!(a, b, "sparse and dense greedy must agree");
        }
    }

    #[test]
    fn greedy_slices_infeasible_is_none() {
        let raw = [vec![0u32]];
        let target = BitSet::full(2);
        assert_eq!(greedy_slices(1, |i| raw[i].as_slice(), &target), None);
        assert_eq!(greedy_slices_heap(1, |i| raw[i].as_slice(), &target), None);
    }
}
