//! Exact set cover by branch-and-bound (ρ = 1).
//!
//! The paper invokes an exact oracle under the "exponential
//! computational power" assumption (Theorem 2.8, footnote 4), and the
//! lower-bound verifications of Sections 5–6 need certified optimal
//! cover sizes (Corollary 5.8 distinguishes `(2p+1)n+1` from
//! `(2p+1)n+2`). This solver is exact whenever it terminates within its
//! node budget, and says so.

use sc_bitset::BitSet;

/// Result of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// Best cover found (indices into the input slice).
    pub cover: Vec<usize>,
    /// `true` iff the search space was exhausted, certifying optimality.
    pub optimal: bool,
    /// Search nodes expanded.
    pub nodes: u64,
}

/// Exact (certified, budget permitting) minimum set cover of `target`.
///
/// Strategy:
///
/// * **dominance preprocessing** — project every set onto `target`,
///   drop empties, deduplicate, and drop any set whose projection is
///   contained in another's: some optimal cover uses only maximal
///   projections, and real families (planted decoys, stored streaming
///   projections) collapse dramatically under this filter;
/// * **warm start** — greedy provides the initial upper bound;
/// * **branching** — pick the uncovered element contained in the fewest
///   sets and branch on its candidate sets, largest residual gain first.
///   Every cover must contain one of the candidates, so this is complete
///   without ever branching on "skip this set";
/// * **pruning** — `current + ⌈|uncovered| / max_gain⌉ ≥ best` cuts the
///   subtree (a counting lower bound);
/// * **budget** — at most `node_budget` nodes are expanded; on
///   exhaustion the best-so-far cover is returned with `optimal =
///   false` (it is still a valid cover thanks to the warm start).
///
/// Returns `None` if `target` is not coverable at all. Returned indices
/// refer to the original `sets` slice.
pub fn exact(sets: &[BitSet], target: &BitSet, node_budget: u64) -> Option<ExactOutcome> {
    // Dominance preprocessing in target-projected space.
    let mut projected: Vec<(usize, BitSet)> = sets
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut p = s.clone();
            p.intersect_with(target);
            (i, p)
        })
        .filter(|(_, p)| !p.is_empty())
        .collect();
    // Largest first so subset checks run against kept supersets only.
    projected.sort_by_key(|(i, p)| (std::cmp::Reverse(p.count()), *i));
    let mut kept: Vec<(usize, BitSet)> = Vec::new();
    for (i, p) in projected {
        if kept.iter().any(|(_, q)| p.is_subset(q)) {
            continue; // dominated (or duplicate of) a kept set
        }
        kept.push((i, p));
    }
    let original: Vec<usize> = kept.iter().map(|(i, _)| *i).collect();
    let reduced: Vec<BitSet> = kept.into_iter().map(|(_, p)| p).collect();

    let warm = crate::greedy::greedy(&reduced, target)?;
    let mut search = Search {
        sets: &reduced,
        // Element -> candidate set indices, computed once.
        incidence: incidence(&reduced, target),
        best: warm,
        nodes: 0,
        budget: node_budget,
        exhausted: true,
    };
    let mut chosen = Vec::new();
    search.descend(target.clone(), &mut chosen);
    Some(ExactOutcome {
        optimal: search.exhausted,
        cover: search.best.into_iter().map(|i| original[i]).collect(),
        nodes: search.nodes,
    })
}

/// For each element of the universe, the indices of sets containing it
/// (restricted to elements of `target`).
fn incidence(sets: &[BitSet], target: &BitSet) -> Vec<Vec<u32>> {
    let mut inc = vec![Vec::new(); target.universe()];
    for (i, s) in sets.iter().enumerate() {
        for e in s.ones() {
            if target.contains(e) {
                inc[e as usize].push(i as u32);
            }
        }
    }
    inc
}

struct Search<'a> {
    sets: &'a [BitSet],
    incidence: Vec<Vec<u32>>,
    best: Vec<usize>,
    nodes: u64,
    budget: u64,
    exhausted: bool,
}

impl Search<'_> {
    fn descend(&mut self, uncovered: BitSet, chosen: &mut Vec<usize>) {
        if uncovered.is_empty() {
            if chosen.len() < self.best.len() {
                self.best = chosen.clone();
            }
            return;
        }
        if chosen.len() + 1 >= self.best.len() {
            // Even one more set cannot beat the incumbent.
            return;
        }
        self.nodes += 1;
        if self.nodes > self.budget {
            self.exhausted = false;
            return;
        }

        // Counting lower bound: every remaining set covers at most
        // `max_gain` uncovered elements.
        let max_gain = self
            .sets
            .iter()
            .map(|s| s.intersection_count(&uncovered))
            .max()
            .unwrap_or(0);
        if max_gain == 0 {
            return; // dead end (cannot happen on feasible instances)
        }
        let lower = uncovered.count().div_ceil(max_gain);
        if chosen.len() + lower >= self.best.len() {
            return;
        }

        // Branch on the most constrained uncovered element.
        let pivot = uncovered
            .ones()
            .min_by_key(|&e| self.incidence[e as usize].len())
            .expect("uncovered nonempty");
        let mut candidates: Vec<u32> = self.incidence[pivot as usize].clone();
        // Largest residual gain first: find good covers early, prune more.
        candidates.sort_by_cached_key(|&i| {
            std::cmp::Reverse(self.sets[i as usize].intersection_count(&uncovered))
        });

        for idx in candidates {
            let mut rest = uncovered.clone();
            rest.difference_with(&self.sets[idx as usize]);
            chosen.push(idx as usize);
            self.descend(rest, chosen);
            chosen.pop();
            if !self.exhausted {
                return; // budget blown; unwind without claiming optimality
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: u64 = 1_000_000;

    fn solve(sets: &[BitSet], u: usize) -> ExactOutcome {
        exact(sets, &BitSet::full(u), BUDGET).expect("feasible")
    }

    #[test]
    fn beats_greedy_on_adversarial_instance() {
        let inst = sc_setsystem::gen::greedy_adversarial(5);
        let sets = inst.system.all_bitsets();
        let out = solve(&sets, inst.system.universe());
        assert!(out.optimal);
        assert_eq!(out.cover.len(), 2, "exact finds the two planted rows");
    }

    #[test]
    fn trivial_instances() {
        let u = 3;
        let sets = vec![BitSet::full(u)];
        let out = solve(&sets, u);
        assert_eq!(out.cover, vec![0]);

        let empty_target = BitSet::new(u);
        let out = exact(&sets, &empty_target, BUDGET).unwrap();
        assert!(out.cover.is_empty());
        assert!(out.optimal);
    }

    #[test]
    fn infeasible_is_none() {
        let u = 2;
        let sets = vec![BitSet::from_iter(u, [0])];
        assert!(exact(&sets, &BitSet::full(u), BUDGET).is_none());
    }

    #[test]
    fn exact_matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..40 {
            let u = rng.random_range(4..10);
            let m = rng.random_range(3..9);
            let mut sets: Vec<BitSet> = (0..m)
                .map(|_| BitSet::from_iter(u, (0..u as u32).filter(|_| rng.random_bool(0.4))))
                .collect();
            // Force feasibility.
            sets.push(BitSet::full(u));
            let target = BitSet::full(u);
            let out = exact(&sets, &target, BUDGET).unwrap();
            assert!(out.optimal, "trial {trial} blew the budget");
            assert_eq!(
                out.cover.len(),
                brute_force_opt(&sets, &target),
                "trial {trial}: wrong optimum"
            );
            // And the cover is a cover.
            let mut covered = BitSet::new(u);
            for &i in &out.cover {
                covered.union_with(&sets[i]);
            }
            assert!(target.is_subset(&covered), "trial {trial}: not a cover");
        }
    }

    fn brute_force_opt(sets: &[BitSet], target: &BitSet) -> usize {
        let m = sets.len();
        assert!(m <= 20);
        let mut best = usize::MAX;
        for mask in 0u32..(1 << m) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let mut covered = BitSet::new(target.universe());
            for (i, s) in sets.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    covered.union_with(s);
                }
            }
            if target.is_subset(&covered) {
                best = size;
            }
        }
        best
    }

    #[test]
    fn budget_exhaustion_degrades_gracefully() {
        // A planted instance large enough that 2 nodes cannot finish
        // (the full search on this instance expands dozens of nodes).
        let inst = sc_setsystem::gen::planted_noisy(80, 120, 8, 3);
        let sets = inst.system.all_bitsets();
        let out = exact(&sets, &BitSet::full(80), 2).unwrap();
        assert!(!out.optimal);
        // Still a valid cover (the greedy warm start at worst).
        let mut covered = BitSet::new(80);
        for &i in &out.cover {
            covered.union_with(&sets[i]);
        }
        assert_eq!(covered.count(), 80);
    }
}
