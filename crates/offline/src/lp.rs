//! Fractional set cover by multiplicative weights, plus randomized
//! rounding: ρ = O(log n) with high probability.
//!
//! The covering LP `min Σ_S x_S  s.t.  Σ_{S∋e} x_S ≥ 1` is solved
//! approximately by the multiplicative-weights best-response dynamic:
//! elements carry weights, each round the set with the largest weighted
//! coverage is played, and covered elements are down-weighted. Averaging
//! the played sets and normalising by the worst per-element coverage
//! yields a feasible fractional cover whose value converges to the LP
//! optimum as the round budget grows. Randomized rounding with an
//! `O(log n)` inflation then produces an integral cover.
//!
//! Two reasons this earns its place next to [`greedy`](mod@crate::greedy):
//! the *fractional value is a lower-bound certificate* on OPT
//! (`⌈value⌉ ≤ OPT` once the dynamic has converged — the benches report
//! it alongside the primal–dual witness), and rounding's `ρ = O(log n)`
//! holds against the **LP optimum**, a strictly stronger baseline than
//! greedy's `ln n · OPT`.

use rand::rngs::StdRng;
use rand::RngExt;
use sc_bitset::BitSet;

/// A feasible fractional cover produced by [`fractional_mwu`].
#[derive(Debug, Clone)]
pub struct FractionalCover {
    /// `x_S` per input set; `Σ_{S∋e} x_S ≥ 1` for every target element.
    pub x: Vec<f64>,
    /// `Σ_S x_S` — an upper bound on the LP optimum that tightens with
    /// the round budget, and (up to the convergence gap) a lower bound
    /// certificate on the integral OPT.
    pub value: f64,
    /// Rounds the dynamic ran.
    pub rounds: usize,
    /// Elements never covered by a best response within the budget and
    /// patched with `x = 1` on one containing set. Zero once the budget
    /// is past the mixing time; nonzero values flag an unconverged run.
    pub patched: usize,
}

/// Approximates the fractional set cover LP restricted to `target`.
///
/// Runs `rounds` best-response steps with multiplicative decay `eta`
/// (`0 < eta < 1`; `1/2` is a robust default). Returns `None` iff some
/// target element lies in no set.
///
/// # Examples
///
/// ```
/// use sc_bitset::BitSet;
/// use sc_offline::fractional_mwu;
///
/// let u = 4;
/// let sets = vec![
///     BitSet::from_iter(u, [0, 1]),
///     BitSet::from_iter(u, [2, 3]),
///     BitSet::from_iter(u, [0, 1, 2, 3]),
/// ];
/// let frac = fractional_mwu(&sets, &BitSet::full(u), 256, 0.5).unwrap();
/// assert!(frac.value <= 1.0 + 1e-9, "LP optimum is 1 (the big set)");
/// ```
pub fn fractional_mwu(
    sets: &[BitSet],
    target: &BitSet,
    rounds: usize,
    eta: f64,
) -> Option<FractionalCover> {
    assert!(eta > 0.0 && eta < 1.0, "eta must be in (0,1)");
    assert!(rounds > 0, "need at least one round");
    let n = target.universe();
    if target.is_empty() {
        return Some(FractionalCover {
            x: vec![0.0; sets.len()],
            value: 0.0,
            rounds: 0,
            patched: 0,
        });
    }

    // Sparse target-projected sets; also the feasibility check.
    let projected: Vec<Vec<u32>> = sets
        .iter()
        .map(|s| s.ones().filter(|&e| target.contains(e)).collect())
        .collect();
    let mut reach = BitSet::new(n);
    for p in &projected {
        for &e in p {
            reach.insert(e);
        }
    }
    if !target.is_subset(&reach) {
        return None;
    }

    let mut weight = vec![0.0f64; n];
    for e in target.ones() {
        weight[e as usize] = 1.0;
    }
    let mut plays = vec![0u32; sets.len()];
    let mut covered_rounds = vec![0u32; n];

    for _ in 0..rounds {
        // Best response: the set with the largest weighted coverage.
        let (best, best_w) = projected
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.iter().map(|&e| weight[e as usize]).sum::<f64>()))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .expect("nonempty family");
        if best_w <= 0.0 {
            break; // all weight decayed to zero: fully mixed
        }
        plays[best] += 1;
        for &e in &projected[best] {
            weight[e as usize] *= 1.0 - eta;
            covered_rounds[e as usize] += 1;
        }
        // Renormalise before underflow eats the signal.
        let max_w = target
            .ones()
            .map(|e| weight[e as usize])
            .fold(0.0f64, f64::max);
        if max_w > 0.0 && max_w < 1e-100 {
            for e in target.ones() {
                weight[e as usize] /= max_w;
            }
        }
    }

    let played: u32 = plays.iter().sum();
    let min_cov = target
        .ones()
        .map(|e| covered_rounds[e as usize])
        .min()
        .unwrap_or(0);
    let mut x = vec![0.0f64; sets.len()];
    let mut patched = 0usize;
    if min_cov > 0 {
        let scale = 1.0 / (min_cov as f64);
        for (xi, &c) in x.iter_mut().zip(&plays) {
            *xi = c as f64 * scale;
        }
    } else {
        // Unconverged: keep what mixing produced (normalised by the
        // positive floor) and patch the starved elements below.
        let positive_floor = target
            .ones()
            .map(|e| covered_rounds[e as usize])
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(played.max(1));
        let scale = 1.0 / positive_floor as f64;
        for (xi, &c) in x.iter_mut().zip(&plays) {
            *xi = c as f64 * scale;
        }
    }
    // Patch any element with zero fractional coverage: x = 1 on its
    // first containing set. With an adequate budget this never fires.
    for e in target.ones() {
        if covered_rounds[e as usize] == 0 {
            let s = projected
                .iter()
                .position(|p| p.binary_search(&e).is_ok())
                .expect("feasibility checked above");
            if x[s] < 1.0 {
                x[s] = 1.0;
            }
            patched += 1;
        }
    }
    let value = x.iter().sum();
    Some(FractionalCover {
        x,
        value,
        rounds: played as usize,
        patched,
    })
}

/// The worst per-element fractional coverage `min_e Σ_{S∋e} x_S` of a
/// candidate solution — `≥ 1` iff the solution is LP-feasible on
/// `target`. Returns `f64::INFINITY` on an empty target.
pub fn fractional_coverage(sets: &[BitSet], target: &BitSet, x: &[f64]) -> f64 {
    assert_eq!(sets.len(), x.len());
    let mut cov = vec![0.0f64; target.universe()];
    for (s, &xs) in sets.iter().zip(x) {
        if xs > 0.0 {
            for e in s.ones() {
                cov[e as usize] += xs;
            }
        }
    }
    target
        .ones()
        .map(|e| cov[e as usize])
        .fold(f64::INFINITY, f64::min)
}

/// An integral cover obtained from a fractional one.
#[derive(Debug, Clone)]
pub struct RoundedCover {
    /// The cover (indices into the input slice).
    pub cover: Vec<usize>,
    /// Elements the random draw missed, fixed with one witness set
    /// each; `O(1)` expected with the default inflation.
    pub patched: usize,
}

/// Randomized rounding: include set `S` with probability
/// `min(1, x_S · inflation · ln n)`, then patch the (whp few) uncovered
/// elements with one containing set each. Always returns a feasible
/// cover; expected size is `O(value · log n)`. Returns `None` iff some
/// target element lies in no set.
pub fn randomized_rounding(
    sets: &[BitSet],
    target: &BitSet,
    frac: &FractionalCover,
    inflation: f64,
    rng: &mut StdRng,
) -> Option<RoundedCover> {
    assert!(inflation > 0.0);
    let n = target.universe();
    let theta = inflation * (n.max(2) as f64).ln();
    let mut cover = Vec::new();
    let mut covered = BitSet::new(n);
    for (i, (&xs, s)) in frac.x.iter().zip(sets).enumerate() {
        let p = (xs * theta).min(1.0);
        if p > 0.0 && rng.random_bool(p) {
            cover.push(i);
            covered.union_with(s);
        }
    }
    let mut patched = 0usize;
    for e in target.ones() {
        if !covered.contains(e) {
            let s = sets.iter().position(|s| s.contains(e))?;
            cover.push(s);
            covered.union_with(&sets[s]);
            patched += 1;
        }
    }
    cover.sort_unstable();
    cover.dedup();
    Some(RoundedCover { cover, patched })
}

/// Round budget giving reliable convergence on sub-instances with `n`
/// live elements — enough best responses for every element's coverage
/// count to concentrate (`Θ(n log n)`, capped below by a warm-up floor).
pub fn default_rounds(n: usize) -> usize {
    let n = n.max(2) as f64;
    (4.0 * n * n.ln()).ceil() as usize + 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn feasible(sets: &[BitSet], target: &BitSet, cover: &[usize]) -> bool {
        let mut covered = BitSet::new(target.universe());
        for &i in cover {
            covered.union_with(&sets[i]);
        }
        target.is_subset(&covered)
    }

    #[test]
    fn fractional_is_feasible_and_bounded_by_opt() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..25 {
            let u = rng.random_range(4..10);
            let m = rng.random_range(3..9);
            let mut sets: Vec<BitSet> = (0..m)
                .map(|_| BitSet::from_iter(u, (0..u as u32).filter(|_| rng.random_bool(0.4))))
                .collect();
            sets.push(BitSet::full(u));
            let target = BitSet::full(u);
            let frac = fractional_mwu(&sets, &target, default_rounds(u), 0.5).unwrap();
            assert!(
                fractional_coverage(&sets, &target, &frac.x) >= 1.0 - 1e-9,
                "trial {trial}: infeasible fractional solution"
            );
            assert_eq!(frac.patched, 0, "trial {trial}: budget should converge");
            let opt = brute_force_opt(&sets, &target) as f64;
            // LP value ≤ integer OPT; allow the convergence gap.
            assert!(
                frac.value <= opt * 1.25 + 0.3,
                "trial {trial}: fractional value {} far above OPT {opt}",
                frac.value
            );
        }
    }

    #[test]
    fn fractional_beats_integral_on_the_classic_gap_instance() {
        // Universe {0,1,2}, sets = all pairs: OPT = 2, LP optimum = 3/2
        // via x ≡ 1/2.
        let u = 3;
        let sets = vec![
            BitSet::from_iter(u, [0, 1]),
            BitSet::from_iter(u, [0, 2]),
            BitSet::from_iter(u, [1, 2]),
        ];
        let frac = fractional_mwu(&sets, &BitSet::full(u), 4096, 0.5).unwrap();
        assert!(
            (frac.value - 1.5).abs() < 0.1,
            "LP value should approach 3/2, got {}",
            frac.value
        );
    }

    #[test]
    fn infeasible_and_empty_target() {
        let u = 3;
        let sets = vec![BitSet::from_iter(u, [0])];
        assert!(fractional_mwu(&sets, &BitSet::full(u), 64, 0.5).is_none());
        let frac = fractional_mwu(&sets, &BitSet::new(u), 64, 0.5).unwrap();
        assert_eq!(frac.value, 0.0);
    }

    #[test]
    fn rounding_is_always_feasible() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..25 {
            let u = rng.random_range(4..16);
            let m = rng.random_range(3..12);
            let mut sets: Vec<BitSet> = (0..m)
                .map(|_| BitSet::from_iter(u, (0..u as u32).filter(|_| rng.random_bool(0.35))))
                .collect();
            sets.push(BitSet::full(u));
            let target = BitSet::full(u);
            let frac = fractional_mwu(&sets, &target, default_rounds(u), 0.5).unwrap();
            let rounded = randomized_rounding(&sets, &target, &frac, 1.0, &mut rng).unwrap();
            assert!(feasible(&sets, &target, &rounded.cover), "trial {trial}");
            assert!(
                rounded.cover.len() as f64 <= frac.value * 3.0 * (u.max(2) as f64).ln() + 3.0,
                "trial {trial}: rounded cover {} far above O(value·log n)",
                rounded.cover.len()
            );
        }
    }

    #[test]
    fn rounding_no_duplicate_indices() {
        let u = 6;
        let sets = vec![BitSet::full(u), BitSet::from_iter(u, [0, 1])];
        let frac = FractionalCover {
            x: vec![1.0, 1.0],
            value: 2.0,
            rounds: 1,
            patched: 0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let rounded = randomized_rounding(&sets, &BitSet::full(u), &frac, 5.0, &mut rng).unwrap();
        let mut sorted = rounded.cover.clone();
        sorted.dedup();
        assert_eq!(sorted, rounded.cover);
    }

    fn brute_force_opt(sets: &[BitSet], target: &BitSet) -> usize {
        let m = sets.len();
        assert!(m <= 20);
        let mut best = usize::MAX;
        for mask in 0u32..(1 << m) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let mut covered = BitSet::new(target.universe());
            for (i, s) in sets.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    covered.union_with(s);
                }
            }
            if target.is_subset(&covered) {
                best = size;
            }
        }
        best
    }
}
