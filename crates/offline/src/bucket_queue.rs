//! Gain-indexed bucket queue for the lazy greedy oracle.
//!
//! The lazy-heap greedy pops sets in `(gain desc, index asc)` order,
//! re-inserting entries whose cached gain went stale. Gains only ever
//! *decrease* (covering elements can't grow another set's residual
//! coverage), so a `BinaryHeap`'s full ordering — `O(log m)` per
//! operation — is overkill: a vector of buckets indexed by gain with a
//! cursor that moves monotonically **down** supports the same access
//! pattern in amortised `O(1)` per operation. Every push lands
//! strictly below the cursor (a stale entry's fresh gain is strictly
//! smaller than the gain it was popped at), so each bucket is complete
//! by the time the cursor reaches it; total work is `O(max_gain + Σ
//! pushes)` — for the greedy oracle, `O(Σ|proj|)` overall.
//!
//! Tie-breaking matches the heap bit for bit: a bucket is sorted
//! ascending by set index exactly once, when the cursor first lands on
//! it, so equal-gain pops come out smallest-index-first just as the
//! heap's `(gain, !index)` ordering did. [`crate::greedy`] and
//! [`crate::greedy_slices`] rely on that to keep covers identical to
//! the retained heap reference implementations.

/// A monotone bucket priority queue over `(gain, set index)` entries.
///
/// # Examples
///
/// ```
/// use sc_offline::BucketQueue;
///
/// let mut q = BucketQueue::new(5);
/// q.push(5, 2);
/// q.push(5, 0);
/// q.push(3, 1);
/// assert_eq!(q.pop(), Some((5, 0))); // equal gain: smallest index
/// assert_eq!(q.pop(), Some((5, 2)));
/// q.push(1, 2); // stale re-insert below the cursor
/// assert_eq!(q.peek_gain(), Some(3));
/// assert_eq!(q.pop(), Some((3, 1)));
/// assert_eq!(q.pop(), Some((1, 2)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct BucketQueue {
    /// `buckets[g]` holds the set indices whose cached gain is `g`.
    buckets: Vec<Vec<u32>>,
    /// Per-bucket drain position (entries before it were popped).
    heads: Vec<usize>,
    /// Highest bucket that may still hold entries; `buckets.len()`
    /// until the first pop settles it. Only ever moves down.
    cursor: usize,
    len: usize,
}

impl BucketQueue {
    /// Creates a queue accepting gains in `0..=max_gain`.
    pub fn new(max_gain: usize) -> Self {
        Self {
            buckets: vec![Vec::new(); max_gain + 1],
            heads: vec![0; max_gain + 1],
            cursor: max_gain + 1,
            len: 0,
        }
    }

    /// Number of entries not yet popped.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when every entry has been popped.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry. Gains must not exceed the constructor's
    /// `max_gain`; once popping has begun, pushes must land strictly
    /// below the current cursor (guaranteed for the greedy oracle,
    /// where a re-pushed gain is strictly below the popped one).
    ///
    /// # Panics
    ///
    /// Panics if `gain > max_gain`; in debug builds, also if a push
    /// lands at or above the settled cursor (that bucket was already
    /// sorted and possibly drained — a caller bug).
    pub fn push(&mut self, gain: usize, idx: u32) {
        assert!(
            gain < self.buckets.len(),
            "gain {gain} exceeds max_gain {}",
            self.buckets.len() - 1
        );
        debug_assert!(
            gain < self.cursor || self.cursor == self.buckets.len(),
            "push at gain {gain} but the cursor already settled at {}",
            self.cursor
        );
        self.buckets[gain].push(idx);
        self.len += 1;
    }

    /// Moves the cursor down to the highest non-drained bucket,
    /// sorting each newly reached bucket so equal-gain entries pop
    /// smallest-index-first. Returns the settled gain.
    fn settle(&mut self) -> Option<usize> {
        loop {
            if self.cursor < self.buckets.len()
                && self.heads[self.cursor] < self.buckets[self.cursor].len()
            {
                return Some(self.cursor);
            }
            if self.cursor == 0 {
                return None;
            }
            self.cursor -= 1;
            // First arrival: nothing was drained from this bucket yet,
            // and no future push can reach it, so one sort fixes the
            // pop order for good.
            debug_assert_eq!(self.heads[self.cursor], 0);
            self.buckets[self.cursor].sort_unstable();
        }
    }

    /// The gain of the next entry [`pop`](Self::pop) would return.
    pub fn peek_gain(&mut self) -> Option<usize> {
        self.settle()
    }

    /// Removes and returns the entry with the highest gain, breaking
    /// ties toward the smallest set index.
    pub fn pop(&mut self) -> Option<(usize, u32)> {
        let gain = self.settle()?;
        let head = self.heads[gain];
        let idx = self.buckets[gain][head];
        self.heads[gain] = head + 1;
        self.len -= 1;
        Some((gain, idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_gain_then_index() {
        let mut q = BucketQueue::new(10);
        for (g, i) in [(3, 7), (10, 4), (10, 1), (0, 9), (3, 2)] {
            q.push(g, i);
        }
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        assert_eq!(got, vec![(10, 1), (10, 4), (3, 2), (3, 7), (0, 9)]);
        assert!(q.is_empty());
    }

    #[test]
    fn lazy_reinserts_sort_into_their_bucket() {
        let mut q = BucketQueue::new(4);
        q.push(4, 0);
        q.push(4, 1);
        q.push(2, 5);
        assert_eq!(q.pop(), Some((4, 0)));
        // Stale entries re-filed below the cursor, out of index order.
        q.push(2, 9);
        q.push(2, 3);
        assert_eq!(q.pop(), Some((4, 1)));
        assert_eq!(q.peek_gain(), Some(2));
        assert_eq!(q.pop(), Some((2, 3)));
        assert_eq!(q.pop(), Some((2, 5)));
        assert_eq!(q.pop(), Some((2, 9)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_gain(), None);
    }

    #[test]
    fn zero_gain_entries_are_reachable() {
        let mut q = BucketQueue::new(0);
        q.push(0, 3);
        q.push(0, 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((0, 1)));
        assert_eq!(q.pop(), Some((0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds max_gain")]
    fn gain_above_capacity_panics() {
        BucketQueue::new(3).push(4, 0);
    }
}
