//! Bit-identity of the bucket-queue greedy against the retained
//! `BinaryHeap` reference, for both the dense and sparse entry points.
//!
//! The swap is only safe because the two disciplines pop in exactly the
//! same `(gain desc, index asc)` order and apply the same lazy
//! re-insert rule; these properties pin that on random instances plus
//! the adversarial shapes where an ordering bug would hide: all-ties
//! families (every set equal), zero-gain sets (disjoint from the
//! target), and infeasible instances (`None` must match too).

use proptest::prelude::*;
use sc_bitset::BitSet;
use sc_offline::{greedy, greedy_heap, greedy_slices, greedy_slices_heap};

const UNIVERSE: usize = 96;

fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..UNIVERSE as u32, 0..48).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn family() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(sorted_set(), 0..24)
}

fn densify(raw: &[Vec<u32>]) -> Vec<BitSet> {
    raw.iter()
        .map(|s| BitSet::from_iter(UNIVERSE, s.iter().copied()))
        .collect()
}

proptest! {
    #[test]
    fn bucket_matches_heap_dense(raw in family(), tgt in sorted_set()) {
        // Covers feasible and infeasible draws alike: `None` on one
        // side must be `None` on the other.
        let sets = densify(&raw);
        let target = BitSet::from_iter(UNIVERSE, tgt.iter().copied());
        prop_assert_eq!(greedy(&sets, &target), greedy_heap(&sets, &target));
    }

    #[test]
    fn bucket_matches_heap_slices(raw in family(), tgt in sorted_set()) {
        let target = BitSet::from_iter(UNIVERSE, tgt.iter().copied());
        prop_assert_eq!(
            greedy_slices(raw.len(), |i| raw[i].as_slice(), &target),
            greedy_slices_heap(raw.len(), |i| raw[i].as_slice(), &target)
        );
    }

    #[test]
    fn all_ties_family_matches(copies in 1usize..16, set in sorted_set()) {
        // Every set identical: every pop is a tie, so this isolates the
        // index-ascending tie-break (and the duplicate-set fast path
        // where later copies collapse to gain 0).
        let raw: Vec<Vec<u32>> = (0..copies).map(|_| set.clone()).collect();
        let sets = densify(&raw);
        let target = BitSet::from_iter(UNIVERSE, set.iter().copied());
        let bucket = greedy(&sets, &target);
        prop_assert_eq!(bucket.clone(), greedy_heap(&sets, &target));
        if !set.is_empty() {
            prop_assert_eq!(bucket, Some(vec![0]), "first copy must win every tie");
        }
    }

    #[test]
    fn zero_gain_sets_are_inert(useful in sorted_set(), junk_count in 0usize..8) {
        // Sets disjoint from the target are filtered at queue build; a
        // bucket-queue bug around the 0 bucket would surface here.
        let mut raw: Vec<Vec<u32>> = Vec::new();
        let half: Vec<u32> = useful.iter().copied().filter(|&e| e < UNIVERSE as u32 / 2).collect();
        raw.push(half);
        raw.push(useful.clone());
        for _ in 0..junk_count {
            raw.push(Vec::new()); // gain 0 against any target
        }
        let sets = densify(&raw);
        let target = BitSet::from_iter(UNIVERSE, useful.iter().copied());
        let bucket = greedy(&sets, &target);
        prop_assert_eq!(bucket.clone(), greedy_heap(&sets, &target));
        prop_assert_eq!(
            greedy_slices(raw.len(), |i| raw[i].as_slice(), &target),
            bucket
        );
    }
}

/// Deterministic regression: the lazy re-insert path (stale pop, fresh
/// gain strictly below the next queued gain) must re-file into a lower
/// bucket and still come out in heap order.
#[test]
fn lazy_reinsert_sequence_matches_heap() {
    let raw: Vec<Vec<u32>> = vec![
        (0..40).collect(),            // big opener
        (30..60).collect(),           // overlaps the opener → goes stale
        (55..70).collect(),           // overlaps set 1
        (68..96).collect(),           // tail
        (0..96).step_by(3).collect(), // scattered, stale after any pick
    ];
    let sets: Vec<BitSet> = raw
        .iter()
        .map(|s| BitSet::from_iter(UNIVERSE, s.iter().copied()))
        .collect();
    let target = BitSet::full(UNIVERSE);
    let bucket = greedy(&sets, &target);
    assert_eq!(bucket, greedy_heap(&sets, &target));
    assert_eq!(
        bucket,
        greedy_slices(raw.len(), |i| raw[i].as_slice(), &target)
    );
}
