//! Property tests: solver relationships that must hold on any feasible
//! instance — greedy covers, exact covers, exact ≤ greedy, exact = OPT.

use proptest::prelude::*;
use sc_bitset::BitSet;
use sc_offline::{
    exact, fractional_coverage, fractional_mwu, greedy, is_feasible, max_k_cover, primal_dual,
    randomized_rounding,
};

/// Random small families over a universe of `u` elements, with a full
/// set appended so the instance is always feasible.
fn family() -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    (3usize..9).prop_flat_map(|u| {
        let set = proptest::collection::vec(0..u as u32, 0..u);
        let fam = proptest::collection::vec(set, 1..7);
        (Just(u), fam)
    })
}

fn to_bitsets(u: usize, raw: &[Vec<u32>]) -> Vec<BitSet> {
    let mut sets: Vec<BitSet> = raw
        .iter()
        .map(|s| BitSet::from_iter(u, s.iter().copied()))
        .collect();
    sets.push(BitSet::full(u));
    sets
}

fn union_of(sets: &[BitSet], picks: &[usize], u: usize) -> BitSet {
    let mut acc = BitSet::new(u);
    for &i in picks {
        acc.union_with(&sets[i]);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn greedy_produces_a_cover((u, raw) in family()) {
        let sets = to_bitsets(u, &raw);
        let target = BitSet::full(u);
        prop_assert!(is_feasible(&sets, &target));
        let cover = greedy(&sets, &target).expect("feasible");
        prop_assert!(target.is_subset(&union_of(&sets, &cover, u)));
        // No duplicate picks.
        let mut seen = std::collections::HashSet::new();
        prop_assert!(cover.iter().all(|&i| seen.insert(i)));
    }

    #[test]
    fn exact_is_optimal_and_at_most_greedy((u, raw) in family()) {
        let sets = to_bitsets(u, &raw);
        let target = BitSet::full(u);
        let g = greedy(&sets, &target).expect("feasible");
        let e = exact(&sets, &target, 1_000_000).expect("feasible");
        prop_assert!(e.optimal);
        prop_assert!(e.cover.len() <= g.len());
        prop_assert!(target.is_subset(&union_of(&sets, &e.cover, u)));
        // Certified optimality: no strictly smaller cover exists.
        prop_assert_eq!(e.cover.len(), brute_force(&sets, &target));
    }

    #[test]
    fn primal_dual_sandwich_holds((u, raw) in family()) {
        let sets = to_bitsets(u, &raw);
        let target = BitSet::full(u);
        let out = primal_dual(&sets, &target).expect("feasible");
        prop_assert!(target.is_subset(&union_of(&sets, &out.cover, u)));
        let opt = brute_force(&sets, &target);
        prop_assert!(out.witness.len() <= opt, "dual witness must lower-bound OPT");
        prop_assert!(out.cover.len() <= out.max_frequency.max(1) * out.witness.len());
        // The witness is a fooling structure: no set hits it twice.
        for s in &sets {
            prop_assert!(out.witness.iter().filter(|&&e| s.contains(e)).count() <= 1);
        }
    }

    #[test]
    fn fractional_cover_is_lp_feasible((u, raw) in family()) {
        let sets = to_bitsets(u, &raw);
        let target = BitSet::full(u);
        let frac = fractional_mwu(&sets, &target, 512, 0.5).expect("feasible");
        prop_assert!(fractional_coverage(&sets, &target, &frac.x) >= 1.0 - 1e-9);
        // The LP optimum never exceeds the integral optimum; our value
        // sits above the LP optimum only by the convergence gap.
        let opt = brute_force(&sets, &target) as f64;
        prop_assert!(frac.value <= opt * 1.5 + 0.5,
            "fractional value {} vs integral OPT {}", frac.value, opt);
    }

    #[test]
    fn rounding_always_returns_a_cover(((u, raw), seed) in (family(), 0u64..1000)) {
        use rand::SeedableRng;
        let sets = to_bitsets(u, &raw);
        let target = BitSet::full(u);
        let frac = fractional_mwu(&sets, &target, 256, 0.5).expect("feasible");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rounded = randomized_rounding(&sets, &target, &frac, 1.0, &mut rng).expect("feasible");
        prop_assert!(target.is_subset(&union_of(&sets, &rounded.cover, u)));
        // Indices are deduplicated and sorted.
        let mut c = rounded.cover.clone();
        c.dedup();
        prop_assert_eq!(&c, &rounded.cover);
    }

    #[test]
    fn max_k_cover_monotone_in_k((u, raw) in family()) {
        let sets = to_bitsets(u, &raw);
        let target = BitSet::full(u);
        let mut prev = 0;
        for k in 0..=sets.len() {
            let (picked, covered) = max_k_cover(&sets, &target, k);
            prop_assert!(picked.len() <= k);
            prop_assert!(covered >= prev, "coverage must be monotone in k");
            prop_assert_eq!(covered, union_of(&sets, &picked, u).intersection_count(&target));
            prev = covered;
        }
    }
}

fn brute_force(sets: &[BitSet], target: &BitSet) -> usize {
    let m = sets.len();
    assert!(m <= 24);
    let mut best = usize::MAX;
    for mask in 0u32..(1 << m) {
        if (mask.count_ones() as usize) >= best {
            continue;
        }
        let picks: Vec<usize> = (0..m).filter(|&i| mask >> i & 1 == 1).collect();
        let mut acc = BitSet::new(target.universe());
        for &i in &picks {
            acc.union_with(&sets[i]);
        }
        if target.is_subset(&acc) {
            best = picks.len();
        }
    }
    best
}
