//! Property tests for the streaming model's accounting: the meter and
//! pass counters must obey their algebraic laws under arbitrary
//! operation sequences.

use proptest::prelude::*;
use sc_stream::{ItemStream, SpaceMeter};

#[derive(Debug, Clone)]
enum Op {
    Charge(usize),
    Release,
    Parallel(Vec<usize>),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..1000).prop_map(Op::Charge),
        Just(Op::Release),
        proptest::collection::vec(0usize..500, 0..4).prop_map(Op::Parallel),
    ]
}

proptest! {
    #[test]
    fn meter_laws(ops in proptest::collection::vec(op(), 0..64)) {
        let meter = SpaceMeter::new();
        let mut model_current = 0usize;
        let mut model_peak = 0usize;
        let mut charges: Vec<usize> = Vec::new();
        for o in ops {
            match o {
                Op::Charge(w) => {
                    meter.charge(w);
                    charges.push(w);
                    model_current += w;
                    model_peak = model_peak.max(model_current);
                }
                Op::Release => {
                    if let Some(w) = charges.pop() {
                        meter.release(w);
                        model_current -= w;
                    }
                }
                Op::Parallel(children) => {
                    let sum: usize = children.iter().sum();
                    meter.absorb_parallel(children);
                    model_peak = model_peak.max(model_current + sum);
                }
            }
            prop_assert_eq!(meter.current(), model_current);
            prop_assert_eq!(meter.peak(), model_peak);
            prop_assert!(meter.peak() >= meter.current());
        }
    }

    #[test]
    fn pass_counting_matches_scan_count(scans in 0usize..20, forks in proptest::collection::vec(0usize..6, 0..5)) {
        let items: Vec<u32> = (0..10).collect();
        let stream = ItemStream::new(&items);
        for _ in 0..scans {
            let consumed = stream.pass().count();
            prop_assert_eq!(consumed, items.len());
        }
        prop_assert_eq!(stream.passes(), scans);
        // Parallel groups add their maximum.
        let mut child_passes = Vec::new();
        for &f in &forks {
            let child = stream.fork();
            for _ in 0..f {
                let _ = child.pass();
            }
            child_passes.push(child.passes());
        }
        let max = child_passes.iter().copied().max().unwrap_or(0);
        stream.absorb_parallel(child_passes);
        prop_assert_eq!(stream.passes(), scans + max);
    }

    #[test]
    fn resync_tracks_sizes_directly(sizes in proptest::collection::vec(0usize..2000, 1..20)) {
        // resync moves the charge straight from the previous size to the
        // new one: current == latest size, peak == max size seen, and no
        // transient double-charge is ever recorded.
        let meter = SpaceMeter::new();
        let mut slot = 0usize;
        let mut max_seen = 0usize;
        for &s in &sizes {
            meter.resync(&mut slot, s);
            max_seen = max_seen.max(s);
            prop_assert_eq!(meter.current(), s);
            prop_assert_eq!(slot, s);
            prop_assert_eq!(meter.peak(), max_seen);
        }
    }
}
