//! A container wrapper that keeps its space charge in sync with a meter.

use crate::SpaceMeter;
use sc_bitset::HeapWords;

/// A value whose heap footprint is charged to a [`SpaceMeter`] and kept
/// in sync across mutations.
///
/// `Tracked` owns the value; reads go through [`get`](Tracked::get) and
/// mutations through [`mutate`](Tracked::mutate), which re-measures the
/// footprint afterwards. Dropping the wrapper *does not* release the
/// charge automatically (a `Drop` impl cannot hold the meter reference
/// safely across scopes); call [`release`](Tracked::release) when the
/// structure dies — the meter's over-release panic catches forgotten
/// releases at the end of a run when the harness asserts `current == 0`.
///
/// # Examples
///
/// ```
/// use sc_stream::{SpaceMeter, Tracked};
///
/// let meter = SpaceMeter::new();
/// let mut buf: Tracked<Vec<u64>> = Tracked::new(Vec::new(), &meter);
/// buf.mutate(&meter, |v| v.extend_from_slice(&[1, 2, 3]));
/// assert!(meter.current() >= 3);
/// let v = buf.release(&meter);
/// assert_eq!(meter.current(), 0);
/// assert_eq!(v, vec![1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct Tracked<T: HeapWords> {
    value: T,
    charged: usize,
}

impl<T: HeapWords> Tracked<T> {
    /// Wraps `value`, charging its current footprint to `meter`.
    pub fn new(value: T, meter: &SpaceMeter) -> Self {
        let charged = value.heap_words();
        meter.charge(charged);
        Self { value, charged }
    }

    /// Read access to the wrapped value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Mutates the value, then re-syncs the meter with the (possibly
    /// changed) footprint.
    pub fn mutate<R>(&mut self, meter: &SpaceMeter, f: impl FnOnce(&mut T) -> R) -> R {
        let out = f(&mut self.value);
        meter.resync(&mut self.charged, self.value.heap_words());
        out
    }

    /// Releases the charge and returns the inner value.
    pub fn release(self, meter: &SpaceMeter) -> T {
        meter.release(self.charged);
        self.value
    }

    /// Words currently charged for this value.
    pub fn charged(&self) -> usize {
        self.charged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_and_shrink_keep_meter_in_sync() {
        let meter = SpaceMeter::new();
        let mut t: Tracked<Vec<u64>> = Tracked::new(Vec::new(), &meter);
        t.mutate(&meter, |v| v.extend(0..100));
        let grown = meter.current();
        assert_eq!(grown, t.charged());
        assert!(grown >= 100);
        t.mutate(&meter, |v| {
            v.clear();
            v.shrink_to_fit();
        });
        assert_eq!(meter.current(), 0);
        assert!(meter.peak() >= grown);
        let _ = t.release(&meter);
    }

    #[test]
    fn nested_structures_count_inner_heap() {
        let meter = SpaceMeter::new();
        let t = Tracked::new(vec![vec![0u64; 8], vec![0u64; 8]], &meter);
        assert!(t.charged() >= 16, "inner vec payloads charged");
        let _ = t.release(&meter);
        assert_eq!(meter.current(), 0);
    }
}
