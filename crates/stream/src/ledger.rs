//! Multi-owner shared-scan accounting for a driver that serves many
//! independent streaming computations over one repository.

use crate::SetStream;
use std::cell::Cell;
use std::sync::OnceLock;

/// Process-wide telemetry counter of physical scans started through
/// *any* ledger — the live-surface mirror of per-ledger
/// [`physical_scans`](ScanLedger::physical_scans) (resolved once; the
/// per-scan cost is one relaxed gate load when telemetry is off).
fn scans_counter() -> &'static sc_telemetry::Counter {
    static C: OnceLock<&'static sc_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| sc_telemetry::counter("sc_scans_physical_total"))
}

/// Process-wide telemetry counter of pass owners joined onto in-flight
/// scans, the mirror of [`mid_stream_joins`](ScanLedger::mid_stream_joins).
fn joins_counter() -> &'static sc_telemetry::Counter {
    static C: OnceLock<&'static sc_telemetry::Counter> = OnceLock::new();
    C.get_or_init(|| sc_telemetry::counter("sc_scan_joins_total"))
}

/// Counts the *physical* scans a multiplexing driver performs on behalf
/// of many logically independent pass owners.
///
/// [`SetStream::shared_pass`] already lets one parent execute a single
/// scan for several of its own parallel branches; a serving layer goes
/// one level up — branches of *different* queries, each with its own
/// pass meter, join the same physical walk of the repository. The
/// ledger is the driver-side record of that sharing: every call to
/// [`scan`](ScanLedger::scan) performs exactly one physical pass
/// (whoever joined it), so `physical_scans()` is the number the
/// hardware paid for, while each participant's own
/// [`passes`](SetStream::passes) counter keeps charging the logical
/// passes its query's analysis is billed for.
///
/// The ledger deliberately does *not* touch any [`SetStream`] counter
/// itself: logical accounting stays with the per-query forks (absorbed
/// into their parents via [`SetStream::absorb_parallel`] as usual), and
/// the physical count lives here, so "how much scan sharing happened"
/// is always `max logical / physical` per epoch group rather than an
/// estimate.
///
/// # Examples
///
/// ```
/// use sc_setsystem::SetSystem;
/// use sc_stream::{ScanLedger, SetStream};
///
/// let system = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
/// let root = SetStream::new(&system);
/// let (a, b) = (root.fork(), root.fork());
/// let ledger = ScanLedger::new();
/// // Two queries' passes ride one physical scan.
/// for (_id, _elems) in ledger.scan(&root, &[&a, &b]) {}
/// assert_eq!(ledger.physical_scans(), 1);
/// assert_eq!((a.passes(), b.passes()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct ScanLedger {
    physical: Cell<usize>,
    joined: Cell<usize>,
}

impl ScanLedger {
    /// Fresh ledger with zero physical scans.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of physical scans performed through this ledger.
    pub fn physical_scans(&self) -> usize {
        self.physical.get()
    }

    /// Number of pass owners that joined a scan mid-stream via
    /// [`join`](ScanLedger::join) instead of being in the original
    /// participant list.
    pub fn mid_stream_joins(&self) -> usize {
        self.joined.get()
    }

    /// The 1-based pass index of the scan most recently started through
    /// this ledger — the tag a scheduler aligns joiners against (`0`
    /// before any scan). Every scan of an immutable repository yields
    /// the same item sequence, so *which* index a joiner splices into
    /// never changes what it observes; the tag exists so the scheduler
    /// can record (and tests can pin) that a splice landed on the scan
    /// it planned for.
    pub fn scan_index(&self) -> usize {
        self.physical.get()
    }

    /// Performs one physical scan of `stream`'s repository on behalf of
    /// `participants`, each of which logs one logical pass.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty or if any participant is not a
    /// fork of `stream`'s repository (see [`SetStream::shared_pass`]).
    pub fn scan<'a>(
        &self,
        stream: &SetStream<'a>,
        participants: &[&SetStream<'a>],
    ) -> impl Iterator<Item = (sc_setsystem::SetId, &'a [sc_setsystem::ElemId])> {
        self.physical.set(self.physical.get() + 1);
        scans_counter().incr();
        stream.shared_pass(participants)
    }

    /// Performs one physical scan of `stream`'s repository on behalf of
    /// `participants`, exposed as a zero-copy sharded feed
    /// ([`ShardedPass`](crate::ShardedPass)) instead of a
    /// single-consumer iterator — the fan-out driver's entry point.
    ///
    /// Accounting matches [`scan`](ScanLedger::scan) exactly: one
    /// physical scan is counted for the feed as a whole and each
    /// participant logs one logical pass, no matter how many shards or
    /// worker threads consume the feed.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty, if any participant is not a
    /// fork of `stream`'s repository, or if `shard_size` is zero.
    pub fn scan_sharded<'a>(
        &self,
        stream: &SetStream<'a>,
        participants: &[&SetStream<'a>],
        shard_size: usize,
    ) -> crate::ShardedPass<'a> {
        self.physical.set(self.physical.get() + 1);
        scans_counter().incr();
        stream.sharded_pass(participants, shard_size)
    }

    /// Registers `participants` as mid-stream joiners of the physical
    /// scan most recently started through this ledger: each logs one
    /// logical pass ([`SetStream::join_shared_pass`]) while the
    /// physical count stays untouched — the walk already happened (or
    /// is in flight, its items buffered), and the driver replays the
    /// buffered items to the joiners, so the hardware pays nothing
    /// extra. Returns the [`scan_index`](ScanLedger::scan_index) of the
    /// scan joined, so the caller can tag the splice with the pass it
    /// aligned to.
    ///
    /// # Panics
    ///
    /// Panics if no scan was ever performed through this ledger (there
    /// is nothing to join), or if any participant is not a fork of
    /// `stream`'s repository.
    pub fn join<'a>(&self, stream: &SetStream<'a>, participants: &[&SetStream<'a>]) -> usize {
        assert!(
            self.physical.get() > 0,
            "mid-stream join needs a scan in flight"
        );
        stream.join_shared_pass(participants);
        self.joined.set(self.joined.get() + participants.len());
        joins_counter().add(participants.len() as u64);
        self.physical.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_setsystem::SetSystem;

    fn system() -> SetSystem {
        SetSystem::from_sets(4, vec![vec![0], vec![1, 2], vec![3]])
    }

    #[test]
    fn physical_count_is_per_scan_not_per_participant() {
        let sys = system();
        let root = SetStream::new(&sys);
        let queries: Vec<SetStream> = (0..8).map(|_| root.fork()).collect();
        let ledger = ScanLedger::new();
        let participants: Vec<&SetStream> = queries.iter().collect();
        assert_eq!(ledger.scan_index(), 0, "no scan tagged yet");
        for s in 0..3 {
            let items: Vec<_> = ledger.scan(&root, &participants).collect();
            assert_eq!(items.len(), 3);
            assert_eq!(ledger.scan_index(), s + 1, "scans are pass-tagged");
        }
        assert_eq!(ledger.physical_scans(), 3);
        for q in &queries {
            assert_eq!(q.passes(), 3, "each owner logged one pass per scan");
        }
        assert_eq!(root.passes(), 0, "the root is never charged directly");
    }

    #[test]
    fn late_joiners_log_only_their_scans() {
        let sys = system();
        let root = SetStream::new(&sys);
        let early = root.fork();
        let late = root.fork();
        let ledger = ScanLedger::new();
        for (_id, _e) in ledger.scan(&root, &[&early]) {}
        for (_id, _e) in ledger.scan(&root, &[&early, &late]) {}
        assert_eq!(ledger.physical_scans(), 2);
        assert_eq!((early.passes(), late.passes()), (2, 1));
    }

    #[test]
    fn mid_stream_joins_cost_no_physical_scan() {
        let sys = system();
        let root = SetStream::new(&sys);
        let early = root.fork();
        let late = root.fork();
        let ledger = ScanLedger::new();
        let items: Vec<_> = ledger.scan(&root, &[&early]).collect();
        // A query arrives while that scan's items are still being fanned
        // out: it joins the in-flight scan and replays `items`.
        assert_eq!(ledger.join(&root, &[&late]), 1, "joined scan #1");
        assert_eq!(items.len(), 3);
        assert_eq!(ledger.physical_scans(), 1, "no second walk");
        assert_eq!(ledger.mid_stream_joins(), 1);
        assert_eq!((early.passes(), late.passes()), (1, 1));
    }

    #[test]
    fn sharded_scans_count_one_physical_walk() {
        let sys = system();
        let root = SetStream::new(&sys);
        let (a, b) = (root.fork(), root.fork());
        let ledger = ScanLedger::new();
        let feed = ledger.scan_sharded(&root, &[&a, &b], 2);
        let ids: Vec<_> = (0..feed.num_shards())
            .flat_map(|s| feed.shard(s).map(|(id, _)| id))
            .collect();
        assert_eq!(ids, vec![0, 1, 2], "shards tile the repository");
        assert_eq!(ledger.physical_scans(), 1, "one scan per feed");
        assert_eq!((a.passes(), b.passes()), (1, 1));
    }

    #[test]
    #[should_panic(expected = "scan in flight")]
    fn joining_before_any_scan_is_rejected() {
        let sys = system();
        let root = SetStream::new(&sys);
        let late = root.fork();
        ScanLedger::new().join(&root, &[&late]);
    }

    #[test]
    #[should_panic(expected = "at least one participating branch")]
    fn empty_scan_groups_are_rejected() {
        let sys = system();
        let root = SetStream::new(&sys);
        let ledger = ScanLedger::new();
        let _ = ledger.scan(&root, &[]);
    }
}
