//! The streaming computation model of the paper, made measurable.
//!
//! Section 1 of Har-Peled et al. fixes the model: *"the sets r₁, …, r_m
//! are stored consecutively in a read-only repository and an algorithm
//! can access the sets only by performing sequential scans of the
//! repository. However, the amount of read-write memory available to the
//! algorithm is limited."* This crate is that model as an executable
//! artifact:
//!
//! * [`SetStream`] wraps a [`SetSystem`](sc_setsystem::SetSystem) so that
//!   the *only* way to read sets is [`SetStream::pass`], which increments
//!   a pass counter. [`ItemStream`] is the same device for arbitrary
//!   item types (geometric shapes in `sc-geometry`, player inputs in
//!   `sc-comm`).
//! * [`SpaceMeter`] measures the algorithm's read-write memory in 64-bit
//!   words. Algorithms charge it for samples, stored projections,
//!   per-element pointers — everything they hold between stream items —
//!   and the meter records the peak. The repository itself and the
//!   emitted solution are free, per the model.
//! * [`StreamingSetCover`] is the trait every algorithm in `sc-core`
//!   implements, and [`run_reported`] executes one, verifies the cover,
//!   and returns a [`RunReport`] with the measured passes / space /
//!   solution size — the three columns of the paper's Figure 1.1.
//!
//! Parallel sub-runs (the "for k ∈ {2^i} do in parallel" of Figure 1.3)
//! are accounted the way the paper accounts them: children forked via
//! [`SetStream::fork`] / [`SpaceMeter::fork`] run sequentially in the
//! simulation, then [`SetStream::absorb_parallel`] adds the *maximum*
//! child pass count and [`SpaceMeter::absorb_parallel`] charges the *sum*
//! of child peaks (parallel executions hold their memory simultaneously).
//!
//! One level above a single algorithm, a serving layer can batch the
//! logical passes of *many independent queries* onto shared physical
//! scans; [`ScanLedger`] is the driver-side account of that sharing —
//! physical scans counted once per walk, logical passes still charged
//! per owner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod item_stream;
mod ledger;
mod report;
mod set_stream;
mod sharded;
mod space;
mod tracked;

pub use harness::{run_budgeted, run_reported, StreamingSetCover};
pub use item_stream::ItemStream;
pub use ledger::ScanLedger;
pub use report::RunReport;
pub use set_stream::SetStream;
pub use sharded::{Claim, FeedCursor, InterleavedCursor, LaneFeed, ShardedPass};
pub use space::SpaceMeter;
pub use tracked::Tracked;
