//! Pass-counted access to a set system.

use sc_setsystem::{ElemId, SetId, SetSystem};
use std::cell::Cell;

/// The read-only repository of the streaming model, wrapped so that the
/// only way to see set contents is a counted sequential [`pass`].
///
/// The universe size `n` and family size `m` are known without a pass
/// (the paper's model stores `U` in memory up front and streams only the
/// family `F`).
///
/// [`pass`]: SetStream::pass
///
/// # Examples
///
/// ```
/// use sc_setsystem::SetSystem;
/// use sc_stream::SetStream;
///
/// let system = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
/// let stream = SetStream::new(&system);
/// let mut biggest = 0;
/// for (_id, elems) in stream.pass() {
///     biggest = biggest.max(elems.len());
/// }
/// assert_eq!(biggest, 2);
/// assert_eq!(stream.passes(), 1);
/// ```
#[derive(Debug)]
pub struct SetStream<'a> {
    system: &'a SetSystem,
    passes: Cell<usize>,
}

impl<'a> SetStream<'a> {
    /// Wraps a set system; the pass counter starts at zero.
    pub fn new(system: &'a SetSystem) -> Self {
        Self {
            system,
            passes: Cell::new(0),
        }
    }

    /// The underlying repository, for in-crate views that expose it
    /// through their own accounting (the sharded feed).
    pub(crate) fn repository(&self) -> &'a SetSystem {
        self.system
    }

    /// Ground set size `n` (known without a pass).
    pub fn universe(&self) -> usize {
        self.system.universe()
    }

    /// Family size `m` (known without a pass).
    pub fn num_sets(&self) -> usize {
        self.system.num_sets()
    }

    /// Performs one sequential scan of the repository.
    ///
    /// Increments the pass counter immediately; the returned iterator
    /// yields `(set id, sorted elements)` in repository order. Partial
    /// consumption still counts as a full pass — the model charges for
    /// starting a scan, and no algorithm in the paper aborts one early
    /// for savings.
    pub fn pass(&self) -> impl Iterator<Item = (SetId, &'a [ElemId])> {
        self.passes.set(self.passes.get() + 1);
        self.system.iter()
    }

    /// Number of passes performed so far (including forked children
    /// already absorbed via [`absorb_parallel`](SetStream::absorb_parallel)).
    pub fn passes(&self) -> usize {
        self.passes.get()
    }

    /// Forks an independent handle on the same repository for one branch
    /// of a parallel group ("do in parallel" in Figure 1.3).
    pub fn fork(&self) -> SetStream<'a> {
        SetStream::new(self.system)
    }

    /// Accounts a finished parallel group: parallel branches scan the
    /// stream simultaneously, so the group costs the *maximum* child
    /// pass count, not the sum.
    pub fn absorb_parallel<I: IntoIterator<Item = usize>>(&self, child_passes: I) {
        let max = child_passes.into_iter().max().unwrap_or(0);
        self.passes.set(self.passes.get() + max);
    }

    /// One physical scan executed on behalf of several parallel
    /// branches at once — the driver-facing half of "do in parallel".
    ///
    /// Each participant logs one logical pass (its counter increments
    /// exactly as if it had called [`pass`](SetStream::pass) itself);
    /// the caller — the parallel group's parent — performs the single
    /// underlying scan and multiplexes the items to its branches. The
    /// parent's own counter is *not* touched: as with sequentially
    /// simulated branches, the group's cost reaches the parent through
    /// [`absorb_parallel`](SetStream::absorb_parallel), which takes the
    /// maximum of the participants' logical counters. Because every
    /// branch that still needs a pass joins every shared scan, the
    /// number of physical scans equals that maximum, so the accounting
    /// is exact rather than an upper bound.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty (a scan must be on behalf of
    /// at least one counted logical pass) or if any participant is not
    /// a fork of the same repository.
    pub fn shared_pass(
        &self,
        participants: &[&SetStream<'a>],
    ) -> impl Iterator<Item = (SetId, &'a [ElemId])> {
        assert!(
            !participants.is_empty(),
            "a shared pass needs at least one participating branch"
        );
        self.join_shared_pass(participants);
        self.system.iter()
    }

    /// Logs one logical pass for each participant of a physical scan
    /// that is *already in flight* — the mid-stream-admission half of
    /// [`shared_pass`](SetStream::shared_pass).
    ///
    /// A branch that joins a scan after it began (the driver buffered
    /// the scanned prefix and replays it, so the joiner still observes
    /// every item in repository order) is charged exactly as if it had
    /// been in the original participant list: one logical pass, no
    /// second physical walk. The caller is responsible for the replay;
    /// this method only keeps the accounting honest.
    ///
    /// # Panics
    ///
    /// Panics if any participant is not a fork of the same repository.
    pub fn join_shared_pass(&self, participants: &[&SetStream<'a>]) {
        for p in participants {
            assert!(
                std::ptr::eq(self.system, p.system),
                "shared pass participants must fork the same repository"
            );
            p.passes.set(p.passes.get() + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> SetSystem {
        SetSystem::from_sets(4, vec![vec![0], vec![1, 2], vec![3]])
    }

    #[test]
    fn pass_counts_and_yields_in_order() {
        let sys = system();
        let s = SetStream::new(&sys);
        assert_eq!(s.passes(), 0);
        let ids: Vec<SetId> = s.pass().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(s.passes(), 1);
        let _ = s.pass();
        assert_eq!(s.passes(), 2);
    }

    #[test]
    fn partial_consumption_still_counts() {
        let sys = system();
        let s = SetStream::new(&sys);
        let mut it = s.pass();
        let _ = it.next();
        drop(it);
        assert_eq!(s.passes(), 1);
    }

    #[test]
    fn metadata_is_free() {
        let sys = system();
        let s = SetStream::new(&sys);
        assert_eq!(s.universe(), 4);
        assert_eq!(s.num_sets(), 3);
        assert_eq!(s.passes(), 0);
    }

    #[test]
    fn shared_pass_counts_each_participant_once() {
        let sys = system();
        let s = SetStream::new(&sys);
        let a = s.fork();
        let b = s.fork();
        let items: Vec<SetId> = s.shared_pass(&[&a, &b]).map(|(id, _)| id).collect();
        assert_eq!(
            items,
            vec![0, 1, 2],
            "one physical scan yields the repository"
        );
        assert_eq!(
            (a.passes(), b.passes()),
            (1, 1),
            "each branch logs one pass"
        );
        assert_eq!(
            s.passes(),
            0,
            "the parent is charged via absorb_parallel only"
        );
        let _ = s.shared_pass(&[&b]);
        s.absorb_parallel([a.passes(), b.passes()]);
        assert_eq!(s.passes(), 2, "group cost is the max logical count");
    }

    #[test]
    fn join_shared_pass_charges_without_a_walk() {
        let sys = system();
        let s = SetStream::new(&sys);
        let early = s.fork();
        let late = s.fork();
        let _ = s.shared_pass(&[&early]);
        // The late joiner is charged its logical pass, the parent's
        // counter stays untouched, and no new iterator is created.
        s.join_shared_pass(&[&late]);
        assert_eq!((early.passes(), late.passes()), (1, 1));
        assert_eq!(s.passes(), 0);
    }

    #[test]
    #[should_panic(expected = "same repository")]
    fn join_shared_pass_rejects_foreign_branches() {
        let sys = system();
        let other = system();
        let s = SetStream::new(&sys);
        let foreign = SetStream::new(&other);
        s.join_shared_pass(&[&foreign]);
    }

    #[test]
    #[should_panic(expected = "at least one participating branch")]
    fn shared_pass_rejects_empty_groups() {
        let sys = system();
        let s = SetStream::new(&sys);
        let _ = s.shared_pass(&[]);
    }

    #[test]
    #[should_panic(expected = "same repository")]
    fn shared_pass_rejects_foreign_branches() {
        let sys = system();
        let other = system();
        let s = SetStream::new(&sys);
        let foreign = SetStream::new(&other);
        let _ = s.shared_pass(&[&foreign]);
    }

    #[test]
    fn parallel_children_cost_their_max() {
        let sys = system();
        let s = SetStream::new(&sys);
        let _ = s.pass();
        let a = s.fork();
        let b = s.fork();
        let _ = a.pass();
        let _ = a.pass();
        let _ = b.pass();
        s.absorb_parallel([a.passes(), b.passes()]);
        assert_eq!(s.passes(), 1 + 2);
    }
}
