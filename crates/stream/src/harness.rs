//! Running a streaming algorithm under full instrumentation.

use crate::{RunReport, SetStream, SpaceMeter};
use sc_setsystem::{SetId, SetSystem};

/// A streaming set cover algorithm.
///
/// Implementations receive the pass-counted [`SetStream`] and must
/// charge every word of read-write state to the [`SpaceMeter`]. The
/// returned vector of set ids is the emitted solution (writing it is
/// free; reading it back during the run is not — keep read-back ids
/// charged).
///
/// `run` takes `&mut self` so algorithms can carry configured state
/// (thresholds, seeded RNGs) and scratch diagnostics across the run.
pub trait StreamingSetCover {
    /// Human-readable label including the configuration,
    /// e.g. `"iterSetCover(δ=1/2, ρ=greedy)"`.
    fn name(&self) -> String;

    /// Executes the algorithm on one instance.
    fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId>;
}

/// Runs `alg` on `system` under a fresh stream and meter, verifies the
/// emitted cover, and packages the measurements.
///
/// The report's `verified` field records failure instead of panicking so
/// benchmark sweeps can tabulate a buggy configuration rather than
/// die on it; tests assert `verified.is_ok()`.
pub fn run_reported(alg: &mut dyn StreamingSetCover, system: &SetSystem) -> RunReport {
    let stream = SetStream::new(system);
    let meter = SpaceMeter::new();
    let start = std::time::Instant::now();
    let cover = alg.run(&stream, &meter);
    let elapsed = start.elapsed();
    let verified = system.verify_cover(&cover).map_err(|e| e.to_string());
    RunReport {
        algorithm: alg.name(),
        cover,
        passes: stream.passes(),
        space_words: meter.peak(),
        elapsed,
        verified,
    }
}

/// Like [`run_reported`], but audits the run against a space budget of
/// `budget_words`: the second return value is `true` iff the working
/// set ever went past the budget. The run itself is never aborted —
/// the audit turns a space *claim* (e.g. `c·m·n^δ·polylog`) into a
/// testable verdict, which is how the space-model integration tests pin
/// the paper's Õ(·) bounds.
pub fn run_budgeted(
    alg: &mut dyn StreamingSetCover,
    system: &SetSystem,
    budget_words: usize,
) -> (RunReport, bool) {
    let stream = SetStream::new(system);
    let meter = SpaceMeter::with_budget(budget_words);
    let start = std::time::Instant::now();
    let cover = alg.run(&stream, &meter);
    let elapsed = start.elapsed();
    let verified = system.verify_cover(&cover).map_err(|e| e.to_string());
    let report = RunReport {
        algorithm: alg.name(),
        cover,
        passes: stream.passes(),
        space_words: meter.peak(),
        elapsed,
        verified,
    };
    (report, meter.exceeded())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_bitset::BitSet;

    /// Toy algorithm: one pass, keep a dense "covered" bitmap, take any
    /// set contributing a new element.
    struct TakeAnythingNew;

    impl StreamingSetCover for TakeAnythingNew {
        fn name(&self) -> String {
            "take-anything-new".into()
        }

        fn run(&mut self, stream: &SetStream<'_>, meter: &SpaceMeter) -> Vec<SetId> {
            let n = stream.universe();
            let covered = BitSet::new(n);
            meter.charge(covered.as_words().len());
            let mut covered = covered;
            let mut sol = Vec::new();
            for (id, elems) in stream.pass() {
                let mut news = false;
                for &e in elems {
                    news |= covered.insert(e);
                }
                if news {
                    sol.push(id);
                }
            }
            meter.release(covered.as_words().len());
            sol
        }
    }

    #[test]
    fn harness_reports_passes_space_and_verification() {
        let system = SetSystem::from_sets(
            100,
            vec![(0..50).collect(), (25..75).collect(), (50..100).collect()],
        );
        let report = run_reported(&mut TakeAnythingNew, &system);
        assert!(report.verified.is_ok());
        assert_eq!(report.passes, 1);
        assert_eq!(report.cover, vec![0, 1, 2]);
        assert_eq!(report.space_words, 2, "100-bit bitmap = 2 words");
    }

    #[test]
    fn harness_flags_non_covers() {
        struct DoesNothing;
        impl StreamingSetCover for DoesNothing {
            fn name(&self) -> String {
                "noop".into()
            }
            fn run(&mut self, _: &SetStream<'_>, _: &SpaceMeter) -> Vec<SetId> {
                Vec::new()
            }
        }
        let system = SetSystem::from_sets(2, vec![vec![0, 1]]);
        let report = run_reported(&mut DoesNothing, &system);
        assert!(report.verified.is_err());
    }
}
