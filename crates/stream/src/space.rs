//! Working-memory accounting in 64-bit words.

use std::cell::Cell;

/// Measures an algorithm's read-write memory, in 64-bit words.
///
/// The meter keeps a running `current` total and the `peak` it has ever
/// reached. Algorithms charge for every structure they keep alive
/// between stream items and release when they drop it; the peak is the
/// number the paper's space bounds (Õ(mn^δ), Õ(n), …) talk about.
///
/// What is charged (following the model in Section 1 and the accounting
/// in Lemma 2.2):
///
/// * samples of elements, stored projections, per-element pointers,
///   residual-universe bitmaps, offline-solver working state;
/// * picked set *ids* retained for later passes (the paper charges
///   `O(m log m)` bits, i.e. O(m) words, for exactly this in Lemma 2.2).
///
/// What is free:
///
/// * the read-only repository itself;
/// * the emitted solution stream (ids written to the output, never read
///   back — when an algorithm *does* read its solution back, it must
///   keep the ids charged).
///
/// Interior mutability lets a single meter be threaded through nested
/// helper calls without `&mut` plumbing.
///
/// A meter may carry a **budget** ([`with_budget`](SpaceMeter::with_budget)):
/// charging past it never aborts the run (algorithms are not required
/// to cooperate), but trips a sticky [`exceeded`](SpaceMeter::exceeded)
/// flag the harness reports — the audit that turns the paper's Õ(·)
/// space claims into testable pass/fail verdicts.
#[derive(Debug, Default)]
pub struct SpaceMeter {
    current: Cell<usize>,
    peak: Cell<usize>,
    /// Budget in words; 0 = unlimited.
    budget: usize,
    exceeded: Cell<bool>,
}

impl SpaceMeter {
    /// Fresh meter with zero usage and no budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh meter that audits against a budget of `words` (> 0).
    pub fn with_budget(words: usize) -> Self {
        assert!(
            words > 0,
            "budget must be positive; use new() for unlimited"
        );
        Self {
            budget: words,
            ..Self::default()
        }
    }

    /// The audit budget, if one was set.
    pub fn budget(&self) -> Option<usize> {
        (self.budget > 0).then_some(self.budget)
    }

    /// `true` once usage has ever gone past the budget (sticky).
    pub fn exceeded(&self) -> bool {
        self.exceeded.get()
    }

    /// Words currently held.
    pub fn current(&self) -> usize {
        self.current.get()
    }

    /// High-water mark, in words.
    pub fn peak(&self) -> usize {
        self.peak.get()
    }

    /// Charges `words` of working memory.
    pub fn charge(&self, words: usize) {
        let cur = self.current.get() + words;
        self.current.set(cur);
        if cur > self.peak.get() {
            self.peak.set(cur);
            if self.budget > 0 && cur > self.budget {
                self.exceeded.set(true);
            }
        }
    }

    /// Releases `words` previously charged.
    ///
    /// # Panics
    ///
    /// Panics if more is released than is currently held — that is
    /// always an accounting bug in the algorithm.
    pub fn release(&self, words: usize) {
        let cur = self.current.get();
        assert!(words <= cur, "releasing {words} words but only {cur} held");
        self.current.set(cur - words);
    }

    /// Adjusts a tracked structure's charge from `*slot` to `new` words
    /// and stores `new` back into the slot.
    ///
    /// The idiom: each tracked container keeps its last-reported size in
    /// a local `usize`; after any mutation it calls `resync`.
    pub fn resync(&self, slot: &mut usize, new: usize) {
        let old = *slot;
        if new >= old {
            self.charge(new - old);
        } else {
            self.release(old - new);
        }
        *slot = new;
    }

    /// Forks a child meter for one branch of a parallel group. Children
    /// carry no budget of their own: the group's combined footprint is
    /// audited by [`absorb_parallel`](SpaceMeter::absorb_parallel).
    pub fn fork(&self) -> SpaceMeter {
        SpaceMeter::new()
    }

    /// Accounts a finished parallel group: the children ran
    /// *simultaneously*, so their peaks add on top of the parent's
    /// current usage.
    pub fn absorb_parallel<I: IntoIterator<Item = usize>>(&self, child_peaks: I) {
        let sum: usize = child_peaks.into_iter().sum();
        let would_be = self.current.get() + sum;
        if would_be > self.peak.get() {
            self.peak.set(would_be);
            if self.budget > 0 && would_be > self.budget {
                self.exceeded.set(true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_release_tracks_peak() {
        let m = SpaceMeter::new();
        m.charge(10);
        m.charge(5);
        assert_eq!(m.current(), 15);
        m.release(12);
        assert_eq!(m.current(), 3);
        assert_eq!(m.peak(), 15, "peak survives release");
        m.charge(4);
        assert_eq!(m.peak(), 15, "peak unchanged below high-water mark");
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let m = SpaceMeter::new();
        m.charge(1);
        m.release(2);
    }

    #[test]
    fn resync_moves_both_directions() {
        let m = SpaceMeter::new();
        let mut slot = 0usize;
        m.resync(&mut slot, 100);
        assert_eq!((m.current(), slot), (100, 100));
        m.resync(&mut slot, 40);
        assert_eq!((m.current(), slot), (40, 40));
        m.resync(&mut slot, 40);
        assert_eq!(m.current(), 40);
        assert_eq!(m.peak(), 100);
    }

    #[test]
    fn budget_audit_is_sticky_and_covers_parallel_groups() {
        let m = SpaceMeter::with_budget(100);
        assert_eq!(m.budget(), Some(100));
        m.charge(90);
        assert!(!m.exceeded());
        m.charge(20); // 110 > 100
        assert!(m.exceeded());
        m.release(110);
        assert!(m.exceeded(), "flag must be sticky");

        // Parallel groups: children are individually unbudgeted, the
        // group total trips the parent's audit.
        let p = SpaceMeter::with_budget(100);
        p.charge(10);
        let a = p.fork();
        a.charge(60);
        let b = p.fork();
        b.charge(60);
        assert!(!a.exceeded() && !b.exceeded());
        p.absorb_parallel([a.peak(), b.peak()]);
        assert!(p.exceeded(), "10 + 60 + 60 > 100");
    }

    #[test]
    fn unbudgeted_meter_never_trips() {
        let m = SpaceMeter::new();
        assert_eq!(m.budget(), None);
        m.charge(usize::MAX / 2);
        assert!(!m.exceeded());
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = SpaceMeter::with_budget(0);
    }

    #[test]
    fn absorb_parallel_sums_children_over_current() {
        let m = SpaceMeter::new();
        m.charge(7);
        let a = m.fork();
        a.charge(50);
        a.release(50);
        let b = m.fork();
        b.charge(30);
        m.absorb_parallel([a.peak(), b.peak()]);
        assert_eq!(m.peak(), 7 + 50 + 30);
        assert_eq!(m.current(), 7, "absorb does not change current");
    }
}
