//! The measured outcome of one streaming run.

use sc_setsystem::SetId;
use std::fmt;
use std::time::Duration;

/// What one streaming execution measured: the three columns of the
/// paper's Figure 1.1, plus the solution itself and the wall-clock
/// cost of producing it.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm label, e.g. `"iterSetCover(δ=1/2, ρ=greedy)"`.
    pub algorithm: String,
    /// The emitted cover (set ids).
    pub cover: Vec<SetId>,
    /// Number of passes over the repository.
    pub passes: usize,
    /// Peak read-write memory, in 64-bit words.
    pub space_words: usize,
    /// Wall-clock time of the algorithm's `run` (excluding cover
    /// verification) — the perf trajectory the `BENCH_*.json` files
    /// track. Not part of the paper's model; purely an implementation
    /// measurement.
    pub elapsed: Duration,
    /// `Ok` if the cover was verified against the instance.
    pub verified: Result<(), String>,
}

impl RunReport {
    /// Solution size `|sol|`.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }

    /// Approximation ratio against a known optimum.
    ///
    /// # Panics
    ///
    /// Panics if `opt == 0`.
    pub fn ratio(&self, opt: usize) -> f64 {
        assert!(opt > 0, "optimum must be positive");
        self.cover.len() as f64 / opt as f64
    }

    /// Space normalised by a model quantity (e.g. `m·n^δ` or `n`),
    /// useful for checking the Õ(·) shape across a parameter sweep.
    pub fn space_per(&self, denominator: f64) -> f64 {
        assert!(denominator > 0.0);
        self.space_words as f64 / denominator
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<40} |sol|={:<6} passes={:<4} space={:<10} {}",
            self.algorithm,
            self.cover.len(),
            self.passes,
            self.space_words,
            match &self.verified {
                Ok(()) => "ok",
                Err(e) => e.as_str(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            algorithm: "test".into(),
            cover: vec![1, 2, 3],
            passes: 2,
            space_words: 640,
            elapsed: std::time::Duration::from_millis(5),
            verified: Ok(()),
        }
    }

    #[test]
    fn ratio_and_normalised_space() {
        let r = report();
        assert_eq!(r.cover_size(), 3);
        assert!((r.ratio(2) - 1.5).abs() < 1e-12);
        assert!((r.space_per(64.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "optimum must be positive")]
    fn zero_opt_rejected() {
        report().ratio(0);
    }

    #[test]
    fn display_mentions_verification() {
        let mut r = report();
        assert!(r.to_string().contains("ok"));
        r.verified = Err("element 5 is not covered".into());
        assert!(r.to_string().contains("element 5"));
    }
}
