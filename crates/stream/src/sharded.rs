//! The sharded repository feed: zero-copy shard access over one shared
//! physical scan, plus the work-stealing cursor that hands shards to a
//! pool of workers.
//!
//! The epoch scheduler in `sc_service` used to materialise every scan
//! as a `Vec<(id, &[elems])>` before fanning it out to worker threads —
//! an `O(m)` copy per epoch that exists only because a `shared_pass`
//! iterator can be consumed once while several workers each need the
//! whole item sequence. [`ShardedPass`] removes the copy: the
//! repository is partitioned into contiguous shards of set ids, and any
//! number of workers read any shard directly from the repository slices
//! ([`ShardedPass::shard`] borrows with the repository lifetime, so a
//! shard iterator is free to construct and free to re-create).
//!
//! [`FeedCursor`] is the scheduling half: a work-stealing cursor over
//! the `(consumer, shard)` grid for feeds where every consumer (a query
//! job in `sc_service`) must observe **every shard in repository
//! order** — the property that keeps per-query observables bit-identical
//! to a solo run. Each consumer advances through its shards strictly in
//! order with at most one shard in flight, while *which worker* carries
//! a given `(consumer, shard)` unit is decided dynamically by atomic
//! claim — so a heavy query no longer pins the static chunk of queries
//! that happened to be scheduled beside it.
//!
//! [`InterleavedCursor`] lifts the same claim protocol to many
//! concurrent feeds: independent *lanes* (one per tenant epoch in
//! `sc_service`) attach their own grids to a shared registry, so a
//! machine-wide scheduler can meter `(tenant, shard)` units across
//! tenants while each lane keeps the exact per-consumer
//! exactly-once-in-order guarantee of a solo [`FeedCursor`].
//!
//! Accounting is unchanged from [`SetStream::shared_pass`]: creating a
//! sharded pass logs one logical pass per participant, and
//! [`ScanLedger::scan_sharded`](crate::ScanLedger::scan_sharded) counts
//! one physical scan per feed, no matter how many shards or workers
//! consume it.

use crate::SetStream;
use sc_setsystem::{ElemId, SetId, SetSystem};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A zero-copy sharded view of one shared physical scan.
///
/// Created by [`SetStream::sharded_pass`] (which performs the logical
/// pass accounting for every participant, exactly like
/// [`SetStream::shared_pass`]) or
/// [`ScanLedger::scan_sharded`](crate::ScanLedger::scan_sharded) (which
/// additionally counts the physical scan). The view is `Sync`: shard
/// iterators borrow the repository directly, so many workers can read
/// disjoint — or even the same — shards concurrently without any
/// buffering.
///
/// # Examples
///
/// ```
/// use sc_setsystem::SetSystem;
/// use sc_stream::SetStream;
///
/// let system = SetSystem::from_sets(4, vec![vec![0], vec![1, 2], vec![3]]);
/// let root = SetStream::new(&system);
/// let q = root.fork();
/// let feed = root.sharded_pass(&[&q], 2);
/// assert_eq!(q.passes(), 1, "one logical pass, however many shards");
/// assert_eq!(feed.num_shards(), 2);
/// let ids: Vec<_> = (0..feed.num_shards())
///     .flat_map(|s| feed.shard(s).map(|(id, _)| id))
///     .collect();
/// assert_eq!(ids, vec![0, 1, 2], "shards tile the repository in order");
/// ```
#[derive(Debug)]
pub struct ShardedPass<'a> {
    system: &'a SetSystem,
    shard_size: usize,
    num_shards: usize,
}

impl<'a> ShardedPass<'a> {
    pub(crate) fn new(system: &'a SetSystem, shard_size: usize) -> Self {
        assert!(shard_size > 0, "shards must hold at least one set");
        Self {
            system,
            shard_size,
            num_shards: system.num_sets().div_ceil(shard_size),
        }
    }

    /// Number of contiguous shards the repository is partitioned into
    /// (zero for an empty family).
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Sets per shard (the last shard may be shorter).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// Family size `m` of the underlying repository.
    pub fn num_sets(&self) -> usize {
        self.system.num_sets()
    }

    /// The items of shard `index`, in repository order, borrowed
    /// straight from the repository — no buffering, no copy, free to
    /// call any number of times from any thread.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_shards()`.
    pub fn shard(&self, index: usize) -> impl Iterator<Item = (SetId, &'a [ElemId])> + use<'a> {
        assert!(index < self.num_shards, "shard {index} out of range");
        let start = index * self.shard_size;
        let end = (start + self.shard_size).min(self.system.num_sets());
        let system = self.system;
        (start..end).map(move |id| (id as SetId, system.set(id as SetId)))
    }

    /// Every item of the scan in repository order — the single-consumer
    /// replay, equivalent to what [`SetStream::shared_pass`] yields.
    pub fn replay(&self) -> impl Iterator<Item = (SetId, &'a [ElemId])> + use<'a> {
        self.system.iter()
    }

    /// A fresh work-stealing cursor scheduling this feed's shards to
    /// `consumers` independent consumers (each must observe every shard
    /// in order; see [`FeedCursor`]).
    pub fn cursor(&self, consumers: usize) -> FeedCursor {
        FeedCursor::new(consumers, self.num_shards)
    }
}

/// One unit of feed work, or the reason none is available right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Feed shard `shard` to consumer `consumer`, then call
    /// [`FeedCursor::complete`].
    Shard {
        /// Index of the consumer to feed (exclusively claimed until
        /// completed).
        consumer: usize,
        /// The shard to feed it — always the consumer's next unseen
        /// shard.
        shard: usize,
    },
    /// Work remains but every consumer with shards left is claimed by
    /// another worker; yield and claim again.
    Retry,
    /// Every consumer has observed every shard; the worker can exit.
    Done,
}

/// A work-stealing cursor over the `(consumer, shard)` grid of a
/// sharded feed.
///
/// Invariants the cursor guarantees (and `debug_assert`s):
///
/// * each consumer is handed shards `0, 1, …, num_shards−1` strictly in
///   order — so a consumer that must see items in repository order
///   (every cover-query job) stays bit-identical to a solo run;
/// * at most one shard per consumer is in flight at a time —
///   [`Claim::Shard`] grants the worker exclusive access to that
///   consumer until [`complete`](FeedCursor::complete);
/// * every `(consumer, shard)` unit is handed out exactly once.
///
/// Workers loop on [`claim`](FeedCursor::claim): `Shard` carries work,
/// `Retry` means spin (another worker holds every consumer that still
/// has shards left — the tail of an epoch), `Done` terminates. The
/// cursor is lock-free (per-consumer atomics plus a remaining-unit
/// counter), so claims cost two atomic operations on the hot path.
///
/// # Examples
///
/// ```
/// use sc_stream::{Claim, FeedCursor};
///
/// let cursor = FeedCursor::new(1, 3);
/// for expect in 0..3 {
///     match cursor.claim() {
///         Claim::Shard { consumer: 0, shard } => {
///             assert_eq!(shard, expect, "shards arrive in order");
///             cursor.complete(0, shard);
///         }
///         other => panic!("unexpected claim {other:?}"),
///     }
/// }
/// assert_eq!(cursor.claim(), Claim::Done);
/// ```
#[derive(Debug)]
pub struct FeedCursor {
    grid: Grid,
}

/// The lock-free `(consumer, shard)` claim grid shared by
/// [`FeedCursor`] (one lane) and [`InterleavedCursor`] (one grid per
/// attached lane). Both cursors route every claim and completion
/// through this single implementation, so the per-consumer
/// exactly-once-in-order invariant is the same object in both modes.
#[derive(Debug)]
struct Grid {
    /// `claimed[c]` — consumer `c` is exclusively held by some worker.
    claimed: Vec<AtomicBool>,
    /// `next[c]` — the next shard consumer `c` has not yet observed.
    /// Written only by the worker holding the claim (or pre-claim by
    /// nobody), read under `Acquire` after winning the claim.
    next: Vec<AtomicUsize>,
    /// `(consumer, shard)` units not yet completed; `0` means done.
    remaining: AtomicUsize,
    /// Set by `abort`: every further claim returns [`Claim::Done`]
    /// even with units outstanding.
    aborted: AtomicBool,
    num_shards: usize,
}

impl Grid {
    fn new(consumers: usize, num_shards: usize) -> Self {
        Self {
            claimed: (0..consumers).map(|_| AtomicBool::new(false)).collect(),
            next: (0..consumers).map(|_| AtomicUsize::new(0)).collect(),
            remaining: AtomicUsize::new(consumers * num_shards),
            aborted: AtomicBool::new(false),
            num_shards,
        }
    }

    fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::Release);
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::Acquire)
    }

    fn claim(&self) -> Claim {
        if self.aborted.load(Ordering::Acquire) || self.remaining() == 0 {
            return Claim::Done;
        }
        for (consumer, flag) in self.claimed.iter().enumerate() {
            // Cheap read first; the swap below arbitrates actual races.
            if flag.load(Ordering::Relaxed) {
                continue;
            }
            if flag.swap(true, Ordering::Acquire) {
                continue; // lost the race
            }
            let shard = self.next[consumer].load(Ordering::Acquire);
            if shard < self.num_shards {
                return Claim::Shard { consumer, shard };
            }
            // This consumer is exhausted; release and keep sweeping.
            flag.store(false, Ordering::Release);
        }
        if self.remaining() == 0 {
            Claim::Done
        } else {
            Claim::Retry
        }
    }

    fn complete(&self, consumer: usize, shard: usize) {
        debug_assert!(
            self.claimed[consumer].load(Ordering::Acquire),
            "completing a unit of an unclaimed consumer"
        );
        debug_assert_eq!(
            self.next[consumer].load(Ordering::Acquire),
            shard,
            "completing a shard out of order"
        );
        debug_assert!(self.remaining() > 0, "completing on an exhausted feed");
        self.next[consumer].store(shard + 1, Ordering::Release);
        self.remaining.fetch_sub(1, Ordering::AcqRel);
        self.claimed[consumer].store(false, Ordering::Release);
    }
}

impl FeedCursor {
    /// A cursor over `consumers × num_shards` units, all unclaimed.
    pub fn new(consumers: usize, num_shards: usize) -> Self {
        Self {
            grid: Grid::new(consumers, num_shards),
        }
    }

    /// `(consumer, shard)` units not yet completed.
    pub fn remaining(&self) -> usize {
        self.grid.remaining()
    }

    /// Shuts the feed down: every further [`claim`](FeedCursor::claim)
    /// returns [`Claim::Done`] even though units remain outstanding.
    ///
    /// This is the worker pool's panic escape hatch. A worker that
    /// unwinds mid-unit (a firing `debug_assert`, a poisoned slot)
    /// leaves its consumer claimed forever; without an abort its
    /// siblings would spin on [`Claim::Retry`] until the end of time
    /// and the pool's scope would never unwind to propagate the
    /// panic. Call it from an unwind guard so the death of one worker
    /// releases the rest.
    pub fn abort(&self) {
        self.grid.abort();
    }

    /// `true` once [`abort`](FeedCursor::abort) was called — lets a
    /// driver thread polling [`remaining`](FeedCursor::remaining) for
    /// the feed's end distinguish a clean drain from a pool that died
    /// with units outstanding (and stop waiting for them).
    pub fn is_aborted(&self) -> bool {
        self.grid.is_aborted()
    }

    /// Claims the next available unit of work (see [`Claim`]).
    pub fn claim(&self) -> Claim {
        self.grid.claim()
    }

    /// Marks a claimed unit as fed, releasing the consumer for the next
    /// shard (possibly to another worker).
    ///
    /// # Panics
    ///
    /// Debug builds assert the unit was the one actually claimed: the
    /// consumer must be held, `shard` must be its next shard, and the
    /// feed must have had work remaining.
    pub fn complete(&self, consumer: usize, shard: usize) {
        self.grid.complete(consumer, shard);
    }
}

/// A multi-lane generalisation of [`FeedCursor`]: one long-lived
/// work-stealing registry that any number of independent *lanes* (one
/// per tenant scan epoch, in `sc_service`) attach their `(consumer,
/// shard)` grids to and detach from dynamically.
///
/// Each attached lane gets its own [`Grid`] — the exact structure
/// behind [`FeedCursor`] — so the per-lane scheduling semantics are
/// *identical* to a solo `FeedCursor`: every consumer of a lane
/// observes every shard of **its own lane's** repository exactly once,
/// strictly in repository order, with at most one shard in flight per
/// consumer. What the shared registry adds is visibility: a scheduler
/// can ask how many units remain across *all* live lanes
/// ([`remaining`](InterleavedCursor::remaining)) and how many lanes are
/// currently attached ([`live_lanes`](InterleavedCursor::live_lanes)),
/// which is what lets a machine-wide arbiter meter shard units across
/// tenants instead of running one tenant's epoch to completion at a
/// time.
///
/// Aborts are **lane-scoped**: a worker pool that dies aborts only its
/// own lane's feed. A cross-lane abort would let a healthy lane's
/// fan-out return normally with an incomplete scan — silently wrong
/// answers — whereas a lane-scoped abort unwinds exactly the lane that
/// panicked.
///
/// # Examples
///
/// ```
/// use sc_stream::{Claim, InterleavedCursor};
///
/// let cursor = InterleavedCursor::new();
/// let a = cursor.attach(1, 2); // lane a: 1 consumer × 2 shards
/// let b = cursor.attach(2, 1); // lane b: 2 consumers × 1 shard
/// assert_eq!(cursor.live_lanes(), 2);
/// assert_eq!(cursor.remaining(), 4);
/// while let Claim::Shard { consumer, shard } = a.claim() {
///     a.complete(consumer, shard);
/// }
/// drop(a); // lane detaches; its slot is recycled
/// assert_eq!(cursor.live_lanes(), 1);
/// assert_eq!(cursor.remaining(), 2);
/// drop(b);
/// assert_eq!(cursor.live_lanes(), 0);
/// ```
#[derive(Debug, Default)]
pub struct InterleavedCursor {
    /// Slot registry: `Some` while a lane is attached, recycled on
    /// detach. Locked only on attach/detach (twice per epoch), never
    /// on the claim/complete hot path.
    lanes: Mutex<Vec<Option<Arc<Grid>>>>,
    /// Units not yet completed across all live lanes.
    remaining_total: AtomicUsize,
    /// Number of currently attached lanes.
    live: AtomicUsize,
}

impl InterleavedCursor {
    /// An empty registry with no lanes attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a fresh lane of `consumers × num_shards` units and
    /// returns its feed handle. The lane detaches (and its slot is
    /// recycled) when the handle drops.
    pub fn attach(&self, consumers: usize, num_shards: usize) -> LaneFeed<'_> {
        let grid = Arc::new(Grid::new(consumers, num_shards));
        let mut lanes = self.lanes.lock().expect("lane registry poisoned");
        let lane = match lanes.iter().position(Option::is_none) {
            Some(slot) => {
                lanes[slot] = Some(Arc::clone(&grid));
                slot
            }
            None => {
                lanes.push(Some(Arc::clone(&grid)));
                lanes.len() - 1
            }
        };
        self.remaining_total
            .fetch_add(consumers * num_shards, Ordering::AcqRel);
        self.live.fetch_add(1, Ordering::AcqRel);
        LaneFeed {
            cursor: self,
            grid,
            lane,
        }
    }

    /// `(consumer, shard)` units not yet completed across all live
    /// lanes. Units of a lane that detaches early (abort) leave the
    /// total with it.
    pub fn remaining(&self) -> usize {
        self.remaining_total.load(Ordering::Acquire)
    }

    /// Number of currently attached lanes.
    pub fn live_lanes(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }
}

/// One lane's feed handle into an [`InterleavedCursor`] — the moral
/// equivalent of an owned [`FeedCursor`], scoped to the lane's
/// lifetime. Claims and completions have exactly `FeedCursor`
/// semantics; [`abort`](LaneFeed::abort) shuts down **this lane
/// only**. Dropping the handle detaches the lane and returns any
/// unabsorbed units (an aborted feed) to the registry's books.
#[derive(Debug)]
pub struct LaneFeed<'c> {
    cursor: &'c InterleavedCursor,
    grid: Arc<Grid>,
    lane: usize,
}

impl LaneFeed<'_> {
    /// The registry slot this lane occupies while attached.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// `(consumer, shard)` units of **this lane** not yet completed.
    pub fn remaining(&self) -> usize {
        self.grid.remaining()
    }

    /// Shuts down this lane's feed: further claims return
    /// [`Claim::Done`] with units outstanding. Other lanes are
    /// untouched — see the type docs for why aborts must not cross
    /// lanes.
    pub fn abort(&self) {
        self.grid.abort();
    }

    /// `true` once [`abort`](LaneFeed::abort) was called on this lane.
    pub fn is_aborted(&self) -> bool {
        self.grid.is_aborted()
    }

    /// Claims this lane's next available unit (see [`Claim`]).
    pub fn claim(&self) -> Claim {
        self.grid.claim()
    }

    /// Marks a claimed unit of this lane as fed — identical contract
    /// (and debug assertions) to [`FeedCursor::complete`].
    pub fn complete(&self, consumer: usize, shard: usize) {
        self.grid.complete(consumer, shard);
        self.cursor.remaining_total.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Drop for LaneFeed<'_> {
    fn drop(&mut self) {
        let mut lanes = self.cursor.lanes.lock().expect("lane registry poisoned");
        lanes[self.lane] = None;
        // An aborted lane detaches with units never completed; take
        // them off the shared books so the registry total stays the
        // sum over live lanes.
        let leftover = self.grid.remaining();
        drop(lanes);
        if leftover > 0 {
            self.cursor
                .remaining_total
                .fetch_sub(leftover, Ordering::AcqRel);
        }
        self.cursor.live.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<'a> SetStream<'a> {
    /// One physical scan executed on behalf of several parallel
    /// branches, exposed as a sharded zero-copy feed instead of a
    /// single-consumer iterator — the fan-out half of
    /// [`shared_pass`](SetStream::shared_pass).
    ///
    /// The accounting is identical to `shared_pass`: each participant
    /// logs one logical pass up front, the caller performs (and is
    /// responsible for counting) the single underlying physical scan,
    /// however many shards and worker threads end up consuming it.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is empty, if any participant is not a
    /// fork of the same repository, or if `shard_size` is zero.
    pub fn sharded_pass(
        &self,
        participants: &[&SetStream<'a>],
        shard_size: usize,
    ) -> ShardedPass<'a> {
        assert!(
            !participants.is_empty(),
            "a shared pass needs at least one participating branch"
        );
        self.join_shared_pass(participants);
        ShardedPass::new(self.repository(), shard_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    fn system(m: usize) -> SetSystem {
        SetSystem::from_sets(m.max(1), (0..m).map(|i| vec![i as ElemId]).collect())
    }

    #[test]
    fn shards_tile_the_repository_in_order() {
        for (m, size) in [(0, 3), (1, 3), (5, 2), (6, 2), (7, 8)] {
            let sys = system(m);
            let feed = ShardedPass::new(&sys, size);
            assert_eq!(feed.num_shards(), m.div_ceil(size));
            let ids: Vec<SetId> = (0..feed.num_shards())
                .flat_map(|s| feed.shard(s).map(|(id, _)| id))
                .collect();
            let expect: Vec<SetId> = (0..m as SetId).collect();
            assert_eq!(ids, expect, "m={m} size={size}");
            let replay: Vec<SetId> = feed.replay().map(|(id, _)| id).collect();
            assert_eq!(replay, expect);
        }
    }

    #[test]
    fn shard_items_borrow_the_repository() {
        let sys = SetSystem::from_sets(4, vec![vec![0, 1], vec![2, 3]]);
        let feed = ShardedPass::new(&sys, 1);
        let (id, elems) = feed.shard(1).next().expect("one set");
        assert_eq!((id, elems), (1, &[2u32, 3][..]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_shard_panics() {
        let sys = system(4);
        let feed = ShardedPass::new(&sys, 2);
        let _ = feed.shard(2);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_shard_size_is_rejected() {
        let sys = system(4);
        let _ = ShardedPass::new(&sys, 0);
    }

    #[test]
    fn sharded_pass_accounts_like_shared_pass() {
        let sys = system(6);
        let root = SetStream::new(&sys);
        let (a, b) = (root.fork(), root.fork());
        let feed = root.sharded_pass(&[&a, &b], 4);
        assert_eq!((a.passes(), b.passes()), (1, 1));
        assert_eq!(root.passes(), 0, "parent charged via absorb_parallel");
        assert_eq!(feed.num_shards(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one participating branch")]
    fn sharded_pass_rejects_empty_groups() {
        let sys = system(3);
        let root = SetStream::new(&sys);
        let _ = root.sharded_pass(&[], 2);
    }

    #[test]
    fn cursor_hands_each_unit_exactly_once_in_consumer_order() {
        let cursor = FeedCursor::new(3, 4);
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); 3];
        loop {
            match cursor.claim() {
                Claim::Shard { consumer, shard } => {
                    seen[consumer].push(shard);
                    cursor.complete(consumer, shard);
                }
                Claim::Retry => unreachable!("single worker never races"),
                Claim::Done => break,
            }
        }
        for shards in &seen {
            assert_eq!(shards, &[0, 1, 2, 3]);
        }
        assert_eq!(cursor.remaining(), 0);
        assert_eq!(cursor.claim(), Claim::Done);
    }

    #[test]
    fn empty_feeds_are_done_immediately() {
        assert_eq!(FeedCursor::new(0, 5).claim(), Claim::Done);
        assert_eq!(FeedCursor::new(3, 0).claim(), Claim::Done);
    }

    #[test]
    fn abort_drains_the_pool_with_units_outstanding() {
        let cursor = FeedCursor::new(2, 4);
        // A worker dies holding consumer 0 (never completes the unit).
        assert_eq!(
            cursor.claim(),
            Claim::Shard {
                consumer: 0,
                shard: 0
            }
        );
        cursor.abort();
        // Siblings see Done instead of spinning on Retry forever.
        assert_eq!(cursor.claim(), Claim::Done);
        assert!(cursor.remaining() > 0, "abort is not completion");
    }

    #[test]
    fn claimed_consumers_force_retry_until_released() {
        let cursor = FeedCursor::new(1, 2);
        let unit = cursor.claim();
        assert_eq!(
            unit,
            Claim::Shard {
                consumer: 0,
                shard: 0
            }
        );
        // The lone consumer is held, but a shard remains outstanding.
        assert_eq!(cursor.claim(), Claim::Retry);
        cursor.complete(0, 0);
        assert_eq!(
            cursor.claim(),
            Claim::Shard {
                consumer: 0,
                shard: 1
            }
        );
    }

    /// Many workers, many consumers: every consumer must still observe
    /// every shard exactly once and strictly in order.
    #[test]
    fn concurrent_workers_preserve_per_consumer_order() {
        let (consumers, shards, workers) = (5, 16, 4);
        let cursor = FeedCursor::new(consumers, shards);
        let logs: Vec<Mutex<Vec<usize>>> = (0..consumers).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    match cursor.claim() {
                        Claim::Shard { consumer, shard } => {
                            logs[consumer].lock().expect("log").push(shard);
                            cursor.complete(consumer, shard);
                        }
                        Claim::Retry => std::thread::yield_now(),
                        Claim::Done => break,
                    }
                });
            }
        });
        for log in &logs {
            let log = log.lock().expect("log");
            let expect: Vec<usize> = (0..shards).collect();
            assert_eq!(*log, expect, "in order, exactly once");
        }
    }

    /// Shard-granular stealing stress across 3 lanes (shard_size=1 —
    /// every set is its own unit): a pool of workers per lane races
    /// over a shared registry, and every job must still observe every
    /// shard of **its own tenant's** repository exactly once, in
    /// repository order.
    #[test]
    fn interleaved_lanes_keep_per_lane_consumer_order() {
        let cursor = InterleavedCursor::new();
        // Three lanes of different shapes: (consumers, shards).
        let shapes = [(3usize, 17usize), (1, 29), (4, 11)];
        let feeds: Vec<LaneFeed<'_>> = shapes.iter().map(|&(c, s)| cursor.attach(c, s)).collect();
        assert_eq!(cursor.live_lanes(), 3);
        assert_eq!(
            cursor.remaining(),
            shapes.iter().map(|&(c, s)| c * s).sum::<usize>()
        );
        let logs: Vec<Vec<Mutex<Vec<usize>>>> = shapes
            .iter()
            .map(|&(c, _)| (0..c).map(|_| Mutex::new(Vec::new())).collect())
            .collect();
        std::thread::scope(|s| {
            for (lane, feed) in feeds.iter().enumerate() {
                for _ in 0..3 {
                    let logs = &logs;
                    s.spawn(move || loop {
                        match feed.claim() {
                            Claim::Shard { consumer, shard } => {
                                logs[lane][consumer].lock().expect("log").push(shard);
                                feed.complete(consumer, shard);
                            }
                            Claim::Retry => std::thread::yield_now(),
                            Claim::Done => break,
                        }
                    });
                }
            }
        });
        for (lane, &(_, shards)) in shapes.iter().enumerate() {
            for log in &logs[lane] {
                let log = log.lock().expect("log");
                let expect: Vec<usize> = (0..shards).collect();
                assert_eq!(*log, expect, "lane {lane}: in order, exactly once");
            }
        }
        assert_eq!(cursor.remaining(), 0);
        drop(feeds);
        assert_eq!(cursor.live_lanes(), 0);
    }

    /// Lanes attach and detach dynamically; slots are recycled and the
    /// registry totals track only live lanes.
    #[test]
    fn interleaved_lanes_attach_and_detach_dynamically() {
        let cursor = InterleavedCursor::new();
        let a = cursor.attach(2, 3);
        let b = cursor.attach(1, 5);
        assert_eq!((a.lane(), b.lane()), (0, 1));
        assert_eq!(cursor.remaining(), 11);
        drop(a);
        assert_eq!(cursor.live_lanes(), 1);
        assert_eq!(cursor.remaining(), 5, "a detached with all units open");
        let c = cursor.attach(1, 1);
        assert_eq!(c.lane(), 0, "detached slot is recycled");
        assert_eq!(cursor.remaining(), 6);
        drop((b, c));
        assert_eq!((cursor.live_lanes(), cursor.remaining()), (0, 0));
    }

    /// An abort is lane-scoped: the dying lane drains, its siblings
    /// keep claiming, and its unabsorbed units leave the shared total
    /// when it detaches.
    #[test]
    fn interleaved_abort_is_lane_scoped() {
        let cursor = InterleavedCursor::new();
        let sick = cursor.attach(1, 4);
        let healthy = cursor.attach(1, 2);
        assert_eq!(
            sick.claim(),
            Claim::Shard {
                consumer: 0,
                shard: 0
            }
        );
        sick.abort();
        assert_eq!(sick.claim(), Claim::Done, "aborted lane drains");
        assert!(sick.is_aborted());
        assert!(!healthy.is_aborted(), "abort does not cross lanes");
        assert_eq!(
            healthy.claim(),
            Claim::Shard {
                consumer: 0,
                shard: 0
            },
            "healthy lane keeps feeding"
        );
        healthy.complete(0, 0);
        assert_eq!(cursor.remaining(), 4 + 1);
        drop(sick);
        assert_eq!(cursor.remaining(), 1, "abort's leftovers leave with it");
    }

    /// The units a concurrent run completes are exactly the full grid.
    #[test]
    fn concurrent_workers_cover_the_grid() {
        let (consumers, shards) = (3, 9);
        let cursor = FeedCursor::new(consumers, shards);
        let done: Mutex<BTreeSet<(usize, usize)>> = Mutex::new(BTreeSet::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| loop {
                    match cursor.claim() {
                        Claim::Shard { consumer, shard } => {
                            assert!(
                                done.lock().expect("set").insert((consumer, shard)),
                                "unit handed out twice"
                            );
                            cursor.complete(consumer, shard);
                        }
                        Claim::Retry => std::thread::yield_now(),
                        Claim::Done => break,
                    }
                });
            }
        });
        assert_eq!(done.lock().expect("set").len(), consumers * shards);
    }
}
