//! Pass-counted access to a stream of arbitrary items.

use std::cell::Cell;

/// A pass-counted read-only stream over arbitrary items.
///
/// The generic sibling of [`SetStream`](crate::SetStream): the geometric
/// algorithm streams *shapes* (discs, rectangles, triangles) and the
/// communication experiments stream player inputs, neither of which is a
/// `SetSystem`. Semantics are identical — the only access is a counted
/// sequential scan.
#[derive(Debug)]
pub struct ItemStream<'a, T> {
    items: &'a [T],
    passes: Cell<usize>,
}

impl<'a, T> ItemStream<'a, T> {
    /// Wraps a slice of items; the pass counter starts at zero.
    pub fn new(items: &'a [T]) -> Self {
        Self {
            items,
            passes: Cell::new(0),
        }
    }

    /// Number of items in the repository (known without a pass).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Performs one counted sequential scan, yielding `(index, item)`.
    pub fn pass(&self) -> impl Iterator<Item = (u32, &'a T)> {
        self.passes.set(self.passes.get() + 1);
        self.items.iter().enumerate().map(|(i, t)| (i as u32, t))
    }

    /// Number of passes performed so far.
    pub fn passes(&self) -> usize {
        self.passes.get()
    }

    /// Forks an independent handle for a parallel branch.
    pub fn fork(&self) -> ItemStream<'a, T> {
        ItemStream::new(self.items)
    }

    /// Adds the maximum child pass count (parallel accounting).
    pub fn absorb_parallel<I: IntoIterator<Item = usize>>(&self, child_passes: I) {
        let max = child_passes.into_iter().max().unwrap_or(0);
        self.passes.set(self.passes.get() + max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_items_stream_with_counting() {
        let shapes = ["disc", "rect", "tri"];
        let s = ItemStream::new(&shapes);
        assert_eq!(s.len(), 3);
        let seen: Vec<(u32, &&str)> = s.pass().collect();
        assert_eq!(seen[2], (2, &"tri"));
        assert_eq!(s.passes(), 1);
    }

    #[test]
    fn fork_and_absorb() {
        let data = [1, 2, 3];
        let s = ItemStream::new(&data);
        let a = s.fork();
        let _ = a.pass();
        let _ = a.pass();
        let _ = a.pass();
        s.absorb_parallel([a.passes()]);
        assert_eq!(s.passes(), 3);
    }

    #[test]
    fn empty_stream_is_fine() {
        let data: [u8; 0] = [];
        let s = ItemStream::new(&data);
        assert!(s.is_empty());
        assert_eq!(s.pass().count(), 0);
        assert_eq!(s.passes(), 1);
    }
}
