//! Offline drop-in for the subset of `proptest` this workspace uses.
//!
//! The container building this repository has no crates.io access, so
//! this crate reimplements exactly what the test suite needs: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range / tuple /
//! [`Just`] / [`collection::vec`] / [`bool::ANY`] strategies, a tiny
//! [`string::string_regex`] (single character-class patterns only), the
//! [`proptest!`] / `prop_assert*` / [`prop_assume!`] / [`prop_oneof!`]
//! macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate, by design: no shrinking (a failing
//! case panics with its inputs' debug rendering), and the per-test RNG
//! seed is derived deterministically from the test's name, so failures
//! reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

#[doc(hidden)]
pub use rand as __rand;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by [`prop_assume!`]; draw another.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl Strategy for str {
    type Value = String;
    /// Regex-shorthand strategy: `"[a-z]{0,9}" `-style patterns generate
    /// matching strings, as in the real proptest. Panics on patterns the
    /// tiny [`string::string_regex`] parser does not support.
    fn new_value(&self, rng: &mut StdRng) -> String {
        string::string_regex(self)
            .unwrap_or_else(|e| panic!("{}", e.0))
            .new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random_bool(0.5)
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "any value of `T`" strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Uniform choice between boxed alternative strategies; built by
/// [`prop_oneof!`].
pub struct Union<V> {
    alternatives: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps the alternatives; panics if empty.
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        Self { alternatives }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut StdRng) -> V {
        let i = rng.random_range(0..self.alternatives.len());
        self.alternatives[i].new_value(rng)
    }
}

/// Boxes a strategy for [`Union`]; used by the [`prop_oneof!`] expansion.
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Bounds on generated collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for `Vec`s of values from `element`, with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    /// The "any bool" strategy value.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn new_value(&self, rng: &mut StdRng) -> bool {
            rng.random_bool(0.5)
        }
    }
}

/// String strategies.
pub mod string {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Error for unsupported patterns.
    #[derive(Debug)]
    pub struct Error(pub String);

    /// Strategy generating strings for one `[class]{a,b}` pattern.
    #[derive(Debug, Clone)]
    pub struct RegexString {
        /// Inclusive character ranges (a literal is a one-char range).
        ranges: Vec<(char, char)>,
        min: usize,
        max: usize,
    }

    impl RegexString {
        fn draw_char(&self, rng: &mut StdRng) -> char {
            let total: u32 = self
                .ranges
                .iter()
                .map(|&(a, b)| b as u32 - a as u32 + 1)
                .sum();
            let mut pick = rng.random_range(0..total);
            for &(a, b) in &self.ranges {
                let width = b as u32 - a as u32 + 1;
                if pick < width {
                    return char::from_u32(a as u32 + pick).expect("class stays in ASCII");
                }
                pick -= width;
            }
            unreachable!("pick bounded by total width")
        }
    }

    impl Strategy for RegexString {
        type Value = String;
        fn new_value(&self, rng: &mut StdRng) -> String {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.draw_char(rng)).collect()
        }
    }

    /// Tiny `string_regex`: supports the shape `[<class>]{<min>,<max>}`
    /// where the class is literals and `x-y` ranges with `\n \t \r \\
    /// \- \] \[` escapes — which covers every pattern this workspace's
    /// tests use.
    pub fn string_regex(pattern: &str) -> Result<RegexString, Error> {
        let err = || {
            Error(format!(
                "unsupported pattern {pattern:?} (need [class]{{a,b}})"
            ))
        };
        let rest = pattern.strip_prefix('[').ok_or_else(err)?;
        let mut chars = rest.chars();
        let mut class: Vec<char> = Vec::new();
        loop {
            match chars.next().ok_or_else(err)? {
                ']' => break,
                '\\' => class.push(match chars.next().ok_or_else(err)? {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    c @ ('\\' | '-' | ']' | '[') => c,
                    _ => return Err(err()),
                }),
                c => class.push(c),
            }
        }
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut i = 0;
        while i < class.len() {
            // `x-y` only when `-` sits between two chars; edge dashes
            // are literals, matching regex character-class rules.
            if i + 2 < class.len() && class[i + 1] == '-' {
                if class[i] > class[i + 2] {
                    return Err(err());
                }
                ranges.push((class[i], class[i + 2]));
                i += 3;
            } else {
                ranges.push((class[i], class[i]));
                i += 1;
            }
        }
        if ranges.is_empty() {
            return Err(err());
        }
        let quant = chars.as_str();
        let inner = quant
            .strip_prefix('{')
            .and_then(|q| q.strip_suffix('}'))
            .ok_or_else(err)?;
        let (min, max) = inner.split_once(',').ok_or_else(err)?;
        let min: usize = min.parse().map_err(|_| err())?;
        let max: usize = max.parse().map_err(|_| err())?;
        if min > max {
            return Err(err());
        }
        Ok(RegexString { ranges, min, max })
    }
}

/// Deterministic per-test RNG seed: FNV-1a over the test's full name,
/// so failures reproduce run to run but differ test to test.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Everything a `proptest!`-using test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
    /// The `prop` module alias the real prelude exports.
    pub mod prop {
        pub use crate::{bool, collection, string};
    }
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @with_config ($crate::ProptestConfig::default())
            $(#[$meta])* fn $($rest)*
        );
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                );
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(100),
                        "too many prop_assume! rejections in {}",
                        stringify!($name),
                    );
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}", stringify!($name), accepted, msg)
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` that fails the surrounding property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Vetoes the current case (drawn again) instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let strat = (0u32..10, crate::collection::vec(5usize..8, 2..5));
        for _ in 0..100 {
            let (x, v) = crate::Strategy::new_value(&strat, &mut rng);
            assert!(x < 10);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| (5..8).contains(&e)));
        }
    }

    #[test]
    fn string_regex_supports_class_repeat() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let strat = crate::string::string_regex("[ -~]{0,30}").unwrap();
        for _ in 0..100 {
            let s = crate::Strategy::new_value(&strat, &mut rng);
            assert!(s.len() <= 30);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        assert!(crate::string::string_regex("[a-z]+").is_err());
    }

    #[test]
    fn oneof_map_and_flat_map_compose() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let strat = prop_oneof![
            (0usize..4).prop_map(|x| x * 2),
            Just(99usize),
            (1usize..3).prop_flat_map(|n| n..n + 1),
        ];
        for _ in 0..200 {
            let v = crate::Strategy::new_value(&strat, &mut rng);
            assert!(v == 99 || v < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(a in 0u64..100, (b, c) in (0u32..5, any::<bool>())) {
            prop_assume!(a != 13);
            prop_assert!(a < 100);
            prop_assert_eq!(b as u64 + a, a + b as u64);
            let _ = c;
        }
    }
}
