//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! The container building this repository has no crates.io access, so
//! this crate provides just enough to keep the `benches/` targets
//! compiling and producing useful wall-clock numbers: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `bench_function` /
//! `bench_with_input` / `finish`, [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is honest but simple: each benchmark runs a short warm-up,
//! then `sample_size` timed batches, and prints the per-iteration
//! median, minimum, and maximum. There are no plots, no statistical
//! regression, and no baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            batch: 1,
        };
        // Warm-up pass: also calibrates the batch size so fast bodies
        // are timed in batches long enough for the clock to resolve.
        f(&mut b);
        b.calibrate();
        b.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        b.report(&self.name, &id.to_string());
        self
    }

    /// Times one benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; call [`iter`](Bencher::iter) with the
/// code to time.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    batch: u32,
}

impl Bencher {
    /// Times `routine`, recording one sample per call (batched so that
    /// sub-microsecond routines still measure above clock resolution).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / self.batch);
    }

    /// Grows the batch size until one batch takes ≥ ~1 ms.
    fn calibrate(&mut self) {
        if let Some(&warm) = self.samples.last() {
            let per_iter = warm.as_nanos().max(1);
            self.batch = (1_000_000 / per_iter).clamp(1, 10_000) as u32;
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id:<40} (no samples — did the body call iter()?)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{id:<40} median {:>12?}  (min {:?}, max {:?}, {} samples)",
            median,
            min,
            max,
            sorted.len()
        );
    }
}

/// Names a benchmark as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds the id `{function}/{parameter}`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Groups benchmark functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run_bodies() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(runs >= 3, "bench body must actually run");
    }
}
