//! Offline drop-in for the subset of the `rand` crate this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`RngExt::random_range`] / [`RngExt::random_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The container building this repository has no crates.io access, so
//! this crate exists to keep the workspace self-contained. The
//! generator is xoshiro256** seeded through SplitMix64 — deterministic
//! for a given seed, which is all the algorithms and tests rely on
//! (nothing here needs cryptographic quality, and nothing promises
//! stream-compatibility with the real `rand::rngs::StdRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit output (upper half of [`next_u64`](RngCore::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly as the xoshiro reference code recommends.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A range that knows how to draw a uniform sample of itself.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` by widening multiply (Lemire); the
/// tiny residual bias is irrelevant at test scale.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start + (self.end - self.start) * unit as $t;
                // `start + span * unit` can round up to `end` (always
                // possible for f32 via the f64→f32 cast, and at the
                // 2⁻⁵³ tail for f64); keep the half-open contract.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                // Closed float intervals are sampled like half-open
                // ones; the endpoint has measure zero anyway.
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The convenience methods every call site uses (`rand` 0.9 spells this
/// trait `Rng`; newer previews spell it `RngExt` — both names work here).
pub trait RngExt: RngCore {
    /// Uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Re-export under the classic name as well.
pub use RngExt as Rng;

/// Sequence helpers.
pub mod seq {
    use crate::{RngCore, RngExt};

    /// In-place uniform shuffling of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
