//! Ring-buffer wraparound: the journal retains the most recent
//! `JOURNAL_CAPACITY` events and `trace` still replays in seq order
//! across the wrap point.

use sc_telemetry::{event, journal_stats, trace, EventKind, JOURNAL_CAPACITY};

#[test]
fn journal_wraps_and_keeps_the_newest_events() {
    sc_telemetry::reset();
    sc_telemetry::set_enabled(true);

    // Overfill by half a ring; query id = event ordinal so the oldest
    // retained event is identifiable.
    let total = JOURNAL_CAPACITY + JOURNAL_CAPACITY / 2;
    for i in 0..total {
        event(EventKind::EpochScan, i as u64, 1, 1, 1);
    }
    let (seq, retained) = journal_stats();
    assert_eq!(seq, total as u64);
    assert_eq!(retained, JOURNAL_CAPACITY);

    // The first half ring was overwritten…
    assert!(trace(0).is_empty());
    assert!(trace((JOURNAL_CAPACITY / 2 - 1) as u64).is_empty());
    // …and the newest event survives with its original seq.
    let newest = trace((total - 1) as u64);
    assert_eq!(newest.len(), 1);
    assert_eq!(newest[0].seq, (total - 1) as u64);

    // A multi-event query written across the wrap stays ordered.
    for _ in 0..3 {
        event(EventKind::EpochScan, 424_242, 1, 2, 1);
    }
    let t = trace(424_242);
    assert_eq!(t.len(), 3);
    assert!(t.windows(2).all(|w| w[0].seq < w[1].seq));

    sc_telemetry::set_enabled(false);
    sc_telemetry::reset();
}
