//! Named process-wide counters, sharded across cache-line-padded cells.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of shards per counter. Eight 64-byte lines cover the worker
/// pools this workspace runs (worker count tracks CPU cores; threads
/// hash onto shards, so collisions only cost an occasionally shared
/// line, never a wrong count).
const SHARDS: usize = 8;

/// One cache line per shard so two worker threads bumping the same
/// counter never write the same line.
#[repr(align(64))]
#[derive(Default)]
struct Cell(AtomicU64);

/// A process-wide monotonic counter.
///
/// `add` is wait-free: one relaxed gate load plus one relaxed
/// fetch-add on this thread's shard. `value` sums the shards; it is
/// exact once writers are quiescent and monotonically fresh while they
/// are not (a concurrent reader may miss in-flight increments — fine
/// for a stats scrape).
pub struct Counter {
    cells: [Cell; SHARDS],
}

/// Index of the calling thread's shard: threads draw a ticket from a
/// global sequence once, then reuse it, striping the pool round-robin.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

impl Counter {
    fn new() -> Self {
        Self {
            cells: Default::default(),
        }
    }

    /// Adds `n`, if telemetry is enabled; a no-op (one relaxed load)
    /// otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.cells[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one. See [`Counter::add`].
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value: the sum of every shard.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    fn reset(&self) {
        for c in &self.cells {
            c.0.store(0, Ordering::Relaxed);
        }
    }
}

type Registry = Mutex<BTreeMap<&'static str, &'static Counter>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the process-wide counter named `name`, registering it on
/// first use. The returned reference is `'static`; call sites should
/// look a counter up once (e.g. behind a `OnceLock`) and keep the
/// reference — the lookup takes the registry lock, `add` never does.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = registry().lock().expect("telemetry counter registry");
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Every registered counter as `(name, current value)`, name-sorted.
pub fn registered_counters() -> Vec<(&'static str, u64)> {
    let map = registry().lock().expect("telemetry counter registry");
    map.iter().map(|(&name, c)| (name, c.value())).collect()
}

pub(crate) fn reset_all() {
    let map = registry().lock().expect("telemetry counter registry");
    for c in map.values() {
        c.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counts_across_threads_and_respects_gate() {
        let _g = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(false);
        let c = counter("test_gated_total");
        let before = c.value();
        c.add(5);
        assert_eq!(c.value(), before, "disabled counter must not move");

        crate::set_enabled(true);
        let base = c.value();
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value() - base, 4000);
        crate::set_enabled(was);
    }

    #[test]
    fn registry_is_name_stable() {
        let a = counter("test_identity_total") as *const Counter;
        let b = counter("test_identity_total") as *const Counter;
        assert_eq!(a, b);
        assert!(registered_counters()
            .iter()
            .any(|(n, _)| *n == "test_identity_total"));
    }
}
