//! Process-wide, lock-cheap instrumentation for the set-cover service.
//!
//! The crate is a leaf: no dependencies, `std` only, and every hot-path
//! entry point is guarded by a single relaxed [`AtomicBool`] so that an
//! un-enabled process pays one relaxed load per instrumentation site and
//! nothing else. Three substrates live here:
//!
//! * **Counters** ([`counter`]) — named, process-wide monotonic
//!   counters. Each counter is sharded across cache-line-padded atomic
//!   cells keyed by a per-thread shard id, so concurrent workers never
//!   contend on one line; [`Counter::value`] sums the shards.
//! * **Stage histograms** ([`stage`]) — atomic log₂-µs histograms with
//!   the exact bucket layout of the service's `LatencyHistogram`
//!   (40 buckets, bucket 0 sub-µs, bucket *i* = `[2^(i-1), 2^i)` µs).
//!   [`StageHistogram::span`] returns a drop-guard that records the
//!   elapsed time of a pipeline stage; [`HistogramSnapshot::delta`]
//!   subtracts an earlier snapshot for per-window percentiles.
//! * **Query journal** ([`event`], [`trace`]) — a fixed-capacity
//!   ring buffer of structured query-lifecycle events
//!   (`submitted/admitted/aligned_join@pass/epoch_scan/retired` …)
//!   tagged with query id, repository generation, epoch, and pass
//!   index. [`trace`] replays one query's timeline in order.
//!
//! Exposition is text-first: [`stats_line`] renders one `key=value`
//! line (counters plus per-stage p50/p90/p99), [`prometheus`] renders
//! a Prometheus-style `name value` listing, and [`reset`] zeroes
//! everything for A/B overhead measurements (experiment E22).
//!
//! Telemetry is observational only: nothing in this crate feeds back
//! into scheduling decisions, so enabling it cannot perturb the
//! bit-identical equivalence guarantees of the layers it watches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counters;
mod expose;
mod histogram;
mod journal;

pub use counters::{counter, registered_counters, Counter};
pub use expose::{prometheus, stats_line};
pub use histogram::{
    registered_stages, stage, HistogramSnapshot, SpanGuard, StageHistogram, BUCKETS,
};
pub use journal::{event, journal_stats, trace, EventKind, QueryEvent, JOURNAL_CAPACITY};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The single process-wide gate. Relaxed ordering is deliberate:
/// instrumentation sites tolerate observing a stale value for a few
/// loads around a toggle, and a relaxed load is the cheapest possible
/// "is anyone watching?" check.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Returns whether telemetry collection is enabled.
///
/// Every recording entry point in this crate checks this gate itself,
/// so call sites may record unconditionally; check it manually only to
/// skip *preparing* an observation (e.g. reading a clock).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Microseconds since the process's telemetry clock started (first use).
pub(crate) fn now_us() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    let start = START.get_or_init(Instant::now);
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Zeroes every registered counter and stage histogram and clears the
/// query journal. The enable gate is left as-is. Intended for tests and
/// the E22 overhead A/B, which measures enabled-vs-disabled phases in
/// one process.
pub fn reset() {
    counters::reset_all();
    histogram::reset_all();
    journal::reset();
}

/// Serializes callers that flip or reset process-wide telemetry state
/// (the gate, the journal, registry-wide [`reset`]s): everything in
/// this crate is global, so tests — in this crate or any downstream
/// crate's parallel test binary — that enable telemetry and assert on
/// its contents must hold this while they do. Poisoning is ignored: a
/// panicked holder leaves no state worth protecting beyond what the
/// next holder resets anyway.
pub fn test_hold() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
pub(crate) use test_hold as test_guard;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_toggles() {
        let _g = test_guard();
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }

    #[test]
    fn clock_is_monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
