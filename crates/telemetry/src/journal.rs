//! Fixed-capacity ring-buffer journal of query-lifecycle events.

use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Ring capacity in events. At the nightly load matrix's rates
/// (~10⁴ queries × ≤7 events) this holds the most recent few load
/// waves; the journal is a flight recorder, not an archive.
pub const JOURNAL_CAPACITY: usize = 65_536;

/// What happened to a query at one point of its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The query entered the service (`ServiceHandle::submit`).
    Submitted,
    /// Admitted as a fresh job into an epoch group.
    Admitted,
    /// Answered from the outcome cache in zero scans.
    CacheHit,
    /// Attached as a follower to an identical in-flight job.
    Coalesced,
    /// Spliced into a *later* pass of an in-flight epoch group
    /// (`pass` carries the group pass it joined at).
    AlignedJoin,
    /// Rode one physical scan of an epoch (`pass` carries the group
    /// pass index of that scan).
    EpochScan,
    /// Retired: outcome delivered (and fanned out to any followers).
    Retired,
}

impl EventKind {
    /// Stable lower-case wire name (used by `!trace` lines).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Submitted => "submitted",
            EventKind::Admitted => "admitted",
            EventKind::CacheHit => "cache_hit",
            EventKind::Coalesced => "coalesced",
            EventKind::AlignedJoin => "aligned_join",
            EventKind::EpochScan => "epoch_scan",
            EventKind::Retired => "retired",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEvent {
    /// Global sequence number (monotonic across the whole journal).
    pub seq: u64,
    /// Microseconds on the process telemetry clock.
    pub at_us: u64,
    /// Query id (the service's ticket id).
    pub query: u64,
    /// Repository generation serving the query.
    pub generation: u64,
    /// Scan-epoch ordinal within the run (0 when not yet in an epoch).
    pub epoch: u64,
    /// Group pass index (1-based; 0 when not applicable).
    pub pass: u32,
    /// What happened.
    pub kind: EventKind,
}

impl QueryEvent {
    /// One `!trace` line: `seq=.. t_us=.. event=.. query=.. gen=..
    /// epoch=.. pass=..`.
    pub fn protocol_line(&self) -> String {
        format!(
            "seq={} t_us={} event={} query={} gen={} epoch={} pass={}",
            self.seq, self.at_us, self.kind, self.query, self.generation, self.epoch, self.pass,
        )
    }
}

struct Ring {
    buf: Vec<QueryEvent>,
    /// Next write position (buf is a circular buffer once full).
    head: usize,
    /// Next sequence number == total events ever recorded.
    seq: u64,
}

impl Ring {
    fn push(&mut self, mut ev: QueryEvent) {
        ev.seq = self.seq;
        self.seq += 1;
        if self.buf.len() < JOURNAL_CAPACITY {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % JOURNAL_CAPACITY;
    }
}

fn journal() -> &'static Mutex<Ring> {
    static JOURNAL: OnceLock<Mutex<Ring>> = OnceLock::new();
    JOURNAL.get_or_init(|| {
        Mutex::new(Ring {
            buf: Vec::new(),
            head: 0,
            seq: 0,
        })
    })
}

/// Records one query-lifecycle event, if telemetry is enabled. The
/// critical section is a few word writes; the lock is uncontended
/// except under extreme event rates.
pub fn event(kind: EventKind, query: u64, generation: u64, epoch: u64, pass: u32) {
    if !crate::enabled() {
        return;
    }
    let at_us = crate::now_us();
    let mut ring = journal().lock().expect("telemetry journal");
    ring.push(QueryEvent {
        seq: 0,
        at_us,
        query,
        generation,
        epoch,
        pass,
        kind,
    });
}

/// Replays the retained timeline of `query`, oldest first.
pub fn trace(query: u64) -> Vec<QueryEvent> {
    let ring = journal().lock().expect("telemetry journal");
    let mut out: Vec<QueryEvent> = ring
        .buf
        .iter()
        .filter(|ev| ev.query == query)
        .copied()
        .collect();
    out.sort_by_key(|ev| ev.seq);
    out
}

/// `(events ever recorded, events currently retained)`.
pub fn journal_stats() -> (u64, usize) {
    let ring = journal().lock().expect("telemetry journal");
    (ring.seq, ring.buf.len())
}

pub(crate) fn reset() {
    let mut ring = journal().lock().expect("telemetry journal");
    ring.buf.clear();
    ring.head = 0;
    ring.seq = 0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_replays_one_query_in_order() {
        let _g = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(true);
        reset();
        event(EventKind::Submitted, 7, 1, 0, 0);
        event(EventKind::Submitted, 8, 1, 0, 0);
        event(EventKind::Admitted, 7, 1, 3, 1);
        event(EventKind::EpochScan, 7, 1, 3, 1);
        event(EventKind::Retired, 7, 1, 3, 2);
        let t = trace(7);
        assert_eq!(t.len(), 4);
        assert!(t.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(t[0].kind, EventKind::Submitted);
        assert_eq!(t[3].kind, EventKind::Retired);
        assert!(t[2].protocol_line().contains("event=epoch_scan"));
        let (total, retained) = journal_stats();
        assert_eq!(total, 5);
        assert_eq!(retained, 5);
        reset();
        crate::set_enabled(was);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let _g = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(false);
        reset();
        event(EventKind::Submitted, 99, 0, 0, 0);
        assert!(trace(99).is_empty());
        crate::set_enabled(was);
    }
}
