//! Atomic log₂-µs stage histograms and their plain-data snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of log₂ buckets — the same layout as the service's
/// `LatencyHistogram`: bucket 0 holds sub-µs durations, bucket `i ≥ 1`
/// holds `[2^(i-1), 2^i)` µs, bucket 39 absorbs overflow (≥ 2³⁸ µs).
pub const BUCKETS: usize = 40;

pub(crate) fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// A lock-free histogram of stage durations, recorded in microseconds.
///
/// Writers are pipeline stages (one relaxed fetch-add per bucket plus
/// count/sum bookkeeping); readers take a [`snapshot`] and do all math
/// on the plain-data copy. A snapshot taken while writers are active
/// may be mid-observation skewed by a few events — acceptable for a
/// live stats scrape, never for correctness.
///
/// [`snapshot`]: StageHistogram::snapshot
pub struct StageHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl StageHistogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one duration in microseconds, if telemetry is enabled.
    #[inline]
    pub fn record_us(&self, us: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one [`Duration`], if telemetry is enabled.
    #[inline]
    pub fn record(&self, d: Duration) {
        if !crate::enabled() {
            return;
        }
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Starts a span over this stage: the returned guard records the
    /// elapsed time into the histogram when dropped. When telemetry is
    /// disabled at span start, the guard is inert (no clock read at
    /// either end).
    #[inline]
    pub fn span(&'static self) -> SpanGuard {
        SpanGuard {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
    }
}

/// Drop-guard returned by [`StageHistogram::span`]; records the span's
/// elapsed wall-clock on drop.
pub struct SpanGuard {
    hist: &'static StageHistogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist
                .record_us(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
    }
}

/// A plain-data histogram state: subtractable, percentile-extractable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (log₂-µs layout, see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations in microseconds.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The observations recorded since `earlier` was taken: `self`
    /// minus `earlier`, bucket-wise (saturating, so a reset between
    /// the two snapshots degrades to the later snapshot rather than
    /// wrapping).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
        }
    }

    /// The `p`-th percentile (`0 < p ≤ 100`) in microseconds, linearly
    /// interpolated inside the terminal bucket: the rank's position
    /// within its bucket maps proportionally between the bucket's lower
    /// and upper edge (a rank at the very end of a bucket lands exactly
    /// on the upper edge). Zero on an empty snapshot.
    pub fn percentile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = 1u64 << i;
                let within = rank - seen; // 1..=c
                return lower + ((upper - lower) * within).div_ceil(c);
            }
            seen += c;
        }
        1u64 << (BUCKETS - 1)
    }

    /// Mean of the recorded durations in microseconds (exact, not
    /// bucketed).
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// One-line `p50/p90/p99 (mean, n)` summary in milliseconds.
    pub fn summary(&self) -> String {
        format!(
            "p50≤{:.1}ms p90≤{:.1}ms p99≤{:.1}ms (mean {:.1}ms, n={})",
            self.percentile_us(50.0) as f64 / 1e3,
            self.percentile_us(90.0) as f64 / 1e3,
            self.percentile_us(99.0) as f64 / 1e3,
            self.mean_us() as f64 / 1e3,
            self.count,
        )
    }
}

type Registry = Mutex<BTreeMap<&'static str, &'static StageHistogram>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the process-wide stage histogram named `name`, registering
/// it on first use. Like [`counter`](crate::counter), look it up once
/// and keep the `'static` reference.
pub fn stage(name: &'static str) -> &'static StageHistogram {
    let mut map = registry().lock().expect("telemetry stage registry");
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(StageHistogram::new())))
}

/// Every registered stage as `(name, snapshot)`, name-sorted.
pub fn registered_stages() -> Vec<(&'static str, HistogramSnapshot)> {
    let map = registry().lock().expect("telemetry stage registry");
    map.iter().map(|(&name, h)| (name, h.snapshot())).collect()
}

pub(crate) fn reset_all() {
    let map = registry().lock().expect("telemetry stage registry");
    for h in map.values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_and_interpolated_percentiles() {
        let _g = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(true);
        let h = stage("test_stage");
        h.reset();
        for _ in 0..3 {
            h.record_us(10); // bucket [8, 16)
        }
        let early = h.snapshot();
        h.record_us(12);
        h.record_us(50_000); // bucket [32768, 65536)
        let late = h.snapshot();
        let window = late.delta(&early);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum_us, 50_012);
        // p50 of the window: the sole observation of bucket [8, 16)
        // interpolates to its upper edge.
        assert_eq!(window.percentile_us(50.0), 16);
        // p100 lands on the terminal bucket's upper edge.
        assert_eq!(window.percentile_us(100.0), 65_536);
        h.reset();
        crate::set_enabled(was);
    }

    #[test]
    fn percentiles_interpolate_inside_a_bucket() {
        let mut s = HistogramSnapshot::default();
        s.buckets[4] = 4; // four observations in [8, 16) µs
        s.count = 4;
        s.sum_us = 40;
        // Ranks 1..=4 spread proportionally across the bucket.
        assert_eq!(s.percentile_us(25.0), 10);
        assert_eq!(s.percentile_us(50.0), 12);
        assert_eq!(s.percentile_us(75.0), 14);
        assert_eq!(s.percentile_us(100.0), 16);
    }

    #[test]
    fn span_guard_records_on_drop() {
        let _g = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(true);
        let h = stage("test_span_stage");
        h.reset();
        let before = h.snapshot().count;
        {
            let _g = h.span();
        }
        assert_eq!(h.snapshot().count, before + 1);

        crate::set_enabled(false);
        {
            let _g = h.span();
        }
        assert_eq!(h.snapshot().count, before + 1, "disabled span is inert");
        crate::set_enabled(true);
        h.reset();
        crate::set_enabled(was);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.percentile_us(99.0), 0);
        assert_eq!(s.mean_us(), 0);
    }
}
