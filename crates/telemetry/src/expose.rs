//! Text expositions: the one-line `!stats` surface and the
//! Prometheus-style `!metrics` listing.

use crate::{journal_stats, registered_counters, registered_stages};

/// One `key=value` line: every registered counter (name-sorted), the
/// journal totals, then per-stage observation counts and interpolated
/// p50/p90/p99 in microseconds — e.g.
/// `sc_cache_hits_total=3 … journal_events=41 journal_retained=41
/// stage_execution_n=12 stage_execution_p50_us=847 …`.
pub fn stats_line() -> String {
    let mut parts: Vec<String> = Vec::new();
    parts.push(format!("enabled={}", u8::from(crate::enabled())));
    for (name, value) in registered_counters() {
        parts.push(format!("{name}={value}"));
    }
    let (events, retained) = journal_stats();
    parts.push(format!("journal_events={events}"));
    parts.push(format!("journal_retained={retained}"));
    for (name, snap) in registered_stages() {
        parts.push(format!("stage_{name}_n={}", snap.count));
        for p in [50u32, 90, 99] {
            parts.push(format!(
                "stage_{name}_p{p}_us={}",
                snap.percentile_us(f64::from(p))
            ));
        }
    }
    parts.join(" ")
}

/// Prometheus-style text exposition: one `name value` line per sample.
/// Counters keep their registered names; each stage histogram expands
/// to `sc_stage_<name>_us_{count,sum,p50,p90,p99}`; the journal and
/// the enable gate ride along as gauges.
pub fn prometheus() -> Vec<String> {
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!(
        "sc_telemetry_enabled {}",
        u8::from(crate::enabled())
    ));
    for (name, value) in registered_counters() {
        lines.push(format!("{name} {value}"));
    }
    let (events, retained) = journal_stats();
    lines.push(format!("sc_journal_events_total {events}"));
    lines.push(format!("sc_journal_retained {retained}"));
    for (name, snap) in registered_stages() {
        lines.push(format!("sc_stage_{name}_us_count {}", snap.count));
        lines.push(format!("sc_stage_{name}_us_sum {}", snap.sum_us));
        for p in [50u32, 90, 99] {
            lines.push(format!(
                "sc_stage_{name}_us_p{p} {}",
                snap.percentile_us(f64::from(p))
            ));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expositions_cover_counters_and_stages() {
        let _g = crate::test_guard();
        let was = crate::enabled();
        crate::set_enabled(true);
        crate::counter("test_expose_total").add(2);
        crate::stage("test_expose_stage").record_us(100);

        let line = stats_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("test_expose_total="));
        assert!(line.contains("stage_test_expose_stage_p99_us="));

        let metrics = prometheus();
        assert!(metrics.iter().any(|l| l.starts_with("test_expose_total ")));
        assert!(metrics
            .iter()
            .any(|l| l.starts_with("sc_stage_test_expose_stage_us_p50 ")));
        // Every line is exactly `name value`.
        for l in &metrics {
            let mut it = l.split(' ');
            assert!(it.next().is_some_and(|n| !n.is_empty()));
            assert!(it.next().is_some_and(|v| v.parse::<u64>().is_ok()));
            assert!(it.next().is_none(), "line has extra fields: {l}");
        }
        crate::set_enabled(was);
    }
}
