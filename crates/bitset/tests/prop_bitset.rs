//! Property-based tests: the bitset algebra must agree with a reference
//! model built on `std::collections::BTreeSet`.

use proptest::prelude::*;
use sc_bitset::{BitSet, HeapWords, SparseSet};
use std::collections::BTreeSet;

const UNIVERSE: usize = 300;

fn elem() -> impl Strategy<Value = u32> {
    0..UNIVERSE as u32
}

fn elem_vec() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(elem(), 0..64)
}

fn model(v: &[u32]) -> BTreeSet<u32> {
    v.iter().copied().collect()
}

proptest! {
    #[test]
    fn union_matches_model(a in elem_vec(), b in elem_vec()) {
        let mut x = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let y = BitSet::from_iter(UNIVERSE, b.iter().copied());
        x.union_with(&y);
        let want: Vec<u32> = model(&a).union(&model(&b)).copied().collect();
        prop_assert_eq!(x.to_vec(), want);
    }

    #[test]
    fn intersection_matches_model(a in elem_vec(), b in elem_vec()) {
        let mut x = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let y = BitSet::from_iter(UNIVERSE, b.iter().copied());
        let count = x.intersection_count(&y);
        x.intersect_with(&y);
        let want: Vec<u32> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(count, want.len());
        prop_assert_eq!(x.to_vec(), want);
    }

    #[test]
    fn difference_matches_model(a in elem_vec(), b in elem_vec()) {
        let mut x = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let y = BitSet::from_iter(UNIVERSE, b.iter().copied());
        let count = x.difference_count(&y);
        x.difference_with(&y);
        let want: Vec<u32> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(count, want.len());
        prop_assert_eq!(x.to_vec(), want);
    }

    #[test]
    fn disjoint_and_subset_match_model(a in elem_vec(), b in elem_vec()) {
        let x = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let y = BitSet::from_iter(UNIVERSE, b.iter().copied());
        let (ma, mb) = (model(&a), model(&b));
        prop_assert_eq!(x.is_disjoint(&y), ma.is_disjoint(&mb));
        prop_assert_eq!(x.is_subset(&y), ma.is_subset(&mb));
    }

    #[test]
    fn ones_sorted_and_complete(a in elem_vec()) {
        let x = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let got = x.to_vec();
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
        let want: Vec<u32> = model(&a).into_iter().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(x.first(), x.ones().next());
    }

    #[test]
    fn sparse_dense_agree(a in elem_vec(), b in elem_vec()) {
        let dense = BitSet::from_iter(UNIVERSE, b.iter().copied());
        let sparse = SparseSet::from_unsorted(a.clone());

        let proj = sparse.intersect_dense(&dense);
        let want: Vec<u32> = model(&a).intersection(&model(&b)).copied().collect();
        prop_assert_eq!(proj.as_slice(), &want[..]);
        prop_assert_eq!(sparse.intersection_count_dense(&dense), want.len());

        let mut sub = sparse.clone();
        sub.subtract_dense(&dense);
        let want_sub: Vec<u32> = model(&a).difference(&model(&b)).copied().collect();
        prop_assert_eq!(sub.as_slice(), &want_sub[..]);
    }

    #[test]
    fn sparse_subset_matches_model(a in elem_vec(), b in elem_vec()) {
        let x = SparseSet::from_unsorted(a.clone());
        let y = SparseSet::from_unsorted(b.clone());
        prop_assert_eq!(x.is_subset(&y), model(&a).is_subset(&model(&b)));
    }

    #[test]
    fn intersection_count_slice_matches_per_element_loop(a in elem_vec(), b in elem_vec()) {
        let s = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let mut sorted = b.clone();
        sorted.sort_unstable();
        // The counting kernel contract requires strictly ascending
        // (deduplicated) ids: per-word masks count each bit once.
        sorted.dedup();
        let want = sorted.iter().filter(|&&e| s.contains(e)).count();
        prop_assert_eq!(s.intersection_count_slice(&sorted), want);
    }

    #[test]
    fn remove_sorted_slice_matches_per_element_loop(a in elem_vec(), b in elem_vec()) {
        let mut batch = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let mut loop_removed = batch.clone();
        let mut sorted = b.clone();
        sorted.sort_unstable();
        batch.remove_sorted_slice(&sorted);
        for &e in &sorted {
            loop_removed.remove(e);
        }
        prop_assert_eq!(batch.to_vec(), loop_removed.to_vec());
    }

    #[test]
    fn clear_and_set_from_sorted_matches_from_iter(a in elem_vec(), b in elem_vec()) {
        let mut reused = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let mut sorted = b.clone();
        sorted.sort_unstable();
        sorted.dedup();
        reused.clear_and_set_from_sorted(&sorted);
        let fresh = BitSet::from_iter(UNIVERSE, sorted.iter().copied());
        prop_assert_eq!(&reused, &fresh);
        prop_assert_eq!(reused.heap_words(), fresh.heap_words(), "reuse must not grow the footprint");
    }

    #[test]
    fn intersect_sorted_into_matches_filter_loop(a in elem_vec(), b in elem_vec(), stale in elem_vec()) {
        let s = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let mut sorted = b.clone();
        sorted.sort_unstable();
        sorted.dedup();
        // The output buffer starts with stale junk that must vanish.
        let mut out = stale.clone();
        s.intersect_sorted_into(&sorted, &mut out);
        let want: Vec<u32> = sorted.iter().copied().filter(|&e| s.contains(e)).collect();
        prop_assert_eq!(out, want);
    }

    #[test]
    fn insert_remove_maintain_count(ops in proptest::collection::vec((elem(), any::<bool>()), 0..128)) {
        let mut x = BitSet::new(UNIVERSE);
        let mut m: BTreeSet<u32> = BTreeSet::new();
        for (e, add) in ops {
            if add {
                prop_assert_eq!(x.insert(e), m.insert(e));
            } else {
                prop_assert_eq!(x.remove(e), m.remove(&e));
            }
            prop_assert_eq!(x.count(), m.len());
        }
    }
}
