//! Parity of the dispatched (possibly vector) kernels against the
//! portable scalar baselines in `sc_bitset::kernels::scalar`.
//!
//! On an AVX2 machine the dispatched entry points run the 256-bit
//! paths, so every case here pins vector == scalar bit-for-bit; on
//! other machines (or under `SC_BITSET_FORCE_SCALAR=1`, the CI
//! fallback lane) both sides run scalar and the suite still checks the
//! kernels against the `BTreeSet` model through `BitSet`.
//!
//! Word-boundary edge cases get dedicated deterministic tests: ids at
//! 0/63/64/127/128, whole saturated words, fragments longer than the
//! kernels' internal run buffer, and the 4-word vector chunk tails.

use proptest::prelude::*;
use sc_bitset::{kernels, BitSet};

const UNIVERSE: usize = 2048; // 32 words: several vector chunks + tail

fn sorted_ids() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..UNIVERSE as u32, 0..256).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn word_vec() -> impl Strategy<Value = Vec<u64>> {
    // Length varies so vector chunk counts and scalar tails both occur.
    (0usize..40).prop_flat_map(|len| proptest::collection::vec(any::<u64>(), len..=len))
}

type BitwiseKernel = fn(&mut [u64], &[u64]);

fn bitmap_words() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), UNIVERSE / 64..=UNIVERSE / 64)
}

proptest! {
    #[test]
    fn popcounts_match_scalar(a in word_vec()) {
        prop_assert_eq!(kernels::popcount(&a), kernels::scalar::popcount(&a));
    }

    #[test]
    fn pair_popcounts_match_scalar(a in word_vec()) {
        // Derive b from a so lengths agree without a dependent strategy.
        let b: Vec<u64> = a.iter().map(|w| w.rotate_left(17) ^ 0x5555_5555_5555_5555).collect();
        prop_assert_eq!(kernels::and_popcount(&a, &b), kernels::scalar::and_popcount(&a, &b));
        prop_assert_eq!(kernels::andnot_popcount(&a, &b), kernels::scalar::andnot_popcount(&a, &b));
    }

    #[test]
    fn bitwise_ops_match_scalar(a in word_vec()) {
        let b: Vec<u64> = a.iter().map(|w| w.rotate_right(29) ^ 0x0f0f_0f0f_0f0f_0f0f).collect();
        let pairs: [(BitwiseKernel, BitwiseKernel); 3] = [
            (kernels::or_into, kernels::scalar::or_into),
            (kernels::and_into, kernels::scalar::and_into),
            (kernels::andnot_into, kernels::scalar::andnot_into),
        ];
        for (dispatched, reference) in pairs {
            let mut x = a.clone();
            let mut y = a.clone();
            dispatched(&mut x, &b);
            reference(&mut y, &b);
            prop_assert_eq!(&x, &y);
        }
    }

    #[test]
    fn count_sorted_matches_scalar_and_model(words in bitmap_words(), elems in sorted_ids()) {
        let got = kernels::intersection_count_sorted(&words, &elems);
        prop_assert_eq!(got, kernels::scalar::intersection_count_sorted(&words, &elems));
        let model = elems
            .iter()
            .filter(|&&e| words[(e >> 6) as usize] >> (e & 63) & 1 == 1)
            .count();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn intersect_sorted_into_matches_scalar_and_model(words in bitmap_words(), elems in sorted_ids()) {
        let mut got = vec![99; 3]; // stale content must be cleared
        kernels::intersect_sorted_into(&words, &elems, &mut got);
        let mut reference = Vec::new();
        kernels::scalar::intersect_sorted_into(&words, &elems, &mut reference);
        prop_assert_eq!(&got, &reference);
        let model: Vec<u32> = elems
            .iter()
            .copied()
            .filter(|&e| words[(e >> 6) as usize] >> (e & 63) & 1 == 1)
            .collect();
        prop_assert_eq!(got, model);
    }

    #[test]
    fn mutating_kernels_match_scalar(words in bitmap_words(), elems in sorted_ids()) {
        let mut removed = words.clone();
        let mut removed_ref = words.clone();
        kernels::remove_sorted(&mut removed, &elems);
        kernels::scalar::remove_sorted(&mut removed_ref, &elems);
        prop_assert_eq!(removed, removed_ref);

        let mut inserted = words.clone();
        let mut inserted_ref = words;
        kernels::insert_sorted(&mut inserted, &elems);
        kernels::scalar::insert_sorted(&mut inserted_ref, &elems);
        prop_assert_eq!(inserted, inserted_ref);
    }

    #[test]
    fn bitset_slice_kernels_match_model(a in sorted_ids(), b in sorted_ids()) {
        // End-to-end through BitSet: whatever backend is active must
        // agree with the per-element reference loops.
        let s = BitSet::from_iter(UNIVERSE, a.iter().copied());
        let want_count = b.iter().filter(|&&e| s.contains(e)).count();
        prop_assert_eq!(s.intersection_count_slice(&b), want_count);

        let mut gathered = Vec::new();
        s.intersect_sorted_into(&b, &mut gathered);
        let want: Vec<u32> = b.iter().copied().filter(|&e| s.contains(e)).collect();
        prop_assert_eq!(gathered, want);
    }
}

/// Ids packed around every word boundary plus saturated full words —
/// the masks exercise single-bit, partial, and all-ones cases, and the
/// trailing dense block is long enough to overflow the kernels'
/// internal fragment buffer (32 words) mid-run.
#[test]
fn word_boundary_and_long_run_edges() {
    let mut elems: Vec<u32> = vec![0, 1, 62, 63, 64, 65, 126, 127, 128, 191, 192];
    elems.extend(512..512 + 64 * 40); // 40 saturated words in one run
    elems.sort_unstable();
    elems.dedup();
    let words = vec![0xdead_beef_0123_4567u64; 64]; // ids reach word 47

    assert_eq!(
        kernels::intersection_count_sorted(&words, &elems),
        kernels::scalar::intersection_count_sorted(&words, &elems),
    );
    let model = elems
        .iter()
        .filter(|&&e| words[(e >> 6) as usize] >> (e & 63) & 1 == 1)
        .count();
    assert_eq!(kernels::intersection_count_sorted(&words, &elems), model);

    let mut removed = words.clone();
    let mut removed_ref = words.clone();
    kernels::remove_sorted(&mut removed, &elems);
    kernels::scalar::remove_sorted(&mut removed_ref, &elems);
    assert_eq!(removed, removed_ref);
    for &e in &elems {
        assert_eq!(removed[(e >> 6) as usize] >> (e & 63) & 1, 0);
    }

    let mut out = Vec::new();
    kernels::intersect_sorted_into(&words, &elems, &mut out);
    let want: Vec<u32> = elems
        .iter()
        .copied()
        .filter(|&e| words[(e >> 6) as usize] >> (e & 63) & 1 == 1)
        .collect();
    assert_eq!(out, want);
}

/// Short inputs hit every split of the emit path's span/fragment
/// classification: lengths 0..=9 cover empty, single-id, and
/// multi-fragment shapes.
#[test]
fn emit_tail_lengths() {
    let words = vec![!0u64; 4];
    for len in 0..=9u32 {
        let elems: Vec<u32> = (0..len).map(|i| i * 13 % 256).collect();
        let mut sorted = elems;
        sorted.sort_unstable();
        sorted.dedup();
        let mut out = Vec::new();
        kernels::intersect_sorted_into(&words, &sorted, &mut out);
        assert_eq!(out, sorted, "len {len}");
        assert_eq!(
            kernels::intersection_count_sorted(&words, &sorted),
            sorted.len()
        );
    }
}

/// An empty bitmap (universe 0) must be legal for every kernel.
#[test]
fn empty_bitmap_is_legal() {
    let mut none: Vec<u64> = Vec::new();
    assert_eq!(kernels::popcount(&none), 0);
    assert_eq!(kernels::and_popcount(&none, &[]), 0);
    assert_eq!(kernels::intersection_count_sorted(&none, &[]), 0);
    kernels::remove_sorted(&mut none, &[]);
    kernels::insert_sorted(&mut none, &[]);
    let mut out = vec![7];
    kernels::intersect_sorted_into(&none, &[], &mut out);
    assert!(out.is_empty());
}
