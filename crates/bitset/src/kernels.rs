//! Runtime-dispatched word kernels behind [`BitSet`](crate::BitSet).
//!
//! Every bulk operation of the dense bitset bottoms out in one of the
//! kernels here: whole-word set algebra (`or`/`and`/`and-not`, plus
//! their popcount-only variants) and the sorted-slice kernels that the
//! streaming hot paths run per element (`intersection_count_sorted`,
//! `intersect_sorted_into`, `remove_sorted`, `insert_sorted`).
//!
//! Two implementations exist for each kernel:
//!
//! * [`scalar`] — portable word-at-a-time baselines. The sorted-slice
//!   kernels classify ascending ids into *saturated spans* (runs of
//!   consecutive ids covering whole 64-bit words, found in `O(log)`
//!   comparisons and processed at pure word speed with no per-element
//!   work) and *mask fragments* (runs of consecutive words with a
//!   per-word membership mask built on the stack), so a dense slice
//!   costs at most one `count_ones` per word instead of one shift/add
//!   per element.
//! * `avx2` (x86-64 only, private) — explicit 256-bit vector paths:
//!   4-words-per-iteration set algebra and a `vpshufb` nibble-table
//!   popcount for the counting kernels. The spans and mask fragments
//!   built by the shared splitter feed the same vector popcount, so
//!   dense slices hit the wide path while sparse slices degrade
//!   gracefully to the scalar tail. (`intersect_sorted_into` stays on
//!   the shared scalar emit loop on every backend: its output side is
//!   inherently serial below AVX-512 compress stores, and a gathered
//!   probe measured slower than the span walk.)
//!
//! Dispatch is resolved **once** per process ([`backend`], an
//! [`OnceLock`]): AVX2 when the CPU reports it, scalar otherwise, and
//! scalar unconditionally when the `SC_BITSET_FORCE_SCALAR`
//! environment variable is set to anything but `0` (the CI fallback
//! lane) or after [`force_scalar`]`(true)` (the in-process A/B hook
//! used by benchmarks). Both paths are bit-identical by construction
//! and pinned against each other by the `prop_kernels` property suite.
//!
//! The functions take raw word slices rather than `BitSet` so that the
//! benchmarks and parity tests can drive them directly; `BitSet`
//! validates universes and sortedness before delegating here, and the
//! kernels re-assert the bounds they rely on (cheap: one comparison on
//! the largest id).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Which kernel implementation the process dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable word-at-a-time kernels.
    Scalar,
    /// 256-bit AVX2 kernels (x86-64 with runtime feature detection).
    Avx2,
}

impl Backend {
    /// Short lowercase label (`"scalar"` / `"avx2"`) for stats lines
    /// and bench metadata.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

static DETECTED: OnceLock<Backend> = OnceLock::new();
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn detect() -> Backend {
    if std::env::var_os("SC_BITSET_FORCE_SCALAR").is_some_and(|v| v != "0") {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    Backend::Scalar
}

/// The backend every dispatched kernel routes to, resolved once per
/// process (environment override included).
pub fn backend() -> Backend {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        return Backend::Scalar;
    }
    *DETECTED.get_or_init(detect)
}

/// The active backend's label (`"scalar"` / `"avx2"`), for surfacing
/// in `repro --json` metadata and the `sctool serve` stats line.
pub fn backend_name() -> &'static str {
    backend().name()
}

/// In-process scalar override, for benchmarks that A/B the two paths
/// inside one run (the environment variable can only be read once).
/// `force_scalar(true)` pins every dispatched kernel to the scalar
/// path until `force_scalar(false)`; it never forces the vector path,
/// so it is safe on any machine.
pub fn force_scalar(on: bool) {
    FORCE_SCALAR.store(on, Ordering::Relaxed);
}

/// Words per mask fragment: sorted-slice kernels split their input
/// into runs of at most this many *consecutive* words so the masks fit
/// in a fixed stack buffer that the vector kernels can stream over.
const RUN_WORDS: usize = 32;

/// Starts a saturated word span? Ids are strictly ascending, so 64 of
/// them spanning exactly 63 from a word boundary must be that word's
/// full population.
#[inline]
fn saturates_a_word(elems: &[u32], i: usize) -> bool {
    elems[i] & 63 == 0 && elems.get(i + 63) == Some(&(elems[i] + 63))
}

/// Length (in ids, a multiple of 64) of the saturated whole-word span
/// at position `i` — the longest run of consecutive ids starting on a
/// word boundary and covering complete 64-bit words. 0 when `elems[i]`
/// is unaligned or its word is not fully populated.
///
/// Strict ascent makes the probe O(log span): a stretch of `L` ids is
/// consecutive iff `elems[i + L - 1] == elems[i] + L - 1`, so the span
/// is found by doubling then binary search — a dense million-id slice
/// costs ~40 comparisons to classify instead of per-element work.
fn saturated_prefix(elems: &[u32], i: usize) -> usize {
    if !saturates_a_word(elems, i) {
        return 0;
    }
    let e = elems[i] as u64;
    let full = |nwords: usize| -> bool {
        let idx = i + nwords * 64 - 1;
        idx < elems.len() && elems[idx] as u64 == e + nwords as u64 * 64 - 1
    };
    let mut lo = 1usize;
    let mut hi = 2usize;
    while full(hi) {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if full(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo * 64
}

/// One piece of an ascending id slice, as classified by
/// [`for_each_span`].
enum Span<'a> {
    /// A run of consecutive ids covering `nwords` complete 64-bit
    /// words starting at `word0`, detected in `O(log len)` comparisons
    /// ([`saturated_prefix`]). Dense slices resolve almost entirely
    /// into these, so the kernels process them at whole-word speed
    /// with no per-element work at all.
    Saturated { word0: usize, nwords: usize },
    /// Up to [`RUN_WORDS`] consecutive words starting at `word0`, with
    /// per-word membership masks built on the stack. A gap in the word
    /// sequence ends the fragment, so sparse slices never pay for
    /// words they do not touch.
    Masked { word0: usize, masks: &'a [u64] },
}

/// Splits an ascending id slice into saturated spans and mask
/// fragments, calling `flush` once per [`Span`].
#[inline]
fn for_each_span(elems: &[u32], mut flush: impl FnMut(Span)) {
    let mut masks = [0u64; RUN_WORDS];
    let mut i = 0;
    while i < elems.len() {
        let word0 = (elems[i] >> 6) as usize;
        let sat = saturated_prefix(elems, i);
        if sat > 0 {
            flush(Span::Saturated {
                word0,
                nwords: sat / 64,
            });
            i += sat;
            continue;
        }
        let mut last = word0;
        let mut len = 1usize;
        masks[0] = 1u64 << (elems[i] & 63);
        i += 1;
        while i < elems.len() {
            let e = elems[i];
            let w = (e >> 6) as usize;
            if w == last {
                masks[len - 1] |= 1u64 << (e & 63);
            } else if w == last + 1 && len < RUN_WORDS && !saturates_a_word(elems, i) {
                // A saturated stretch starting mid-fragment ends the
                // fragment instead, handing back to the span probe.
                masks[len] = 1u64 << (e & 63);
                len += 1;
                last = w;
            } else {
                break;
            }
            i += 1;
        }
        flush(Span::Masked {
            word0,
            masks: &masks[..len],
        });
    }
}

/// Asserts the largest id of an ascending slice addresses a word
/// inside `words` — with sorted input this bounds every id.
#[inline]
fn check_bounds(words: &[u64], elems: &[u32]) {
    if let Some(&last) = elems.last() {
        assert!(
            ((last >> 6) as usize) < words.len(),
            "element {last} outside the {}-word bitmap",
            words.len()
        );
    }
}

/// Portable word-at-a-time kernels — the reference semantics for the
/// vector path, public so parity tests and microbenches can pin the
/// dispatched kernels against them.
pub mod scalar {
    use super::{for_each_span, Span};

    /// `popcount(words)`.
    #[inline]
    pub fn popcount(words: &[u64]) -> usize {
        words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `popcount(a & b)` over two equal-length word slices.
    #[inline]
    pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & y).count_ones() as usize)
            .sum()
    }

    /// `popcount(a & !b)` over two equal-length word slices.
    #[inline]
    pub fn andnot_popcount(a: &[u64], b: &[u64]) -> usize {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x & !y).count_ones() as usize)
            .sum()
    }

    /// `a |= b`, word by word.
    #[inline]
    pub fn or_into(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x |= y;
        }
    }

    /// `a &= b`, word by word.
    #[inline]
    pub fn and_into(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x &= y;
        }
    }

    /// `a &= !b`, word by word.
    #[inline]
    pub fn andnot_into(a: &mut [u64], b: &[u64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x &= !y;
        }
    }

    /// `|bitmap ∩ elems|` for ascending ids: saturated spans cost one
    /// `count_ones` per word with no mask build at all; fragments pay
    /// the per-word mask build plus one `count_ones` per touched word.
    pub fn intersection_count_sorted(words: &[u64], elems: &[u32]) -> usize {
        let mut total = 0usize;
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => total += popcount(&words[word0..word0 + nwords]),
            Span::Masked { word0, masks } => {
                total += and_popcount(&words[word0..word0 + masks.len()], masks)
            }
        });
        total
    }

    /// Overwrites `out` with the ascending ids of `elems` present in
    /// the bitmap. Output-sensitive span walk: the candidate set is
    /// turned into per-word masks (free for saturated spans), and ids
    /// are emitted by iterating the set bits of `word & mask` — a
    /// dense slice costs one bit-loop per *hit* instead of a probe per
    /// candidate. An AVX2 `vpgatherqq` probe was tried here and
    /// measured slower than this walk (gathers don't pay off below
    /// AVX-512 compress stores), so both backends share it.
    pub fn intersect_sorted_into(words: &[u64], elems: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(elems.len());
        let mut emit = |word0: usize, k: usize, m: u64| {
            let base = ((word0 + k) * 64) as u32;
            let mut bits = words[word0 + k] & m;
            while bits != 0 {
                out.push(base + bits.trailing_zeros());
                bits &= bits - 1;
            }
        };
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => {
                for k in 0..nwords {
                    emit(word0, k, !0);
                }
            }
            Span::Masked { word0, masks } => {
                for (k, &m) in masks.iter().enumerate() {
                    emit(word0, k, m);
                }
            }
        });
    }

    /// Clears every id of an ascending slice: saturated spans zero
    /// whole words (a memset); fragments pay one read-modify-write per
    /// touched word.
    pub fn remove_sorted(words: &mut [u64], elems: &[u32]) {
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => words[word0..word0 + nwords].fill(0),
            Span::Masked { word0, masks } => {
                for (k, m) in masks.iter().enumerate() {
                    words[word0 + k] &= !m;
                }
            }
        });
    }

    /// Sets every id of an ascending slice: saturated spans fill whole
    /// words (a memset); fragments pay one read-modify-write per
    /// touched word.
    pub fn insert_sorted(words: &mut [u64], elems: &[u32]) {
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => words[word0..word0 + nwords].fill(!0),
            Span::Masked { word0, masks } => {
                for (k, m) in masks.iter().enumerate() {
                    words[word0 + k] |= m;
                }
            }
        });
    }
}

/// Explicit 256-bit kernels. Private: reached only through the
/// dispatched entry points, which verify AVX2 support first.
///
/// The counting kernels use the `vpshufb` nibble-table popcount
/// (Muła's algorithm): 4 words per iteration, byte counts folded with
/// `vpsadbw` into four 64-bit lanes summed at the end.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    use super::{for_each_span, Span};
    use std::arch::x86_64::*;

    /// Sums the four 64-bit lanes of an accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi64(v: __m256i) -> usize {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
        lanes.iter().map(|&x| x as usize).sum()
    }

    /// Per-byte popcount of a 256-bit lane via two nibble lookups.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn byte_popcount(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let table = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
        _mm256_add_epi8(
            _mm256_shuffle_epi8(table, lo),
            _mm256_shuffle_epi8(table, hi),
        )
    }

    macro_rules! popcount_kernel {
        ($name:ident, |$x:ident, $y:ident| $combine:expr, |$sx:ident, $sy:ident| $scalar:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &[u64], b: &[u64]) -> usize {
                debug_assert_eq!(a.len(), b.len());
                let chunks = a.len() / 4;
                let mut acc = _mm256_setzero_si256();
                for i in 0..chunks {
                    let $x = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
                    let $y = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
                    let counts = byte_popcount($combine);
                    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, _mm256_setzero_si256()));
                }
                let mut total = hsum_epi64(acc);
                for i in chunks * 4..a.len() {
                    let ($sx, $sy) = (a[i], b[i]);
                    total += ($scalar).count_ones() as usize;
                }
                total
            }
        };
    }

    popcount_kernel!(and_popcount, |x, y| _mm256_and_si256(x, y), |sx, sy| sx
        & sy);
    popcount_kernel!(
        andnot_popcount,
        // `vpandn` computes `!first & second`, so the operands swap.
        |x, y| _mm256_andnot_si256(y, x),
        |sx, sy| sx & !sy
    );

    #[target_feature(enable = "avx2")]
    pub unsafe fn popcount(words: &[u64]) -> usize {
        let chunks = words.len() / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let v = _mm256_loadu_si256(words.as_ptr().add(i * 4) as *const __m256i);
            let counts = byte_popcount(v);
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, _mm256_setzero_si256()));
        }
        let mut total = hsum_epi64(acc);
        for &w in &words[chunks * 4..] {
            total += w.count_ones() as usize;
        }
        total
    }

    macro_rules! bitwise_kernel {
        ($name:ident, |$x:ident, $y:ident| $combine:expr, |$sx:ident, $sy:ident| $scalar:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(a: &mut [u64], b: &[u64]) {
                debug_assert_eq!(a.len(), b.len());
                let chunks = a.len() / 4;
                for i in 0..chunks {
                    let $x = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
                    let $y = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
                    _mm256_storeu_si256(a.as_mut_ptr().add(i * 4) as *mut __m256i, $combine);
                }
                for i in chunks * 4..a.len() {
                    let ($sx, $sy) = (a[i], b[i]);
                    a[i] = $scalar;
                }
            }
        };
    }

    bitwise_kernel!(or_into, |x, y| _mm256_or_si256(x, y), |sx, sy| sx | sy);
    bitwise_kernel!(and_into, |x, y| _mm256_and_si256(x, y), |sx, sy| sx & sy);
    bitwise_kernel!(andnot_into, |x, y| _mm256_andnot_si256(y, x), |sx, sy| sx
        & !sy);

    #[target_feature(enable = "avx2")]
    pub unsafe fn intersection_count_sorted(words: &[u64], elems: &[u32]) -> usize {
        let mut total = 0usize;
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => total += popcount(&words[word0..word0 + nwords]),
            Span::Masked { word0, masks } => {
                total += and_popcount(&words[word0..word0 + masks.len()], masks)
            }
        });
        total
    }

    /// The emit loop is pure scalar bit iteration (nothing for 256-bit
    /// lanes to do without AVX-512 compress stores — a `vpgatherqq`
    /// probe was tried and measured slower), so this delegates to the
    /// shared span walk.
    #[target_feature(enable = "avx2")]
    pub unsafe fn intersect_sorted_into(words: &[u64], elems: &[u32], out: &mut Vec<u32>) {
        super::scalar::intersect_sorted_into(words, elems, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn remove_sorted(words: &mut [u64], elems: &[u32]) {
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => words[word0..word0 + nwords].fill(0),
            Span::Masked { word0, masks } => {
                andnot_into(&mut words[word0..word0 + masks.len()], masks)
            }
        });
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn insert_sorted(words: &mut [u64], elems: &[u32]) {
        for_each_span(elems, |span| match span {
            Span::Saturated { word0, nwords } => words[word0..word0 + nwords].fill(!0),
            Span::Masked { word0, masks } => or_into(&mut words[word0..word0 + masks.len()], masks),
        });
    }
}

/// Telemetry backend-hit accounting. The kernels run per element under
/// the scans, so per-call atomic traffic is out of the question even
/// sharded: hits batch in a thread-local cell and flush to the
/// process-wide counters (`sc_kernel_calls_avx2_total` /
/// `sc_kernel_calls_scalar_total`) every [`hits::FLUSH_EVERY`] calls
/// and on thread exit (scoped worker pools flush when the scope joins).
/// Live values therefore trail the truth by up to `FLUSH_EVERY - 1`
/// calls per running thread — fine for a rate scrape, and the cost per
/// call when telemetry is off stays a single relaxed load.
mod hits {
    use super::Backend;
    use std::cell::Cell;
    use std::sync::OnceLock;

    const FLUSH_EVERY: u64 = 1024;

    fn counter(backend: Backend) -> &'static sc_telemetry::Counter {
        static AVX2: OnceLock<&'static sc_telemetry::Counter> = OnceLock::new();
        static SCALAR: OnceLock<&'static sc_telemetry::Counter> = OnceLock::new();
        match backend {
            Backend::Avx2 => {
                AVX2.get_or_init(|| sc_telemetry::counter("sc_kernel_calls_avx2_total"))
            }
            Backend::Scalar => {
                SCALAR.get_or_init(|| sc_telemetry::counter("sc_kernel_calls_scalar_total"))
            }
        }
    }

    /// One backend's pending batch; drops (thread exit) flush it.
    struct Pending {
        backend: Backend,
        n: Cell<u64>,
    }

    impl Pending {
        fn bump(&self) {
            let n = self.n.get() + 1;
            if n >= FLUSH_EVERY {
                counter(self.backend).add(n);
                self.n.set(0);
            } else {
                self.n.set(n);
            }
        }
    }

    impl Drop for Pending {
        fn drop(&mut self) {
            let n = self.n.get();
            if n > 0 {
                counter(self.backend).add(n);
            }
        }
    }

    thread_local! {
        static AVX2: Pending = const {
            Pending { backend: Backend::Avx2, n: Cell::new(0) }
        };
        static SCALAR: Pending = const {
            Pending { backend: Backend::Scalar, n: Cell::new(0) }
        };
    }

    /// Notes one dispatched kernel call on `backend`.
    #[inline]
    pub(super) fn note(backend: Backend) {
        if !sc_telemetry::enabled() {
            return;
        }
        let cell = match backend {
            Backend::Avx2 => &AVX2,
            Backend::Scalar => &SCALAR,
        };
        // A kernel call during thread teardown (after the thread-local
        // was destroyed) is silently uncounted rather than a panic.
        let _ = cell.try_with(|p| p.bump());
    }
}

/// Routes one kernel call to the resolved backend. On non-x86-64 the
/// vector arm compiles away and everything is scalar.
macro_rules! dispatch {
    ($name:ident ( $($arg:expr),* )) => {
        match backend() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Backend::Avx2` is only ever produced by
            // `detect()` after `is_x86_feature_detected!("avx2")`.
            #[allow(unsafe_code)]
            Backend::Avx2 => {
                hits::note(Backend::Avx2);
                unsafe { avx2::$name($($arg),*) }
            }
            _ => {
                hits::note(Backend::Scalar);
                scalar::$name($($arg),*)
            }
        }
    };
}

/// `popcount(words)` on the active backend.
pub fn popcount(words: &[u64]) -> usize {
    dispatch!(popcount(words))
}

/// `popcount(a & b)` on the active backend.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn and_popcount(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word slices must have equal length");
    dispatch!(and_popcount(a, b))
}

/// `popcount(a & !b)` on the active backend.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn andnot_popcount(a: &[u64], b: &[u64]) -> usize {
    assert_eq!(a.len(), b.len(), "word slices must have equal length");
    dispatch!(andnot_popcount(a, b))
}

/// `a |= b` on the active backend.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn or_into(a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "word slices must have equal length");
    dispatch!(or_into(a, b))
}

/// `a &= b` on the active backend.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn and_into(a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "word slices must have equal length");
    dispatch!(and_into(a, b))
}

/// `a &= !b` on the active backend.
///
/// # Panics
///
/// Panics if the slices' lengths differ.
pub fn andnot_into(a: &mut [u64], b: &[u64]) {
    assert_eq!(a.len(), b.len(), "word slices must have equal length");
    dispatch!(andnot_into(a, b))
}

/// Sorted slices shorter than this skip vector dispatch entirely: a
/// short sparse slice splits into a handful of one-word fragments that
/// can't amortise the 256-bit setup, and measured end-to-end the
/// vector path costs ~7% on such workloads. Dense slices long enough
/// to win are far above this bar.
const SHORT_SLICE: usize = 64;

/// `|bitmap ∩ elems|` for ascending ids, on the active backend.
///
/// # Panics
///
/// Panics if the largest id addresses a word outside `words`. Ids
/// must be ascending (callers check; violations only degrade the
/// count, never memory safety, because every id is bounds-asserted
/// through the largest one — unsorted input with a small last id
/// panics in the kernels' slice indexing).
pub fn intersection_count_sorted(words: &[u64], elems: &[u32]) -> usize {
    check_bounds(words, elems);
    if elems.len() < SHORT_SLICE {
        return scalar::intersection_count_sorted(words, elems);
    }
    dispatch!(intersection_count_sorted(words, elems))
}

/// Overwrites `out` with the ascending ids present in the bitmap, on
/// the active backend.
///
/// # Panics
///
/// Panics if the largest id addresses a word outside `words`.
pub fn intersect_sorted_into(words: &[u64], elems: &[u32], out: &mut Vec<u32>) {
    check_bounds(words, elems);
    dispatch!(intersect_sorted_into(words, elems, out))
}

/// Clears every id of an ascending slice, on the active backend.
///
/// # Panics
///
/// Panics if the largest id addresses a word outside `words`.
pub fn remove_sorted(words: &mut [u64], elems: &[u32]) {
    check_bounds(words, elems);
    if elems.len() < SHORT_SLICE {
        return scalar::remove_sorted(words, elems);
    }
    dispatch!(remove_sorted(words, elems))
}

/// Sets every id of an ascending slice, on the active backend.
///
/// # Panics
///
/// Panics if the largest id addresses a word outside `words`.
pub fn insert_sorted(words: &mut [u64], elems: &[u32]) {
    check_bounds(words, elems);
    if elems.len() < SHORT_SLICE {
        return scalar::insert_sorted(words, elems);
    }
    dispatch!(insert_sorted(words, elems))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic splittable-mix word generator (no external rng).
    fn mix(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn words(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed;
        (0..n).map(|_| mix(&mut s)).collect()
    }

    #[test]
    fn backend_resolves_and_names() {
        let b = backend();
        assert!(matches!(b, Backend::Scalar | Backend::Avx2));
        assert_eq!(backend_name(), b.name());
    }

    #[test]
    fn force_scalar_pins_the_dispatch() {
        force_scalar(true);
        assert_eq!(backend(), Backend::Scalar);
        force_scalar(false);
    }

    #[test]
    fn dispatched_counts_match_scalar_on_random_words() {
        for len in [0, 1, 3, 4, 7, 8, 33, 100] {
            let a = words(len, 1);
            let b = words(len, 2);
            assert_eq!(popcount(&a), scalar::popcount(&a), "len {len}");
            assert_eq!(and_popcount(&a, &b), scalar::and_popcount(&a, &b));
            assert_eq!(andnot_popcount(&a, &b), scalar::andnot_popcount(&a, &b));
        }
    }

    #[test]
    fn dispatched_bitwise_match_scalar_on_random_words() {
        for len in [0, 1, 5, 8, 31, 64] {
            let base = words(len, 3);
            let b = words(len, 4);
            for (dispatched, reference) in [
                (
                    or_into as fn(&mut [u64], &[u64]),
                    scalar::or_into as fn(&mut [u64], &[u64]),
                ),
                (and_into, scalar::and_into),
                (andnot_into, scalar::andnot_into),
            ] {
                let mut x = base.clone();
                let mut y = base.clone();
                dispatched(&mut x, &b);
                reference(&mut y, &b);
                assert_eq!(x, y, "len {len}");
            }
        }
    }

    #[test]
    fn spans_cover_every_element_once() {
        // Ids spanning word boundaries, gaps, an unaligned head running
        // into a saturated stretch, and a consecutive run longer than
        // RUN_WORDS (which must resolve to one saturated span, not
        // fragment splits).
        let mut elems: Vec<u32> = vec![0, 1, 63, 64, 65, 127, 128, 300];
        elems.extend(1000..1000 + 200); // starts mid-word, saturates words
        elems.extend(4096..4096 + 64 * (RUN_WORDS as u32 + 3));
        let mut seen = Vec::new();
        let mut saturated_spans = 0usize;
        for_each_span(&elems, |span| match span {
            Span::Saturated { word0, nwords } => {
                saturated_spans += 1;
                seen.extend((word0 * 64) as u32..((word0 + nwords) * 64) as u32);
            }
            Span::Masked { word0, masks } => {
                for (k, &m) in masks.iter().enumerate() {
                    let mut bits = m;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        seen.push(((word0 + k) * 64) as u32 + b);
                        bits &= bits - 1;
                    }
                }
            }
        });
        assert_eq!(seen, elems);
        assert!(
            saturated_spans >= 2,
            "both dense stretches must hit the saturated path"
        );
    }

    #[test]
    fn saturated_prefix_probes_exact_lengths() {
        for nwords in [1usize, 2, 3, 5, 31, 32, 33, 100] {
            // Exactly nwords saturated words, then a gap.
            let mut elems: Vec<u32> = (0..(nwords * 64) as u32).collect();
            elems.push((nwords * 64) as u32 + 7);
            assert_eq!(saturated_prefix(&elems, 0), nwords * 64, "{nwords} words");
        }
        assert_eq!(saturated_prefix(&[1, 2, 3], 0), 0, "unaligned head");
        let partial: Vec<u32> = (0..63).collect();
        assert_eq!(saturated_prefix(&partial, 0), 0, "63 bits is not a word");
    }

    #[test]
    #[should_panic(expected = "outside the")]
    fn out_of_bounds_ids_panic() {
        intersection_count_sorted(&[0u64; 2], &[5, 128]);
    }
}
