//! Heap-footprint reporting in 64-bit machine words.

/// Types that can report how many 64-bit words of heap memory they own.
///
/// The streaming model of the paper measures an algorithm's working
/// memory in machine words (an element or set id is one word, `n` bits of
/// dense bitmap are `n/64` words). Containers that the space meter tracks
/// implement this trait; the meter charges `heap_words()` when a value is
/// stored and releases it when the value is dropped.
///
/// Implementations report *capacity*, not length, wherever the two can
/// differ: memory that has been reserved is memory the algorithm is
/// using, whether or not it currently holds live entries.
pub trait HeapWords {
    /// Heap memory owned by `self`, in 64-bit words.
    fn heap_words(&self) -> usize;
}

impl HeapWords for u32 {
    #[inline]
    fn heap_words(&self) -> usize {
        0
    }
}

impl HeapWords for u64 {
    #[inline]
    fn heap_words(&self) -> usize {
        0
    }
}

impl HeapWords for usize {
    #[inline]
    fn heap_words(&self) -> usize {
        0
    }
}

impl<T: HeapWords> HeapWords for Vec<T> {
    fn heap_words(&self) -> usize {
        // Inline storage for the elements themselves…
        let inline = (self.capacity() * std::mem::size_of::<T>()).div_ceil(8);
        // …plus whatever the elements own on the heap.
        let owned: usize = self.iter().map(HeapWords::heap_words).sum();
        inline + owned
    }
}

impl<T: HeapWords> HeapWords for Option<T> {
    fn heap_words(&self) -> usize {
        self.as_ref().map_or(0, HeapWords::heap_words)
    }
}

impl<A: HeapWords, B: HeapWords> HeapWords for (A, B) {
    fn heap_words(&self) -> usize {
        self.0.heap_words() + self.1.heap_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_ids_counts_capacity() {
        let mut v: Vec<u32> = Vec::with_capacity(16);
        v.push(7);
        // 16 u32s = 64 bytes = 8 words, regardless of length.
        assert_eq!(v.heap_words(), 8);
    }

    #[test]
    fn nested_vec_counts_inner_heap() {
        let v: Vec<Vec<u64>> = vec![vec![1, 2, 3], vec![4]];
        // Outer: 2 * 24 bytes = 48 bytes = 6 words. Inner: 3 + 1 words.
        assert_eq!(v.heap_words(), 6 + 3 + 1);
    }

    #[test]
    fn scalars_are_free() {
        assert_eq!(5u32.heap_words(), 0);
        assert_eq!(5u64.heap_words(), 0);
        assert_eq!(5usize.heap_words(), 0);
    }

    #[test]
    fn option_delegates() {
        let some: Option<Vec<u64>> = Some(vec![1, 2]);
        let none: Option<Vec<u64>> = None;
        assert_eq!(some.heap_words(), 2);
        assert_eq!(none.heap_words(), 0);
    }
}
