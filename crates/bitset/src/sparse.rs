//! Sparse sorted-id set, used for stored set projections.

use crate::dense::BitSet;
use crate::heap_words::HeapWords;
use std::fmt;

/// A sparse set of element ids, stored as a sorted, deduplicated vector.
///
/// This is the representation the paper's algorithm uses for the
/// projections `r ∩ L` of *small* sets: "this requires remembering only
/// the O(|S|/k) indices of the elements of r ∩ L" (Section 2.1). A
/// [`SparseSet`] of `t` ids costs `⌈t/2⌉` words of memory (two `u32` ids
/// per 64-bit word), versus `n/64` words for a dense bitmap.
///
/// # Examples
///
/// ```
/// use sc_bitset::{BitSet, SparseSet};
///
/// let l = BitSet::from_iter(100, [2, 3, 5, 8]);
/// let r = SparseSet::from_unsorted(vec![5, 99, 3]);
/// let proj = r.intersect_dense(&l);
/// assert_eq!(proj.as_slice(), &[3, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SparseSet {
    ids: Vec<u32>,
}

impl SparseSet {
    /// Creates an empty sparse set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a vector that is already sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `ids` is not strictly increasing.
    pub fn from_sorted(ids: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly increasing"
        );
        Self { ids }
    }

    /// Builds from arbitrary ids: sorts and deduplicates.
    pub fn from_unsorted(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Number of ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the set holds no ids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted ids.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.ids
    }

    /// Iterates over the ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.ids.iter().copied()
    }

    /// Binary-search membership test.
    pub fn contains(&self, e: u32) -> bool {
        self.ids.binary_search(&e).is_ok()
    }

    /// Returns `self ∩ dense` as a new sparse set.
    pub fn intersect_dense(&self, dense: &BitSet) -> SparseSet {
        let ids = self
            .ids
            .iter()
            .copied()
            .filter(|&e| (e as usize) < dense.universe() && dense.contains(e))
            .collect();
        SparseSet { ids }
    }

    /// Counts `|self ∩ dense|` without allocating.
    pub fn intersection_count_dense(&self, dense: &BitSet) -> usize {
        self.ids
            .iter()
            .filter(|&&e| (e as usize) < dense.universe() && dense.contains(e))
            .count()
    }

    /// Removes every id present in `dense` from `self` (`self \= dense`).
    pub fn subtract_dense(&mut self, dense: &BitSet) {
        self.ids
            .retain(|&e| (e as usize) >= dense.universe() || !dense.contains(e));
    }

    /// `true` if every id of `self` appears in `other`.
    ///
    /// Linear merge over the two sorted lists.
    pub fn is_subset(&self, other: &SparseSet) -> bool {
        let mut it = other.ids.iter().copied();
        'outer: for &e in &self.ids {
            for o in it.by_ref() {
                match o.cmp(&e) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Materialises the set as a dense bitset over the given universe.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`.
    pub fn to_dense(&self, universe: usize) -> BitSet {
        BitSet::from_iter(universe, self.iter())
    }
}

impl HeapWords for SparseSet {
    fn heap_words(&self) -> usize {
        // Two u32 ids per 64-bit word; count reserved capacity.
        (self.ids.capacity() * std::mem::size_of::<u32>()).div_ceil(8)
    }
}

impl fmt::Debug for SparseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for SparseSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Self::from_unsorted(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_unsorted_sorts_and_dedups() {
        let s = SparseSet::from_unsorted(vec![9, 1, 4, 4, 1]);
        assert_eq!(s.as_slice(), &[1, 4, 9]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn intersect_and_count_against_dense() {
        let dense = BitSet::from_iter(50, [10, 20, 30]);
        let s = SparseSet::from_sorted(vec![5, 10, 30, 45]);
        assert_eq!(s.intersection_count_dense(&dense), 2);
        assert_eq!(s.intersect_dense(&dense).as_slice(), &[10, 30]);
    }

    #[test]
    fn subtract_dense_removes_covered() {
        let dense = BitSet::from_iter(50, [10, 20, 30]);
        let mut s = SparseSet::from_sorted(vec![5, 10, 30, 45]);
        s.subtract_dense(&dense);
        assert_eq!(s.as_slice(), &[5, 45]);
    }

    #[test]
    fn ids_beyond_dense_universe_are_kept_distinct() {
        // intersect: dropped; subtract: kept. Ids outside the dense
        // universe cannot be members of it.
        let dense = BitSet::from_iter(10, [1, 2]);
        let s = SparseSet::from_sorted(vec![2, 100]);
        assert_eq!(s.intersect_dense(&dense).as_slice(), &[2]);
        let mut t = s.clone();
        t.subtract_dense(&dense);
        assert_eq!(t.as_slice(), &[100]);
    }

    #[test]
    fn subset_via_merge() {
        let a = SparseSet::from_sorted(vec![2, 5, 9]);
        let b = SparseSet::from_sorted(vec![1, 2, 5, 7, 9]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(SparseSet::new().is_subset(&a));
        let c = SparseSet::from_sorted(vec![2, 5, 10]);
        assert!(!c.is_subset(&b));
    }

    #[test]
    fn dense_roundtrip() {
        let s = SparseSet::from_sorted(vec![0, 63, 64, 99]);
        let d = s.to_dense(100);
        assert_eq!(d.to_vec(), s.as_slice());
    }

    #[test]
    fn heap_words_packs_two_ids_per_word() {
        let mut s = SparseSet::from_sorted((0..8).collect());
        s.ids.shrink_to_fit();
        assert_eq!(s.heap_words(), 4);
    }
}
