//! Bit-level set primitives for the streaming set cover reproduction.
//!
//! Every algorithm in the paper manipulates subsets of a fixed element
//! universe `U = {0, 1, …, n-1}`. This crate provides the two
//! representations those algorithms need:
//!
//! * [`BitSet`] — a dense, fixed-universe bitset backed by 64-bit words.
//!   Used for the "leftover" element set `L`, residual universes, and any
//!   subset whose size is a constant fraction of `n`.
//! * [`SparseSet`] — a sorted list of element ids. Used for the stored
//!   *projections* `r ∩ L` of small sets (Figure 1.3 of the paper), whose
//!   whole point is that they occupy `O(|r ∩ L|)` words rather than
//!   `O(n / 64)`.
//!
//! Both types report their heap footprint in 64-bit words via
//! [`HeapWords`], which is what the streaming-model space meter charges.
//!
//! Every bulk [`BitSet`] operation bottoms out in [`kernels`], a
//! runtime-dispatched layer with portable scalar baselines and AVX2
//! vector paths (resolved once per process; `SC_BITSET_FORCE_SCALAR=1`
//! pins the portable path everywhere).

// `deny` rather than `forbid`: the AVX2 paths in `kernels` need
// `std::arch` intrinsics behind an explicit, feature-detected
// `#[allow(unsafe_code)]`; everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod heap_words;
pub mod kernels;
mod sparse;

pub use dense::{BitSet, Ones};
pub use heap_words::HeapWords;
pub use sparse::SparseSet;

/// Number of 64-bit words needed to hold `n` bits.
#[inline]
pub const fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }
}
