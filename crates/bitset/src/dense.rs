//! Dense fixed-universe bitset.

use crate::heap_words::HeapWords;
use crate::{kernels, words_for};
use std::fmt;

/// A dense bitset over a fixed universe `{0, …, universe-1}`.
///
/// Backed by `Vec<u64>`; all bulk operations run word-at-a-time. The
/// universe size is fixed at construction: binary operations panic if the
/// operands' universes differ, which in this codebase always indicates a
/// logic error (mixing element ids from different ground sets).
///
/// # Examples
///
/// ```
/// use sc_bitset::BitSet;
///
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(97);
/// let b = BitSet::from_iter(100, [3, 5]);
/// assert_eq!(a.intersection_count(&b), 1);
/// assert_eq!(a.ones().collect::<Vec<_>>(), vec![3, 97]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    universe: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over `{0, …, universe-1}`.
    pub fn new(universe: usize) -> Self {
        Self {
            universe,
            words: vec![0; words_for(universe)],
        }
    }

    /// Creates a set containing every element of the universe.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        s.fill();
        s
    }

    /// Creates a set from an iterator of element ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`.
    pub fn from_iter<I: IntoIterator<Item = u32>>(universe: usize, iter: I) -> Self {
        let mut s = Self::new(universe);
        for e in iter {
            s.insert(e);
        }
        s
    }

    /// The universe size `n` this set ranges over (not the popcount).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements currently in the set.
    pub fn count(&self) -> usize {
        kernels::popcount(&self.words)
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Tests membership of `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= universe`.
    #[inline]
    pub fn contains(&self, e: u32) -> bool {
        let e = e as usize;
        assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        self.words[e / 64] >> (e % 64) & 1 == 1
    }

    /// Inserts `e`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `e >= universe`.
    #[inline]
    pub fn insert(&mut self, e: u32) -> bool {
        let e = e as usize;
        assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        let w = &mut self.words[e / 64];
        let mask = 1u64 << (e % 64);
        let fresh = *w & mask == 0;
        *w |= mask;
        fresh
    }

    /// Removes `e`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `e >= universe`.
    #[inline]
    pub fn remove(&mut self, e: u32) -> bool {
        let e = e as usize;
        assert!(
            e < self.universe,
            "element {e} outside universe {}",
            self.universe
        );
        let w = &mut self.words[e / 64];
        let mask = 1u64 << (e % 64);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every element of the universe.
    pub fn fill(&mut self) {
        self.words.fill(!0);
        self.trim_tail();
    }

    /// Zeroes the bits above `universe` in the last word.
    fn trim_tail(&mut self) {
        let tail = self.universe % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    fn assert_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "bitset universes differ ({} vs {})",
            self.universe, other.universe
        );
    }

    /// `self ∪= other`.
    pub fn union_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        kernels::or_into(&mut self.words, &other.words);
    }

    /// `self ∩= other`.
    pub fn intersect_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        kernels::and_into(&mut self.words, &other.words);
    }

    /// `self \= other`.
    pub fn difference_with(&mut self, other: &Self) {
        self.assert_same_universe(other);
        kernels::andnot_into(&mut self.words, &other.words);
    }

    /// Overwrites `self` with the contents of `other`.
    pub fn copy_from(&mut self, other: &Self) {
        self.assert_same_universe(other);
        self.words.copy_from_slice(&other.words);
    }

    /// `|self ∩ other|` without materialising the intersection.
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        kernels::and_popcount(&self.words, &other.words)
    }

    /// `|self \ other|` without materialising the difference.
    pub fn difference_count(&self, other: &Self) -> usize {
        self.assert_same_universe(other);
        kernels::andnot_popcount(&self.words, &other.words)
    }

    /// `true` if the two sets share no element.
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &Self) -> bool {
        self.assert_same_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Smallest element, if any.
    pub fn first(&self) -> Option<u32> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i * 64 + w.trailing_zeros() as usize) as u32);
            }
        }
        None
    }

    /// Iterates over the elements in increasing order.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a sorted `Vec<u32>`.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.count());
        v.extend(self.ones());
        v
    }

    /// Direct read access to the backing words (for hashing / tests).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Validates a kernel input slice: ascending ids (debug builds) and
    /// in-universe (always, via the largest element — sufficient when
    /// sorted).
    #[inline]
    fn check_sorted(&self, elems: &[u32]) {
        debug_assert!(
            elems.windows(2).all(|w| w[0] <= w[1]),
            "slice kernels require ascending element ids"
        );
        if let Some(&last) = elems.last() {
            assert!(
                (last as usize) < self.universe,
                "element {last} outside universe {}",
                self.universe
            );
        }
    }

    /// `|self ∩ elems|` for an ascending slice of ids.
    ///
    /// Equivalent to `elems.iter().filter(|&&e| self.contains(e)).count()`
    /// but word-batched via [`kernels::intersection_count_sorted`]: the
    /// ids are grouped into per-word membership masks (one `count_ones`
    /// per touched word instead of one shift/add per id), and contiguous
    /// word runs stream through the vector popcount on AVX2 machines;
    /// the pass-1 size test of `iterSetCover` runs on this.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`. Ids must be strictly
    /// ascending — the per-word masks dedup by construction, so a
    /// duplicated id would count once, not twice (checked in debug
    /// builds only; every caller passes deduplicated projections).
    pub fn intersection_count_slice(&self, elems: &[u32]) -> usize {
        self.check_sorted(elems);
        debug_assert!(
            elems.windows(2).all(|w| w[0] < w[1]),
            "intersection_count_slice requires strictly ascending ids"
        );
        kernels::intersection_count_sorted(&self.words, elems)
    }

    /// Removes every element of an ascending slice, word-at-a-time: one
    /// mask per touched 64-bit word, then a single read-modify-write,
    /// instead of one per element. Equivalent to
    /// `for &e in elems { self.remove(e); }` for strictly ascending
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`. Ids must be ascending
    /// (checked in debug builds only).
    pub fn remove_sorted_slice(&mut self, elems: &[u32]) {
        self.check_sorted(elems);
        kernels::remove_sorted(&mut self.words, elems);
    }

    /// Clears the set, then inserts every element of an ascending
    /// slice — `*self = BitSet::from_iter(universe, elems)` without the
    /// allocation, so a scratch bitmap can be refilled in place.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`. Ids must be ascending
    /// (checked in debug builds only).
    pub fn clear_and_set_from_sorted(&mut self, elems: &[u32]) {
        self.check_sorted(elems);
        self.words.fill(0);
        kernels::insert_sorted(&mut self.words, elems);
    }

    /// Overwrites `out` with `self ∩ elems` (ascending ids). Equivalent
    /// to `out = elems.iter().copied().filter(|&e| self.contains(e)).collect()`
    /// for strictly ascending input, with `out`'s allocation reused and
    /// the filter loop made branch-free: every id is written to the
    /// next slot, and the slot index advances only on membership —
    /// no per-id branch to mispredict. On AVX2 machines the membership
    /// probes run four ids at a time through a gathered vector kernel
    /// ([`kernels::intersect_sorted_into`]).
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`. Ids must be strictly
    /// ascending (checked in debug builds only).
    pub fn intersect_sorted_into(&self, elems: &[u32], out: &mut Vec<u32>) {
        self.check_sorted(elems);
        kernels::intersect_sorted_into(&self.words, elems, out);
    }
}

impl HeapWords for BitSet {
    fn heap_words(&self) -> usize {
        self.words.capacity()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ones()).finish()
    }
}

impl FromIterator<u32> for BitSet {
    /// Builds a set whose universe is `max(iter) + 1` (or 0 when empty).
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let items: Vec<u32> = iter.into_iter().collect();
        let universe = items.iter().max().map_or(0, |&m| m as usize + 1);
        BitSet::from_iter(universe, items)
    }
}

/// Iterator over the set bits of a [`BitSet`], in increasing order.
pub struct Ones<'a> {
    words: &'a [u64],
    index: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.current == 0 {
            self.index += 1;
            if self.index >= self.words.len() {
                return None;
            }
            self.current = self.words[self.index];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some((self.index * 64 + bit) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert reports not-fresh");
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(129));
        assert!(!s.remove(129), "double remove reports absent");
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn contains_out_of_universe_panics() {
        let s = BitSet::new(10);
        s.contains(10);
    }

    #[test]
    fn full_respects_universe_boundary() {
        for n in [1, 63, 64, 65, 127, 128, 200] {
            let s = BitSet::full(n);
            assert_eq!(s.count(), n, "universe {n}");
            assert_eq!(s.ones().count(), n);
            assert_eq!(s.first(), Some(0));
        }
    }

    #[test]
    fn empty_universe_is_legal() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
        assert_eq!(s.ones().count(), 0);
    }

    #[test]
    fn set_algebra_on_small_example() {
        let a = BitSet::from_iter(10, [1, 3, 5, 7]);
        let b = BitSet::from_iter(10, [3, 4, 5]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 3, 4, 5, 7]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![3, 5]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 7]);

        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.difference_count(&b), 2);
        assert!(!a.is_disjoint(&b));
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn disjointness_across_word_boundary() {
        let a = BitSet::from_iter(200, [63, 64]);
        let b = BitSet::from_iter(200, [65, 199]);
        assert!(a.is_disjoint(&b));
        let c = BitSet::from_iter(200, [64, 199]);
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    #[should_panic(expected = "universes differ")]
    fn mixed_universe_ops_panic() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn ones_iterator_matches_contains() {
        let elems = [0u32, 1, 62, 63, 64, 65, 126, 127, 128, 191];
        let s = BitSet::from_iter(192, elems);
        assert_eq!(s.to_vec(), elems.to_vec());
    }

    #[test]
    fn from_iterator_infers_universe() {
        let s: BitSet = [4u32, 9, 2].into_iter().collect();
        assert_eq!(s.universe(), 10);
        assert_eq!(s.to_vec(), vec![2, 4, 9]);
        let empty: BitSet = std::iter::empty().collect();
        assert_eq!(empty.universe(), 0);
    }

    #[test]
    fn heap_words_tracks_backing_storage() {
        let s = BitSet::new(640);
        assert_eq!(s.heap_words(), 10);
    }

    #[test]
    fn slice_kernels_match_per_element_loops() {
        let universe = 200;
        let s = BitSet::from_iter(universe, [0, 5, 63, 64, 65, 127, 128, 199]);
        let elems = [0u32, 3, 63, 64, 100, 128, 199];

        let want_count = elems.iter().filter(|&&e| s.contains(e)).count();
        assert_eq!(s.intersection_count_slice(&elems), want_count);

        let mut gathered = vec![7, 7, 7]; // stale content must be cleared
        s.intersect_sorted_into(&elems, &mut gathered);
        let want_gather: Vec<u32> = elems.iter().copied().filter(|&e| s.contains(e)).collect();
        assert_eq!(gathered, want_gather);

        let mut removed = s.clone();
        removed.remove_sorted_slice(&elems);
        let mut want_removed = s.clone();
        for &e in &elems {
            want_removed.remove(e);
        }
        assert_eq!(removed, want_removed);

        let mut refilled = BitSet::full(universe);
        refilled.clear_and_set_from_sorted(&elems);
        assert_eq!(refilled, BitSet::from_iter(universe, elems.iter().copied()));
        assert_eq!(refilled.heap_words(), BitSet::new(universe).heap_words());
    }

    #[test]
    fn slice_kernels_accept_empty_slices() {
        let mut s = BitSet::from_iter(10, [1, 2]);
        assert_eq!(s.intersection_count_slice(&[]), 0);
        s.remove_sorted_slice(&[]);
        assert_eq!(s.count(), 2);
        s.clear_and_set_from_sorted(&[]);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn slice_kernels_reject_out_of_universe_ids() {
        let s = BitSet::new(10);
        s.intersection_count_slice(&[3, 10]);
    }
}
