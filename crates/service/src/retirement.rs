//! Pipeline stage 4 — **retirement**: outcome construction, cache
//! fill, and the reply fan-out.
//!
//! A job leaves the scan epochs when it no longer wants a scan. Its
//! retirement builds the [`QueryOutcome`] (tagged with the repository
//! generation it ran on), populates the outcome cache exactly once —
//! however many followers coalesced onto it — counts any eviction the
//! insert caused against the run's metrics, and delivers: the reply
//! channel in serve mode, the `sink` callback in batch mode, then one
//! fanned reply per follower under the follower's own id and timing.

use crate::admission::Inflight;
use crate::cache::{CachedAnswer, EvictionPolicy};
use crate::metrics::ServiceMetrics;
use crate::query::QueryOutcome;
use crate::service::Service;
use crate::telemetry::tel;
use crate::tenants::RepositoryGeneration;
use sc_bitset::BitSet;
use sc_telemetry::EventKind;

impl Service {
    /// Retires every job that no longer wants a scan, in admission
    /// order (so batch outcomes are deterministic).
    pub(crate) fn retire<'g>(
        &self,
        gen: &RepositoryGeneration,
        inflight: &mut Vec<(usize, Inflight<'g>)>,
        metrics: &mut ServiceMetrics,
        mut sink: impl FnMut(usize, QueryOutcome),
    ) {
        let mut i = 0;
        while i < inflight.len() {
            if inflight[i].1.job.wants_scan() {
                i += 1;
                continue;
            }
            let (slot, fl) = inflight.remove(i);
            debug_assert!(
                self.config().coalesce || fl.followers.is_empty(),
                "followers can only attach when coalescing is enabled"
            );
            let result = fl.job.finish();
            let mut covered = BitSet::new(gen.system.universe());
            for &id in &result.cover {
                for &e in gen.system.set(id) {
                    covered.insert(e);
                }
            }
            let outcome = QueryOutcome {
                id: fl.id,
                spec: fl.spec,
                cover: result.cover,
                covered: covered.count(),
                required: result.required,
                logical_passes: result.logical_passes,
                space_words: result.space_words,
                epochs_joined: result.epochs_joined,
                queue_wait: fl.admitted.duration_since(fl.submitted),
                latency: fl.submitted.elapsed(),
                cached: false,
                coalesced: false,
                generation: gen.id,
                tenant: gen.tenant.name_handle(),
            };
            if self.cache_enabled() {
                let evicted = self.cache().insert(
                    gen.tenant.id(),
                    gen.fingerprint,
                    gen.system.universe(),
                    gen.system.num_sets(),
                    &fl.spec,
                    CachedAnswer {
                        cover: outcome.cover.clone(),
                        covered: outcome.covered,
                        required: outcome.required,
                        logical_passes: outcome.logical_passes,
                        space_words: outcome.space_words,
                    },
                );
                metrics.evictions += evicted;
                tel().cache_evictions.add(evicted as u64);
                match self.cache().policy() {
                    EvictionPolicy::Fifo => metrics.fifo_evictions += evicted,
                    EvictionPolicy::Lru => metrics.lru_evictions += evicted,
                }
            }
            metrics.queries_completed += 1;
            metrics.queue_wait.record(outcome.queue_wait);
            metrics.latency.record(outcome.latency);
            gen.tenant.counters().bump_job();
            gen.tenant.counters().bump_completed();
            tel().completed.incr();
            sc_telemetry::event(
                EventKind::Retired,
                fl.id,
                gen.id,
                0,
                outcome.logical_passes as u32,
            );
            if let Some(reply) = &fl.reply {
                // The client may have dropped its ticket; that is fine.
                let _ = reply.send(outcome.clone());
            }
            for f in fl.followers {
                // Determinism makes the job's observables the
                // follower's own solo observables; only identity and
                // timing are per-follower.
                let fanned = QueryOutcome {
                    id: f.id,
                    queue_wait: f.attached.duration_since(f.submitted),
                    latency: f.submitted.elapsed(),
                    coalesced: true,
                    ..outcome.clone()
                };
                metrics.queries_completed += 1;
                metrics.queue_wait.record(fanned.queue_wait);
                metrics.latency.record(fanned.latency);
                gen.tenant.counters().bump_coalesced();
                gen.tenant.counters().bump_completed();
                tel().completed.incr();
                sc_telemetry::event(
                    EventKind::Retired,
                    fanned.id,
                    gen.id,
                    0,
                    fanned.logical_passes as u32,
                );
                if let Some(reply) = &f.reply {
                    let _ = reply.send(fanned.clone());
                }
                sink(f.slot, fanned);
            }
            sink(slot, outcome);
        }
    }
}
