//! Pipeline stage 3 — **execution**: the sharded work-stealing fan-out
//! of one shared physical scan across the worker pool.
//!
//! The feed ([`sc_stream::ShardedPass`]) exposes the repository as
//! zero-copy contiguous shards; [`sc_stream::FeedCursor`] hands
//! `(job, shard)` units to whichever worker is free, with every job
//! observing every shard in repository order — so per-query state
//! evolves exactly as in a solo run while a heavy query no longer pins
//! a static chunk of the pool. With a single worker the fan-out runs
//! shard-major on the epoch thread itself (cache-hot across jobs).
//!
//! In serve mode under
//! [`AdmissionMode::Aligned`](crate::AdmissionMode), the epoch thread
//! is not idle while the workers run: it drains the submission channel
//! into the pending-arrival buffer (the **non-blocking accept** half of
//! the pipeline — see [`alignment`](crate::alignment) for the splice
//! that happens at the scan boundary). The single-worker path drains
//! between shards instead, so responsiveness does not depend on the
//! worker count.

use crate::admission::{Inflight, Intake, PendingArrival};
use crate::metrics::ServiceMetrics;
use crate::service::Service;
use crate::tenants::RepositoryGeneration;
use sc_stream::{Claim, ShardedPass};
use std::sync::Mutex;
use std::time::Duration;

/// How long the epoch thread blocks on the channel per drain round
/// while the threaded fan-out runs — the upper bound on how late it
/// notices the feed finished, and the floor of a pending arrival's
/// drain latency under an idle channel.
const DRAIN_TICK: Duration = Duration::from_micros(200);

/// Everything the epoch thread needs to accept arrivals while the
/// fan-out runs: the intake to drain, the pending buffer the splice
/// will consume, and the service context for answering cache hits on
/// the spot (a hit needs neither a slot nor the scan, so it never
/// waits for the boundary).
pub(crate) struct ArrivalDrain<'x, 'rx> {
    pub service: &'x Service,
    pub gen: &'x RepositoryGeneration,
    pub intake: &'x mut Intake<'rx>,
    pub pending: &'x mut Vec<PendingArrival>,
    pub limit: usize,
    pub metrics: &'x mut ServiceMetrics,
}

impl ArrivalDrain<'_, '_> {
    /// One drain round: pull arrivals (blocking at most `wait` on the
    /// channel), answer the cache hits among the *newly* drained ones
    /// immediately, keep the misses pending for the splice. Arrivals
    /// that already missed are not re-probed every round — only
    /// retirement on this same thread can insert, so a pending miss
    /// stays a miss until the scan boundary (where the splice probes
    /// once more, covering the shared-cache twin case).
    fn tick(&mut self, wait: Duration) {
        let fresh_from = self.pending.len();
        self.intake.poll_into(self.pending, self.limit, wait);
        self.service
            .answer_drained_hits(self.gen, self.pending, fresh_from, self.metrics);
    }

    /// `true` while another arrival could still be accepted.
    fn more_expected(&self) -> bool {
        self.intake.draining_rx() && self.pending.len() < self.limit
    }
}

/// Runs one scan's fan-out to completion. With `drain` set (serve
/// mode, aligned admission), the epoch thread concurrently drains
/// arrivals into the pending buffer.
pub(crate) fn fan_out<'g>(
    feed: &ShardedPass<'g>,
    inflight: &mut [(usize, Inflight<'g>)],
    workers: usize,
    drain: Option<&mut ArrivalDrain<'_, '_>>,
) {
    let workers = workers.min(inflight.len());
    if workers > 1 {
        threaded(feed, inflight, workers, drain);
    } else {
        // Single worker: shard-major order keeps each shard's
        // repository slices cache-hot across the jobs, and every job
        // still sees shards in ascending (= repository) order. The
        // channel is drained between shards (pure try_recv).
        let mut drain = drain;
        for s in 0..feed.num_shards() {
            for (_, fl) in inflight.iter_mut() {
                fl.job.absorb_shard(&mut feed.shard(s));
            }
            if let Some(drain) = drain.as_mut() {
                drain.tick(Duration::ZERO);
            }
        }
    }
}

/// Work-stealing fan-out: the feed cursor hands `(job, shard)` units
/// to whichever worker is free — each job still observes every shard
/// in repository order with at most one worker inside it at a time
/// (the cursor's claim is the exclusivity protocol; the mutex
/// satisfies the borrow checker and is uncontended by construction),
/// so per-query state evolves exactly as in a solo run while a heavy
/// query no longer stalls a statically assigned worker's whole chunk.
fn threaded<'g>(
    feed: &ShardedPass<'g>,
    inflight: &mut [(usize, Inflight<'g>)],
    workers: usize,
    mut drain: Option<&mut ArrivalDrain<'_, '_>>,
) {
    let slots: Vec<Mutex<&mut Inflight<'g>>> =
        inflight.iter_mut().map(|(_, fl)| Mutex::new(fl)).collect();
    let cursor = feed.cursor(slots.len());
    /// Aborts the feed if the owning worker unwinds mid-unit: its
    /// consumer would stay claimed forever, and siblings would spin on
    /// `Retry` instead of letting the scope join and propagate the
    /// panic.
    struct AbortOnUnwind<'c>(&'c sc_stream::FeedCursor);
    impl Drop for AbortOnUnwind<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.abort();
            }
        }
    }
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let _guard = AbortOnUnwind(&cursor);
                loop {
                    match cursor.claim() {
                        Claim::Shard { consumer, shard } => {
                            let mut fl = slots[consumer].lock().expect("job slot poisoned");
                            fl.job.absorb_shard(&mut feed.shard(shard));
                            drop(fl);
                            cursor.complete(consumer, shard);
                        }
                        Claim::Retry => std::thread::yield_now(),
                        Claim::Done => break,
                    }
                }
            });
        }
        // Non-blocking accept: while the workers chew through the
        // feed, the epoch thread drains arrivals (answering cache hits
        // immediately, queueing the rest for the splice at the scan
        // boundary), blocking at most DRAIN_TICK per round so the
        // feed's completion is noticed promptly. Once nothing more can
        // arrive (channel idle at limit, closed, or a reload pending),
        // fall through to the scope join.
        if let Some(drain) = drain.as_mut() {
            while cursor.remaining() > 0 && !cursor.is_aborted() {
                if !drain.more_expected() {
                    break;
                }
                drain.tick(DRAIN_TICK);
            }
        }
    });
}
