//! Pipeline stage 3 — **execution**: the sharded work-stealing fan-out
//! of one shared physical scan across the worker pool.
//!
//! The feed ([`sc_stream::ShardedPass`]) exposes the repository as
//! zero-copy contiguous shards; [`sc_stream::FeedCursor`] hands
//! `(job, shard)` units to whichever worker is free, with every job
//! observing every shard in repository order — so per-query state
//! evolves exactly as in a solo run while a heavy query no longer pins
//! a static chunk of the pool. With a single worker the fan-out runs
//! shard-major on the epoch thread itself (cache-hot across jobs).
//!
//! Under shard-granular gating
//! ([`InterleaveMode::Shard`](crate::InterleaveMode)), the fan-out
//! additionally attaches this lane's grid to the service-wide
//! [`sc_stream::InterleavedCursor`] and holds one [`FairGate`] unit
//! per absorbed shard ([`ShardInterleave`]): all granted tenant lanes
//! advance their in-flight epochs through the machine concurrently,
//! with deficit round robin charged per `(tenant, shard)` unit instead
//! of per epoch.
//!
//! In serve mode under
//! [`AdmissionMode::Aligned`](crate::AdmissionMode), the epoch thread
//! is not idle while the workers run: it drains the submission channel
//! into the pending-arrival buffer (the **non-blocking accept** half of
//! the pipeline — see [`alignment`](crate::alignment) for the splice
//! that happens at the scan boundary). The single-worker path drains
//! between shards instead, so responsiveness does not depend on the
//! worker count.

use crate::admission::{Inflight, Intake, PendingArrival};
use crate::fairness::FairGate;
use crate::metrics::ServiceMetrics;
use crate::service::Service;
use crate::tenants::{RepositoryGeneration, TenantCounters};
use sc_stream::{Claim, InterleavedCursor, LaneFeed, ShardedPass};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// How long the epoch thread blocks on the channel per drain round
/// while the threaded fan-out runs — the upper bound on how late it
/// notices the feed finished, and the floor of a pending arrival's
/// drain latency under an idle channel.
const DRAIN_TICK: Duration = Duration::from_micros(200);

/// Everything the epoch thread needs to accept arrivals while the
/// fan-out runs: the intake to drain, the pending buffer the splice
/// will consume, and the service context for answering cache hits on
/// the spot (a hit needs neither a slot nor the scan, so it never
/// waits for the boundary).
pub(crate) struct ArrivalDrain<'x, 'rx> {
    pub service: &'x Service,
    pub gen: &'x RepositoryGeneration,
    pub intake: &'x mut Intake<'rx>,
    pub pending: &'x mut Vec<PendingArrival>,
    pub limit: usize,
    pub metrics: &'x mut ServiceMetrics,
}

impl ArrivalDrain<'_, '_> {
    /// One drain round: pull arrivals (blocking at most `wait` on the
    /// channel), answer the cache hits among the *newly* drained ones
    /// immediately, keep the misses pending for the splice. Arrivals
    /// that already missed are not re-probed every round — only
    /// retirement on this same thread can insert, so a pending miss
    /// stays a miss until the scan boundary (where the splice probes
    /// once more, covering the shared-cache twin case).
    fn tick(&mut self, wait: Duration) {
        let fresh_from = self.pending.len();
        self.intake.poll_into(self.pending, self.limit, wait);
        self.service
            .answer_drained_hits(self.gen, self.pending, fresh_from, self.metrics);
    }

    /// `true` while another arrival could still be accepted.
    fn more_expected(&self) -> bool {
        self.intake.draining_rx() && self.pending.len() < self.limit
    }
}

/// Everything the shard-granular fan-out needs to interleave this
/// lane's scan with its neighbours': the machine-wide [`FairGate`]
/// (in [`GrantUnit::Shard`](crate::fairness::GrantUnit) mode) metering
/// `(tenant, shard)` units, the shared [`InterleavedCursor`] registry
/// every lane attaches its feed to, and the tenant's counters for the
/// per-tenant `shard_grants` tally.
pub(crate) struct ShardInterleave<'x> {
    pub gate: &'x FairGate,
    pub lane: usize,
    pub fanout: &'x InterleavedCursor,
    pub counters: &'x TenantCounters,
}

/// Runs one scan's fan-out to completion. With `drain` set (serve
/// mode, aligned admission), the epoch thread concurrently drains
/// arrivals into the pending buffer. With `interleave` set (serve
/// mode, shard-granular gating), the fan-out goes through the shared
/// multi-lane cursor with one gate unit held per absorbed shard;
/// returns the number of units granted (zero on the epoch-granular
/// paths, where the whole epoch was one grant).
pub(crate) fn fan_out<'g>(
    feed: &ShardedPass<'g>,
    inflight: &mut [(usize, Inflight<'g>)],
    workers: usize,
    drain: Option<&mut ArrivalDrain<'_, '_>>,
    interleave: Option<&ShardInterleave<'_>>,
) -> usize {
    if let Some(il) = interleave {
        return interleaved(feed, inflight, workers, drain, il);
    }
    let workers = workers.min(inflight.len());
    if workers > 1 {
        threaded(feed, inflight, workers, drain);
    } else {
        // Single worker: shard-major order keeps each shard's
        // repository slices cache-hot across the jobs, and every job
        // still sees shards in ascending (= repository) order. The
        // channel is drained between shards (pure try_recv).
        let mut drain = drain;
        for s in 0..feed.num_shards() {
            for (_, fl) in inflight.iter_mut() {
                fl.job.absorb_shard(&mut feed.shard(s));
            }
            if let Some(drain) = drain.as_mut() {
                drain.tick(Duration::ZERO);
            }
        }
    }
    0
}

/// Shard-granular fan-out: this lane's `(job, shard)` grid attaches to
/// the shared [`InterleavedCursor`] registry, and every absorbed shard
/// holds one RAII unit from the machine-wide gate — so while this
/// epoch runs, the box is concurrently advancing every *other* granted
/// lane's epoch too, with DRR deciding whose units go next. Claim
/// before acquire: a worker blocked on the gate already holds its
/// consumer's claim, so its lane siblings steal other consumers
/// instead of racing it for this one, and no grant is ever wasted on a
/// worker with nothing to feed.
///
/// Per-lane scheduling semantics (every job sees every shard of its
/// own tenant's repository exactly once, in order) are [`LaneFeed`]'s
/// invariants — identical to the solo [`sc_stream::FeedCursor`], which
/// is what keeps per-query observables bit-identical to epoch mode.
fn interleaved<'g>(
    feed: &ShardedPass<'g>,
    inflight: &mut [(usize, Inflight<'g>)],
    workers: usize,
    mut drain: Option<&mut ArrivalDrain<'_, '_>>,
    il: &ShardInterleave<'_>,
) -> usize {
    let workers = workers.min(inflight.len());
    let lane_feed = il.fanout.attach(inflight.len(), feed.num_shards());
    if workers > 1 {
        let slots: Vec<Mutex<&mut Inflight<'g>>> =
            inflight.iter_mut().map(|(_, fl)| Mutex::new(fl)).collect();
        let units = AtomicUsize::new(0);
        /// Lane-scoped twin of `AbortOnUnwind`: a dying worker aborts
        /// only its own lane's feed (a cross-lane abort would let a
        /// healthy lane's fan-out return with an incomplete scan).
        struct AbortLaneOnUnwind<'c, 'f>(&'c LaneFeed<'f>);
        impl Drop for AbortLaneOnUnwind<'_, '_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.abort();
                }
            }
        }
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| {
                    let _guard = AbortLaneOnUnwind(&lane_feed);
                    loop {
                        match lane_feed.claim() {
                            Claim::Shard { consumer, shard } => {
                                let _unit = il.gate.acquire_unit(il.lane);
                                let mut fl = slots[consumer].lock().expect("job slot poisoned");
                                fl.job.absorb_shard(&mut feed.shard(shard));
                                drop(fl);
                                il.counters.bump_shard_grant();
                                units.fetch_add(1, Ordering::Relaxed);
                                lane_feed.complete(consumer, shard);
                            }
                            Claim::Retry => std::thread::yield_now(),
                            Claim::Done => break,
                        }
                    }
                });
            }
            // Same non-blocking accept as the epoch-granular path.
            if let Some(drain) = drain.as_mut() {
                while lane_feed.remaining() > 0 && !lane_feed.is_aborted() {
                    if !drain.more_expected() {
                        break;
                    }
                    drain.tick(DRAIN_TICK);
                }
            }
        });
        units.into_inner()
    } else {
        // Single worker: the claim loop runs on the epoch thread, one
        // gate unit per shard, draining the channel between units so
        // responsiveness matches the epoch-granular single-worker path.
        let mut units = 0;
        loop {
            match lane_feed.claim() {
                Claim::Shard { consumer, shard } => {
                    let _unit = il.gate.acquire_unit(il.lane);
                    inflight[consumer]
                        .1
                        .job
                        .absorb_shard(&mut feed.shard(shard));
                    il.counters.bump_shard_grant();
                    units += 1;
                    lane_feed.complete(consumer, shard);
                    if let Some(drain) = drain.as_mut() {
                        drain.tick(Duration::ZERO);
                    }
                }
                Claim::Retry => std::thread::yield_now(),
                Claim::Done => break,
            }
        }
        units
    }
}

/// Work-stealing fan-out: the feed cursor hands `(job, shard)` units
/// to whichever worker is free — each job still observes every shard
/// in repository order with at most one worker inside it at a time
/// (the cursor's claim is the exclusivity protocol; the mutex
/// satisfies the borrow checker and is uncontended by construction),
/// so per-query state evolves exactly as in a solo run while a heavy
/// query no longer stalls a statically assigned worker's whole chunk.
fn threaded<'g>(
    feed: &ShardedPass<'g>,
    inflight: &mut [(usize, Inflight<'g>)],
    workers: usize,
    mut drain: Option<&mut ArrivalDrain<'_, '_>>,
) {
    let slots: Vec<Mutex<&mut Inflight<'g>>> =
        inflight.iter_mut().map(|(_, fl)| Mutex::new(fl)).collect();
    let cursor = feed.cursor(slots.len());
    /// Aborts the feed if the owning worker unwinds mid-unit: its
    /// consumer would stay claimed forever, and siblings would spin on
    /// `Retry` instead of letting the scope join and propagate the
    /// panic.
    struct AbortOnUnwind<'c>(&'c sc_stream::FeedCursor);
    impl Drop for AbortOnUnwind<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.abort();
            }
        }
    }
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let _guard = AbortOnUnwind(&cursor);
                loop {
                    match cursor.claim() {
                        Claim::Shard { consumer, shard } => {
                            let mut fl = slots[consumer].lock().expect("job slot poisoned");
                            fl.job.absorb_shard(&mut feed.shard(shard));
                            drop(fl);
                            cursor.complete(consumer, shard);
                        }
                        Claim::Retry => std::thread::yield_now(),
                        Claim::Done => break,
                    }
                }
            });
        }
        // Non-blocking accept: while the workers chew through the
        // feed, the epoch thread drains arrivals (answering cache hits
        // immediately, queueing the rest for the splice at the scan
        // boundary), blocking at most DRAIN_TICK per round so the
        // feed's completion is noticed promptly. Once nothing more can
        // arrive (channel idle at limit, closed, or a reload pending),
        // fall through to the scope join.
        if let Some(drain) = drain.as_mut() {
            while cursor.remaining() > 0 && !cursor.is_aborted() {
                if !drain.more_expected() {
                    break;
                }
                drain.tick(DRAIN_TICK);
            }
        }
    });
}
