//! Pipeline stage 1 — **admission**: intake from the submission
//! channel, cache probe, coalesce-or-build disposition.
//!
//! Every submission is disposed of exactly once, through
//! [`Service::admit_or_answer`]: answered from the outcome cache in
//! zero scans, attached to an identical in-flight job as a follower
//! ([`ServiceConfig::coalesce`](crate::ServiceConfig)), or built into a
//! fresh [`Inflight`] job the scheduler owns until retirement. The
//! [`Intake`] wraps the channel with the two pieces of state admission
//! threads through the pipeline: a *backlog* of query submissions
//! already pulled but deferred (a full inflight window), and the
//! pending [`ReloadRequest`] that ends the current repository
//! generation — once one is captured, no further channel pulls happen
//! until the scheduler swaps generations, so every query keeps running
//! against the repository it was submitted under.

use crate::job::{make_job, CoverJob};
use crate::metrics::ServiceMetrics;
use crate::query::{QueryOutcome, QuerySpec};
use crate::service::Service;
use crate::telemetry::tel;
use crate::tenants::RepositoryGeneration;
use sc_setsystem::SetSystem;
use sc_stream::SetStream;
use sc_telemetry::EventKind;
use std::collections::VecDeque;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::time::{Duration, Instant};

/// What clients push down the submission channel.
pub(crate) enum Submission {
    /// A cover query to answer.
    Query(QuerySubmission),
    /// A repository hot swap
    /// ([`ServiceHandle::reload`](crate::ServiceHandle::reload)).
    Reload(ReloadRequest),
}

/// One submitted query, as carried by the channel.
pub(crate) struct QuerySubmission {
    pub id: u64,
    pub spec: QuerySpec,
    pub submitted: Instant,
    pub reply: SyncSender<QueryOutcome>,
}

/// A pending repository swap: the next generation's content plus the
/// channel the new generation id is announced on once in-flight work
/// drained.
pub(crate) struct ReloadRequest {
    pub system: SetSystem,
    pub reply: SyncSender<u64>,
}

/// One admitted query inside the epoch loop.
pub(crate) struct Inflight<'a> {
    pub id: u64,
    pub spec: QuerySpec,
    pub job: Box<dyn CoverJob<'a> + 'a>,
    pub submitted: Instant,
    pub admitted: Instant,
    /// `None` in batch mode (outcomes are returned positionally).
    pub reply: Option<SyncSender<QueryOutcome>>,
    /// Identical queries coalesced onto this job
    /// ([`ServiceConfig::coalesce`](crate::ServiceConfig)); retirement
    /// fans a reply out per follower.
    pub followers: Vec<Follower>,
}

/// A query riding an identical in-flight job instead of running.
pub(crate) struct Follower {
    /// Batch-mode outcome slot (mirrors the id in serve mode).
    pub slot: usize,
    pub id: u64,
    pub submitted: Instant,
    /// When the query attached to the job (its queue wait ends here).
    pub attached: Instant,
    /// `None` in batch mode.
    pub reply: Option<SyncSender<QueryOutcome>>,
}

/// How one submission was disposed of by
/// [`Service::admit_or_answer`].
pub(crate) enum Admitted<'a> {
    /// A fresh job the caller must admit into the scan epochs.
    Job(Inflight<'a>),
    /// Attached to an identical in-flight job as a follower; that
    /// job's retirement answers it.
    Coalesced,
    /// Answered immediately from the outcome cache.
    Answered,
}

/// The serve-mode intake: the submission channel plus the deferred-work
/// state admission threads through the pipeline stages.
pub(crate) struct Intake<'rx> {
    rx: &'rx Receiver<Submission>,
    /// `false` once every [`ServiceHandle`](crate::ServiceHandle)
    /// clone was dropped — the channel yields nothing further.
    pub open: bool,
    /// A captured reload: ends the current generation. While set, no
    /// further channel pulls happen (submissions behind the reload wait
    /// for the next generation), but the backlog — pulled *before* the
    /// reload — still drains on the current one.
    pub reload: Option<ReloadRequest>,
    /// Query submissions pulled but deferred by a full inflight window;
    /// consumed before the channel so arrival order is preserved.
    pub backlog: VecDeque<QuerySubmission>,
}

impl<'rx> Intake<'rx> {
    pub fn new(rx: &'rx Receiver<Submission>) -> Self {
        Self {
            rx,
            open: true,
            reload: None,
            backlog: VecDeque::new(),
        }
    }

    /// `true` while the channel may still yield submissions for the
    /// *current* generation (open, and no reload pending).
    pub fn draining_rx(&self) -> bool {
        self.open && self.reload.is_none()
    }

    /// Routes one received submission: queries come back, a reload is
    /// captured into [`reload`](Intake::reload) (ending channel pulls).
    fn route(&mut self, sub: Submission) -> Option<QuerySubmission> {
        match sub {
            Submission::Query(q) => Some(q),
            Submission::Reload(r) => {
                self.reload = Some(r);
                None
            }
        }
    }

    /// Pulls the next query without blocking: backlog first, then the
    /// channel. `None` when nothing is immediately available (or the
    /// channel closed / a reload was captured).
    pub fn pull_nonblocking(&mut self) -> Option<QuerySubmission> {
        if let Some(q) = self.backlog.pop_front() {
            return Some(q);
        }
        if !self.draining_rx() {
            return None;
        }
        match self.rx.try_recv() {
            Ok(sub) => self.route(sub),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.open = false;
                None
            }
        }
    }

    /// Pulls the next query, blocking on the channel while it can still
    /// yield one (an idle scheduler waiting for work). `None` when the
    /// channel closed or a reload was captured.
    pub fn pull_blocking(&mut self) -> Option<QuerySubmission> {
        if let Some(q) = self.backlog.pop_front() {
            return Some(q);
        }
        if !self.draining_rx() {
            return None;
        }
        match self.rx.recv() {
            Ok(sub) => self.route(sub),
            Err(_) => {
                self.open = false;
                None
            }
        }
    }

    /// Pulls the next query, blocking until `deadline` at most — the
    /// admission-window wait. `None` on timeout, channel close, or a
    /// captured reload (the caller distinguishes timeout by the clock).
    pub fn pull_deadline(&mut self, deadline: Instant) -> Option<QuerySubmission> {
        if let Some(q) = self.backlog.pop_front() {
            return Some(q);
        }
        self.pull_channel_deadline(deadline)
    }

    /// Like [`pull_deadline`](Intake::pull_deadline) but watching the
    /// *channel only* — the backlog is left untouched. The splice's
    /// window wait uses this: backlog entries were already examined
    /// and deferred (no slot, no leader), so re-pulling them would
    /// cycle them through the splice forever without ever reaching
    /// the deadline check; only a genuinely new arrival can release
    /// the window.
    pub fn pull_channel_deadline(&mut self, deadline: Instant) -> Option<QuerySubmission> {
        if !self.draining_rx() {
            return None;
        }
        match self
            .rx
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
        {
            Ok(sub) => self.route(sub),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => {
                self.open = false;
                None
            }
        }
    }

    /// Drains arrivals into `pending` while a scan's fan-out runs — the
    /// non-blocking accept path. Blocks at most `wait` (once, on the
    /// channel) so the caller can interleave this with progress checks;
    /// `Duration::ZERO` makes it a pure `try_recv` drain. Stops at
    /// `limit` pending arrivals, on an empty channel, and on
    /// close/reload.
    pub fn poll_into(&mut self, pending: &mut Vec<PendingArrival>, limit: usize, wait: Duration) {
        let mut may_block = wait > Duration::ZERO;
        while pending.len() < limit {
            if let Some(q) = self.backlog.pop_front() {
                pending.push(PendingArrival {
                    drained: Instant::now(),
                    sub: q,
                });
                continue;
            }
            if !self.draining_rx() {
                return;
            }
            let sub = if may_block {
                may_block = false;
                match self.rx.recv_timeout(wait) {
                    Ok(sub) => Ok(sub),
                    Err(RecvTimeoutError::Timeout) => return,
                    Err(RecvTimeoutError::Disconnected) => Err(()),
                }
            } else {
                match self.rx.try_recv() {
                    Ok(sub) => Ok(sub),
                    Err(TryRecvError::Empty) => return,
                    Err(TryRecvError::Disconnected) => Err(()),
                }
            };
            match sub {
                Ok(sub) => {
                    if let Some(q) = self.route(sub) {
                        pending.push(PendingArrival {
                            drained: Instant::now(),
                            sub: q,
                        });
                    } else {
                        return; // reload captured: stop pulling
                    }
                }
                Err(()) => {
                    self.open = false;
                    return;
                }
            }
        }
    }
}

/// A query that arrived while a scan's fan-out was running, committed
/// to that scan and waiting to be spliced at its boundary
/// ([`alignment::splice_pending`](crate::alignment::splice_pending)).
pub(crate) struct PendingArrival {
    pub sub: QuerySubmission,
    /// When the scheduler accepted it into the in-flight scan — the
    /// end of its queue wait (the scan it will observe, via the
    /// boundary replay, is already running on its behalf).
    pub drained: Instant,
}

impl Service {
    /// Attaches a query to an identical in-flight job as a follower
    /// (when [`ServiceConfig::coalesce`](crate::ServiceConfig) is on
    /// and such a job exists). Returns `true` when the query was
    /// coalesced — it will be answered by that job's retirement and
    /// must not become a job of its own. The cache is consulted
    /// *before* this (a retired answer in zero scans beats waiting for
    /// an in-flight job), so coalescing only ever sees cache misses.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_coalesce<'a>(
        &self,
        gen: &RepositoryGeneration,
        spec: &QuerySpec,
        slot: usize,
        id: u64,
        submitted: Instant,
        attached: Instant,
        reply: Option<SyncSender<QueryOutcome>>,
        inflight: &mut [(usize, Inflight<'a>)],
    ) -> bool {
        if !self.config().coalesce {
            return false;
        }
        let Some((_, leader)) = inflight.iter_mut().find(|(_, fl)| fl.spec == *spec) else {
            return false;
        };
        debug_assert_eq!(
            leader.spec.to_string(),
            spec.to_string(),
            "coalesce keys must agree on the canonical spec"
        );
        tel().coalesced.incr();
        sc_telemetry::event(EventKind::Coalesced, id, gen.id, 0, 0);
        leader.followers.push(Follower {
            slot,
            id,
            submitted,
            attached,
            reply,
        });
        true
    }

    /// Answers one submission from the cache (delivering the outcome
    /// immediately), coalesces it onto an identical in-flight job, or
    /// builds its job; only the last case hands work back to the
    /// caller. `at` is the admission instant recorded for the query —
    /// "now" at an epoch boundary, the drain instant for an arrival
    /// committed to an in-flight scan.
    pub(crate) fn admit_or_answer<'g>(
        &self,
        gen: &RepositoryGeneration,
        sub: QuerySubmission,
        root: &SetStream<'g>,
        inflight: &mut [(usize, Inflight<'g>)],
        metrics: &mut ServiceMetrics,
        at: Instant,
    ) -> Admitted<'g> {
        if let Some(answer) = self.cache_lookup(gen, &sub.spec) {
            let outcome = self.cached_outcome(gen, sub.id, sub.spec, sub.submitted, answer);
            self.deliver_cached(gen, &outcome, metrics);
            // The client may have dropped its ticket; that is fine.
            let _ = sub.reply.send(outcome);
            return Admitted::Answered;
        }
        if self.try_coalesce(
            gen,
            &sub.spec,
            sub.id as usize,
            sub.id,
            sub.submitted,
            at,
            Some(sub.reply.clone()),
            inflight,
        ) {
            metrics.coalesced += 1;
            return Admitted::Coalesced;
        }
        if self.cache_enabled() {
            metrics.cache_misses += 1;
            tel().cache_misses.incr();
        }
        metrics.jobs += 1;
        tel().jobs.incr();
        Admitted::Job(Inflight {
            id: sub.id,
            spec: sub.spec,
            job: make_job(&sub.spec, root),
            submitted: sub.submitted,
            admitted: at,
            reply: Some(sub.reply),
            followers: Vec::new(),
        })
    }

    /// Disposes of one submission that found the inflight window full:
    /// a duplicate of an in-flight leader still answers — from the
    /// cache first (a *shared* cache can hold a retired answer even
    /// while a twin job is in flight, and zero scans beats waiting on
    /// it), else by coalescing onto the leader. Returns `Err(sub)`
    /// when there is no leader (the submission must wait for a slot);
    /// the side-effecting cache lookup only runs when a leader
    /// guarantees disposal either way, so a deferred submission is
    /// never counted as a miss twice. `Ok(true)` means the query
    /// coalesced (the window's company arrived).
    pub(crate) fn dispose_past_full_window<'g>(
        &self,
        gen: &RepositoryGeneration,
        sub: QuerySubmission,
        inflight: &mut [(usize, Inflight<'g>)],
        metrics: &mut ServiceMetrics,
        attached: Instant,
    ) -> Result<bool, QuerySubmission> {
        let has_leader =
            self.config().coalesce && inflight.iter().any(|(_, fl)| fl.spec == sub.spec);
        if !has_leader {
            return Err(sub);
        }
        if let Some(answer) = self.cache_lookup(gen, &sub.spec) {
            let outcome = self.cached_outcome(gen, sub.id, sub.spec, sub.submitted, answer);
            self.deliver_cached(gen, &outcome, metrics);
            let _ = sub.reply.send(outcome);
            return Ok(false);
        }
        let coalesced = self.try_coalesce(
            gen,
            &sub.spec,
            sub.id as usize,
            sub.id,
            sub.submitted,
            attached,
            Some(sub.reply.clone()),
            inflight,
        );
        debug_assert!(coalesced, "the leader cannot vanish mid-disposal");
        metrics.coalesced += 1;
        Ok(true)
    }

    /// Answers the cache hits among the arrivals drained at indices
    /// `from..` right away — a hit needs neither an inflight slot nor
    /// the scan, so making it wait for the splice at the scan boundary
    /// would add an epoch of latency for nothing. Each arrival is
    /// probed exactly once here; misses stay pending (the splice
    /// probes once more at the boundary, which can even catch an entry
    /// a twin job populated in the meantime; that second probe shows
    /// up only in [`OutcomeCache::stats`](crate::OutcomeCache::stats)
    /// miss counts, never in [`ServiceMetrics`]).
    pub(crate) fn answer_drained_hits(
        &self,
        gen: &RepositoryGeneration,
        pending: &mut Vec<PendingArrival>,
        from: usize,
        metrics: &mut ServiceMetrics,
    ) {
        if !self.cache_enabled() || from >= pending.len() {
            return;
        }
        let fresh = pending.split_off(from);
        for arrival in fresh {
            let Some(answer) = self.cache_lookup(gen, &arrival.sub.spec) else {
                pending.push(arrival);
                continue;
            };
            let outcome = self.cached_outcome(
                gen,
                arrival.sub.id,
                arrival.sub.spec,
                arrival.sub.submitted,
                answer,
            );
            self.deliver_cached(gen, &outcome, metrics);
            let _ = arrival.sub.reply.send(outcome);
        }
    }

    /// Builds the outcome of a cache hit: the stored solo observables
    /// (bit-identical to the run that populated the entry) under the
    /// caller's submission timing, in zero physical scans.
    pub(crate) fn cached_outcome(
        &self,
        gen: &RepositoryGeneration,
        id: u64,
        spec: QuerySpec,
        submitted: Instant,
        answer: crate::cache::CachedAnswer,
    ) -> QueryOutcome {
        QueryOutcome {
            id,
            spec,
            cover: answer.cover,
            covered: answer.covered,
            required: answer.required,
            logical_passes: answer.logical_passes,
            space_words: answer.space_words,
            epochs_joined: 0,
            queue_wait: submitted.elapsed(),
            latency: submitted.elapsed(),
            cached: true,
            coalesced: false,
            generation: gen.id,
            tenant: gen.tenant.name_handle(),
        }
    }

    /// Records a cache hit's metrics (service counters + histograms,
    /// plus the owning tenant's live counters).
    pub(crate) fn deliver_cached(
        &self,
        gen: &RepositoryGeneration,
        outcome: &QueryOutcome,
        metrics: &mut ServiceMetrics,
    ) {
        metrics.cache_hits += 1;
        metrics.queries_completed += 1;
        metrics.queue_wait.record(outcome.queue_wait);
        metrics.latency.record(outcome.latency);
        gen.tenant.counters().bump_cache_hit();
        gen.tenant.counters().bump_completed();
        tel().cache_hits.incr();
        tel().completed.incr();
        sc_telemetry::event(EventKind::CacheHit, outcome.id, outcome.generation, 0, 0);
    }

    /// Cache lookup under a generation's repository identity (the
    /// owning tenant's cache partition, keyed by fingerprint, plus the
    /// dimension cross-check).
    pub(crate) fn cache_lookup(
        &self,
        gen: &RepositoryGeneration,
        spec: &QuerySpec,
    ) -> Option<crate::cache::CachedAnswer> {
        self.cache().lookup(
            gen.tenant.id(),
            gen.fingerprint,
            gen.system.universe(),
            gen.system.num_sets(),
            spec,
        )
    }

    /// `true` when this service actually caches outcomes — a disabled
    /// cache neither stores answers nor counts traffic
    /// ([`ServiceMetrics::cache_misses`] stays zero, matching
    /// [`OutcomeCache::stats`](crate::OutcomeCache::stats)'s
    /// disabled-cache semantics).
    pub(crate) fn cache_enabled(&self) -> bool {
        self.cache().capacity() > 0
    }
}
