//! The scan-epoch scheduler: admission, shared scans, worker fan-out,
//! mid-stream joins, and the outcome cache.

use crate::cache::{CachedAnswer, OutcomeCache};
use crate::job::{make_job, CoverJob};
use crate::metrics::ServiceMetrics;
use crate::query::{QueryOutcome, QuerySpec};
use sc_bitset::BitSet;
use sc_setsystem::SetSystem;
use sc_stream::{Claim, ScanLedger, SetStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Queries admitted into concurrent scan epochs at once; admission
    /// beyond this waits for a slot (the scheduler's half of
    /// backpressure).
    pub max_inflight: usize,
    /// Worker threads fanning out per-query state updates within one
    /// scan (`std::thread::scope`; the queries are disjoint state, so
    /// the fan-out never touches accounting). `1` disables threading.
    pub workers: usize,
    /// Bound of the submission queue; [`ServiceHandle::submit`] blocks
    /// once this many queries wait unadmitted (the client's half of
    /// backpressure).
    pub queue_depth: usize,
    /// Entries the outcome cache may hold (`0` disables caching).
    /// Ignored when the service is built with
    /// [`Service::with_cache`], which brings its own cache.
    pub cache_capacity: usize,
    /// How long the scheduler holds the *first* scan of a fresh epoch
    /// group open for mid-stream joiners (serve mode only; zero — the
    /// default — admits mid-stream without ever blocking). A burst
    /// arriving just behind the group's head then rides the same
    /// physical scan instead of paying an extra epoch of queue wait.
    ///
    /// This is a batching knob for bursty load, and it has a cost on
    /// sparse traffic: every query that starts a fresh group waits up
    /// to the full window for company before its first scan's fan-out
    /// runs, so a strict request-response client pays the window per
    /// query. Leave it at zero unless clients submit in bursts.
    pub admission_window: Duration,
    /// Sets per shard of the zero-copy repository feed the epoch
    /// fan-out drives jobs with ([`sc_stream::ShardedPass`]): the
    /// work-stealing granularity of the worker pool. Smaller shards
    /// balance heterogeneous jobs better; larger shards amortise the
    /// per-claim bookkeeping. The observables are unaffected either
    /// way — every job sees every shard in repository order.
    pub shard_size: usize,
    /// Collapse identical in-flight queries into one job: a query
    /// whose spec matches a job already inside the scan epochs (and
    /// misses the outcome cache) attaches to that job as a *follower*
    /// instead of running — the job's retirement fans a reply out per
    /// follower and populates the cache once, so N identical
    /// concurrent clients cost one query's CPU as well as one query's
    /// scans. Off by default: coalescing changes the timing metrics
    /// (`epochs_joined`, queue waits) of duplicate queries, and the
    /// uncoalesced path is the baseline experiments E17/E18 pin.
    /// Covers, logical passes, and space peaks are bit-identical
    /// either way (the queries are deterministic given their spec).
    pub coalesce: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
            queue_depth: 256,
            cache_capacity: 256,
            admission_window: Duration::ZERO,
            shard_size: 256,
            coalesce: false,
        }
    }
}

/// Error returned when the service has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service closed")
    }
}

impl std::error::Error for ServiceClosed {}

/// A pending reply for one submitted query.
#[derive(Debug)]
pub struct QueryTicket {
    /// The service-assigned query id.
    pub id: u64,
    rx: Receiver<QueryOutcome>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler exited before serving it.
    pub fn wait(self) -> Result<QueryOutcome, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }
}

/// Clonable submission endpoint handed to client code by
/// [`Service::serve`]. Dropping every clone closes the queue; the
/// scheduler then drains what is inflight and exits.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: SyncSender<Submission>,
    counter: Arc<AtomicU64>,
}

impl ServiceHandle {
    /// Enqueues a query; blocks when the submission queue is full.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler already exited.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryTicket, ServiceClosed> {
        let (reply, rx) = mpsc::sync_channel(1);
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Submission {
                id,
                spec,
                submitted: Instant::now(),
                reply,
            })
            .map_err(|_| ServiceClosed)?;
        Ok(QueryTicket { id, rx })
    }
}

struct Submission {
    id: u64,
    spec: QuerySpec,
    submitted: Instant,
    reply: SyncSender<QueryOutcome>,
}

/// One admitted query inside the epoch loop.
struct Inflight<'a> {
    id: u64,
    spec: QuerySpec,
    job: Box<dyn CoverJob<'a> + 'a>,
    submitted: Instant,
    admitted: Instant,
    epochs_joined: usize,
    /// `None` in batch mode (outcomes are returned positionally).
    reply: Option<SyncSender<QueryOutcome>>,
    /// Identical queries coalesced onto this job
    /// ([`ServiceConfig::coalesce`]); retirement fans a reply out per
    /// follower.
    followers: Vec<Follower>,
}

/// A query riding an identical in-flight job instead of running.
struct Follower {
    /// Batch-mode outcome slot (mirrors the id in serve mode).
    slot: usize,
    id: u64,
    submitted: Instant,
    /// When the query attached to the job (its queue wait ends here).
    attached: Instant,
    /// `None` in batch mode.
    reply: Option<SyncSender<QueryOutcome>>,
}

/// How one submission was disposed of by
/// [`Service::admit_or_answer`].
enum Admitted<'a> {
    /// A fresh job the caller must admit into the scan epochs.
    Job(Inflight<'a>),
    /// Attached to an identical in-flight job as a follower; that
    /// job's retirement answers it.
    Coalesced,
    /// Answered immediately from the outcome cache.
    Answered,
}

/// Serve-mode plumbing threaded into [`Service::epoch`] so queries
/// arriving while a scan is in flight can join it mid-stream.
struct MidStream<'rx> {
    rx: &'rx Receiver<Submission>,
    open: &'rx mut bool,
    /// `true` when this epoch group just started from an idle
    /// scheduler — the admission window (if configured) holds this
    /// scan open for the rest of the burst.
    fresh_group: bool,
}

/// A multi-tenant, in-process cover-query engine over one repository.
///
/// The service holds the [`SetSystem`] and serves streams of cover
/// queries by batching them through shared physical scans: pending
/// queries are admitted into *scan epochs*, every admitted query
/// registers the logical pass it needs next, and one
/// [`SetStream::shared_pass`] per epoch advances all of them — so the
/// physical scan count of a group of concurrent queries is the *max*
/// of their logical pass counts, not the sum, exactly the accounting
/// the streaming model charges for parallel branches. Two further scale
/// levers ride on top: queries arriving while a scan is in flight join
/// it **mid-stream** (the scan's items are buffered, so a pass-1 joiner
/// still observes every item; [`ScanLedger::join`] keeps the physical
/// count honest), and repeat queries are answered from the
/// **outcome cache** in zero physical scans
/// ([`OutcomeCache`](crate::OutcomeCache)).
///
/// # Examples
///
/// ```
/// use sc_service::{QuerySpec, Service, ServiceConfig};
/// use sc_setsystem::gen;
///
/// let inst = gen::planted(256, 512, 8, 7);
/// let service = Service::new(inst.system, ServiceConfig::default());
/// let specs = vec![QuerySpec::IterCover { delta: 0.5, seed: 1 }; 8];
/// let (outcomes, metrics) = service.run_batch(&specs);
/// assert!(outcomes.iter().all(|o| o.goal_met()));
/// // Eight identical queries rode the same physical scans.
/// assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
/// ```
#[derive(Debug)]
pub struct Service {
    system: SetSystem,
    cfg: ServiceConfig,
    fingerprint: u64,
    cache: Arc<OutcomeCache>,
}

impl Service {
    /// Wraps a repository with the given configuration and a private
    /// outcome cache of `cfg.cache_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight`, `workers`, or `queue_depth` is zero.
    pub fn new(system: SetSystem, cfg: ServiceConfig) -> Self {
        let cache = Arc::new(OutcomeCache::new(cfg.cache_capacity));
        Self::with_cache(system, cfg, cache)
    }

    /// Wraps a repository with a shared outcome cache — several
    /// services (even over different repositories) can point at the
    /// same [`OutcomeCache`]; the repository content fingerprint in
    /// the cache key, backed by a per-hit dimension cross-check,
    /// keeps their answers apart (see [`OutcomeCache`] for the 64-bit
    /// collision caveat).
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight`, `workers`, or `queue_depth` is zero.
    pub fn with_cache(system: SetSystem, cfg: ServiceConfig, cache: Arc<OutcomeCache>) -> Self {
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        let fingerprint = OutcomeCache::fingerprint(&system);
        Self {
            system,
            cfg,
            fingerprint,
            cache,
        }
    }

    /// The repository being served.
    pub fn system(&self) -> &SetSystem {
        &self.system
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The outcome cache answering repeat queries.
    pub fn cache(&self) -> &Arc<OutcomeCache> {
        &self.cache
    }

    /// The fingerprint of the served repository — the cache-key half
    /// that keeps answers from different repositories apart.
    pub fn repository_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Solves a batch of queries through shared scan epochs, all
    /// admitted before the first scan (up to `max_inflight` at a time;
    /// repeats of an already-retired spec are answered from the cache,
    /// and — with [`ServiceConfig::coalesce`] — repeats of an
    /// *in-flight* spec attach to its job, neither occupying a slot).
    /// Outcomes come back in submission order.
    pub fn run_batch(&self, specs: &[QuerySpec]) -> (Vec<QueryOutcome>, ServiceMetrics) {
        let start = Instant::now();
        let root = SetStream::new(&self.system);
        let ledger = ScanLedger::new();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..specs.len()).map(|_| None).collect();
        let mut metrics = ServiceMetrics::default();
        let mut next = 0usize;
        let mut inflight: Vec<(usize, Inflight<'_>)> = Vec::new();
        loop {
            while next < specs.len() {
                let slot = next;
                if inflight.len() >= self.cfg.max_inflight {
                    // Only a fresh job needs an inflight slot: an
                    // identical spec is still disposed of past a full
                    // window — from the cache first (a *shared* cache
                    // can hold a retired answer even while a twin job
                    // is in flight, and zero scans beats waiting on
                    // it), else as a follower of the in-flight job.
                    // Anything else waits for a retirement. The
                    // side-effecting cache lookup only runs when a
                    // leader guarantees the query is disposed of
                    // either way, so a slot blocked on the window is
                    // never counted as a miss twice.
                    let has_leader =
                        self.cfg.coalesce && inflight.iter().any(|(_, fl)| fl.spec == specs[slot]);
                    if !has_leader {
                        break;
                    }
                    if let Some(answer) = self.cache_lookup(&specs[slot]) {
                        let outcome = self.cached_outcome(slot as u64, specs[slot], start, answer);
                        self.deliver_cached(&outcome, &mut metrics);
                        outcomes[slot] = Some(outcome);
                    } else {
                        let attached = self.try_coalesce(
                            &specs[slot],
                            slot,
                            slot as u64,
                            start,
                            None,
                            &mut inflight,
                        );
                        debug_assert!(attached, "the leader cannot vanish mid-admission");
                        metrics.coalesced += 1;
                    }
                    next += 1;
                    continue;
                }
                next += 1;
                if let Some(answer) = self.cache_lookup(&specs[slot]) {
                    // The whole batch is "submitted" when run_batch
                    // starts, so a hit's latency covers the epochs it
                    // waited for a slot, same as a job's would.
                    let outcome = self.cached_outcome(slot as u64, specs[slot], start, answer);
                    self.deliver_cached(&outcome, &mut metrics);
                    outcomes[slot] = Some(outcome);
                    continue;
                }
                if self.try_coalesce(&specs[slot], slot, slot as u64, start, None, &mut inflight) {
                    metrics.coalesced += 1;
                    continue;
                }
                if self.cache_enabled() {
                    metrics.cache_misses += 1;
                }
                metrics.jobs += 1;
                let fl = Inflight {
                    id: slot as u64,
                    spec: specs[slot],
                    job: make_job(&specs[slot], &root),
                    submitted: start,
                    admitted: Instant::now(),
                    epochs_joined: 0,
                    reply: None,
                    followers: Vec::new(),
                };
                inflight.push((slot, fl));
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len());
            self.retire(&mut inflight, &mut metrics, |slot, outcome| {
                outcomes[slot] = Some(outcome);
            });
            if inflight.is_empty() {
                if next >= specs.len() {
                    break;
                }
                continue;
            }
            self.epoch(&root, &ledger, &mut inflight, None, &mut metrics);
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.elapsed = start.elapsed();
        (
            outcomes
                .into_iter()
                .map(|o| o.expect("all served"))
                .collect(),
            metrics,
        )
    }

    /// Serves queries submitted concurrently through a
    /// [`ServiceHandle`]: `clients` runs on the calling thread while
    /// the scheduler runs beside it; when `clients` returns (and every
    /// handle clone it made is dropped), the scheduler drains the
    /// remaining queries and the call returns.
    ///
    /// Admission happens at epoch boundaries *and* mid-stream: a query
    /// arriving while a scan is in flight joins that scan (its first
    /// pass observes the buffered items, [`ScanLedger::join`] logs the
    /// logical pass) instead of queueing for the next epoch. Repeat
    /// queries are answered from the outcome cache immediately.
    pub fn serve<R, F>(&self, clients: F) -> (R, ServiceMetrics)
    where
        F: FnOnce(ServiceHandle) -> R,
    {
        let (tx, rx) = mpsc::sync_channel(self.cfg.queue_depth);
        let handle = ServiceHandle {
            tx,
            counter: Arc::new(AtomicU64::new(0)),
        };
        std::thread::scope(|s| {
            let scheduler = s.spawn(|| self.scheduler(rx));
            let r = clients(handle);
            let metrics = scheduler.join().expect("scheduler panicked");
            (r, metrics)
        })
    }

    /// The serve-mode scheduler: admission from the queue (at epoch
    /// boundaries and mid-stream), one shared scan per epoch, replies
    /// on completion.
    fn scheduler(&self, rx: Receiver<Submission>) -> ServiceMetrics {
        let start = Instant::now();
        let root = SetStream::new(&self.system);
        let ledger = ScanLedger::new();
        let mut inflight: Vec<(usize, Inflight<'_>)> = Vec::new();
        let mut metrics = ServiceMetrics::default();
        let mut open = true;
        loop {
            // Admission at the epoch boundary. Block only when idle.
            let fresh_group = inflight.is_empty();
            while open && inflight.len() < self.cfg.max_inflight {
                let sub = if inflight.is_empty() {
                    rx.recv().map_err(|_| TryRecvError::Disconnected)
                } else {
                    rx.try_recv()
                };
                match sub {
                    Ok(sub) => {
                        if let Admitted::Job(fl) =
                            self.admit_or_answer(sub, &root, &mut inflight, &mut metrics)
                        {
                            // The slot mirrors the submission id: serve
                            // mode routes outcomes by reply channel, but
                            // the slot stays meaningful either way.
                            inflight.push((fl.id as usize, fl));
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len());
            self.retire(&mut inflight, &mut metrics, |_slot, _outcome| {});
            if inflight.is_empty() {
                if !open {
                    break;
                }
                continue;
            }
            let mid = MidStream {
                rx: &rx,
                open: &mut open,
                fresh_group,
            };
            self.epoch(&root, &ledger, &mut inflight, Some(mid), &mut metrics);
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.elapsed = start.elapsed();
        metrics
    }

    /// `true` when this service actually caches outcomes — a disabled
    /// cache neither stores answers nor counts traffic
    /// ([`ServiceMetrics::cache_misses`] stays zero, matching
    /// [`OutcomeCache::stats`]'s disabled-cache semantics).
    fn cache_enabled(&self) -> bool {
        self.cache.capacity() > 0
    }

    /// Cache lookup under this service's repository identity
    /// (fingerprint plus the dimension cross-check).
    fn cache_lookup(&self, spec: &QuerySpec) -> Option<crate::cache::CachedAnswer> {
        self.cache.lookup(
            self.fingerprint,
            self.system.universe(),
            self.system.num_sets(),
            spec,
        )
    }

    /// Attaches a query to an identical in-flight job as a follower
    /// (when [`ServiceConfig::coalesce`] is on and such a job exists).
    /// Returns `true` when the query was coalesced — it will be
    /// answered by that job's retirement and must not become a job of
    /// its own. The cache is consulted *before* this (a retired
    /// answer in zero scans beats waiting for an in-flight job), so
    /// coalescing only ever sees cache misses.
    fn try_coalesce<'a>(
        &self,
        spec: &QuerySpec,
        slot: usize,
        id: u64,
        submitted: Instant,
        reply: Option<SyncSender<QueryOutcome>>,
        inflight: &mut [(usize, Inflight<'a>)],
    ) -> bool {
        if !self.cfg.coalesce {
            return false;
        }
        let Some((_, leader)) = inflight.iter_mut().find(|(_, fl)| fl.spec == *spec) else {
            return false;
        };
        debug_assert_eq!(
            leader.spec.to_string(),
            spec.to_string(),
            "coalesce keys must agree on the canonical spec"
        );
        leader.followers.push(Follower {
            slot,
            id,
            submitted,
            attached: Instant::now(),
            reply,
        });
        true
    }

    /// Answers one submission from the cache (delivering the outcome
    /// immediately), coalesces it onto an identical in-flight job, or
    /// builds its job; only the last case hands work back to the
    /// caller.
    fn admit_or_answer<'a>(
        &'a self,
        sub: Submission,
        root: &SetStream<'a>,
        inflight: &mut [(usize, Inflight<'a>)],
        metrics: &mut ServiceMetrics,
    ) -> Admitted<'a> {
        if let Some(answer) = self.cache_lookup(&sub.spec) {
            let outcome = self.cached_outcome(sub.id, sub.spec, sub.submitted, answer);
            self.deliver_cached(&outcome, metrics);
            // The client may have dropped its ticket; that is fine.
            let _ = sub.reply.send(outcome);
            return Admitted::Answered;
        }
        if self.try_coalesce(
            &sub.spec,
            sub.id as usize,
            sub.id,
            sub.submitted,
            Some(sub.reply.clone()),
            inflight,
        ) {
            metrics.coalesced += 1;
            return Admitted::Coalesced;
        }
        if self.cache_enabled() {
            metrics.cache_misses += 1;
        }
        metrics.jobs += 1;
        Admitted::Job(Inflight {
            id: sub.id,
            spec: sub.spec,
            job: make_job(&sub.spec, root),
            submitted: sub.submitted,
            admitted: Instant::now(),
            epochs_joined: 0,
            reply: Some(sub.reply),
            followers: Vec::new(),
        })
    }

    /// Builds the outcome of a cache hit: the stored solo observables
    /// (bit-identical to the run that populated the entry) under the
    /// caller's submission timing, in zero physical scans.
    fn cached_outcome(
        &self,
        id: u64,
        spec: QuerySpec,
        submitted: Instant,
        answer: CachedAnswer,
    ) -> QueryOutcome {
        QueryOutcome {
            id,
            spec,
            cover: answer.cover,
            covered: answer.covered,
            required: answer.required,
            logical_passes: answer.logical_passes,
            space_words: answer.space_words,
            epochs_joined: 0,
            queue_wait: submitted.elapsed(),
            latency: submitted.elapsed(),
            cached: true,
            coalesced: false,
        }
    }

    /// Records a cache hit's metrics (counters + histograms).
    fn deliver_cached(&self, outcome: &QueryOutcome, metrics: &mut ServiceMetrics) {
        metrics.cache_hits += 1;
        metrics.queries_completed += 1;
        metrics.queue_wait.record(outcome.queue_wait);
        metrics.latency.record(outcome.latency);
    }

    /// Runs one scan epoch: every inflight job joins one shared
    /// physical pass — exposed as a zero-copy sharded feed rather than
    /// a materialised item vector — queries arriving while the scan is
    /// in flight join it mid-stream (serve mode), and a work-stealing
    /// worker pool fans the per-query state updates out shard by shard.
    fn epoch<'a>(
        &'a self,
        root: &SetStream<'a>,
        ledger: &ScanLedger,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        mut mid: Option<MidStream<'_>>,
        metrics: &mut ServiceMetrics,
    ) {
        for (_, fl) in inflight.iter_mut() {
            fl.job.begin_scan();
            fl.epochs_joined += 1;
        }
        let feed = {
            let participants: Vec<&SetStream<'a>> = inflight
                .iter()
                .flat_map(|(_, fl)| fl.job.participants())
                .collect();
            ledger.scan_sharded(root, &participants, self.cfg.shard_size)
        };
        // The feed reads the (immutable) repository directly, so a
        // query admitted *now* still observes every item of this scan:
        // mid-stream, pass-aligned admission. Joiners land at the tail
        // of `inflight` and ride the fan-out below; jobs with nothing
        // to scan are parked until after `end_scan`.
        let parked = match mid.as_mut() {
            Some(mid) => self.admit_mid_stream(root, ledger, inflight, mid, metrics),
            None => Vec::new(),
        };
        metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len() + parked.len());
        let workers = self.cfg.workers.min(inflight.len());
        if workers > 1 {
            // Work-stealing fan-out: the feed cursor hands `(job,
            // shard)` units to whichever worker is free — each job
            // still observes every shard in repository order with at
            // most one worker inside it at a time (the cursor's claim
            // is the exclusivity protocol; the mutex satisfies the
            // borrow checker and is uncontended by construction), so
            // per-query state evolves exactly as in a solo run while a
            // heavy query no longer stalls a statically assigned
            // worker's whole chunk.
            let slots: Vec<Mutex<&mut Inflight<'a>>> =
                inflight.iter_mut().map(|(_, fl)| Mutex::new(fl)).collect();
            let cursor = feed.cursor(slots.len());
            /// Aborts the feed if the owning worker unwinds mid-unit:
            /// its consumer would stay claimed forever, and siblings
            /// would spin on `Retry` instead of letting the scope
            /// join and propagate the panic.
            struct AbortOnUnwind<'c>(&'c sc_stream::FeedCursor);
            impl Drop for AbortOnUnwind<'_> {
                fn drop(&mut self) {
                    if std::thread::panicking() {
                        self.0.abort();
                    }
                }
            }
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| {
                        let _guard = AbortOnUnwind(&cursor);
                        loop {
                            match cursor.claim() {
                                Claim::Shard { consumer, shard } => {
                                    let mut fl = slots[consumer].lock().expect("job slot poisoned");
                                    fl.job.absorb_shard(&mut feed.shard(shard));
                                    drop(fl);
                                    cursor.complete(consumer, shard);
                                }
                                Claim::Retry => std::thread::yield_now(),
                                Claim::Done => break,
                            }
                        }
                    });
                }
            });
        } else {
            // Single worker: shard-major order keeps each shard's
            // repository slices cache-hot across the jobs, and every
            // job still sees shards in ascending (= repository) order.
            for s in 0..feed.num_shards() {
                for (_, fl) in inflight.iter_mut() {
                    fl.job.absorb_shard(&mut feed.shard(s));
                }
            }
        }
        for (_, fl) in inflight.iter_mut() {
            fl.job.end_scan();
        }
        inflight.extend(parked);
    }

    /// Serve-mode mid-stream admission: drains queries that arrived
    /// while the current scan was being buffered, admitting each into
    /// the in-flight scan ([`ScanLedger::join`] logs its logical pass;
    /// no extra physical walk). When this is the first scan of a fresh
    /// epoch group and an admission window is configured, the scan is
    /// held open up to that long for the head of a burst to arrive;
    /// once anything joins (or the window expires) draining continues
    /// without blocking. Returns the jobs that had nothing to scan
    /// (empty-universe queries), to be parked until after `end_scan`.
    fn admit_mid_stream<'a>(
        &'a self,
        root: &SetStream<'a>,
        ledger: &ScanLedger,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        mid: &mut MidStream<'_>,
        metrics: &mut ServiceMetrics,
    ) -> Vec<(usize, Inflight<'a>)> {
        let mut parked = Vec::new();
        // The window only arms for a *lone* head of a fresh group: a
        // burst that already arrived together at the epoch boundary is
        // the company the window exists to wait for, so holding its
        // first scan open would stall every query in it for nothing.
        let lone_fresh_head = mid.fresh_group && inflight.len() < 2;
        let mut deadline = (lone_fresh_head && self.cfg.admission_window > Duration::ZERO)
            .then(|| Instant::now() + self.cfg.admission_window);
        while *mid.open && inflight.len() + parked.len() < self.cfg.max_inflight {
            let sub = match deadline {
                Some(d) => match mid
                    .rx
                    .recv_timeout(d.saturating_duration_since(Instant::now()))
                {
                    Ok(sub) => Ok(sub),
                    Err(RecvTimeoutError::Timeout) => {
                        deadline = None;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(TryRecvError::Disconnected),
                },
                None => mid.rx.try_recv(),
            };
            match sub {
                Ok(sub) => {
                    let mut fl = match self.admit_or_answer(sub, root, inflight, metrics) {
                        Admitted::Job(fl) => fl,
                        Admitted::Coalesced => {
                            // The query attached to a job of this very
                            // group: the company the window waited for
                            // has arrived (at zero cost), so stop
                            // holding the scan open on its account.
                            deadline = None;
                            continue;
                        }
                        Admitted::Answered => {
                            // A cache hit was answered without joining
                            // the scan; the window (if still open)
                            // keeps waiting for a real joiner.
                            continue;
                        }
                    };
                    if fl.job.wants_scan() {
                        fl.job.begin_scan();
                        fl.epochs_joined = 1;
                        ledger.join(root, &fl.job.participants());
                        metrics.mid_stream_admissions += 1;
                        inflight.push((fl.id as usize, fl));
                        // The burst's head joined; take the rest
                        // without blocking.
                        deadline = None;
                    } else {
                        parked.push((fl.id as usize, fl));
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    *mid.open = false;
                    break;
                }
            }
        }
        parked
    }

    /// Retires every job that no longer wants a scan, building its
    /// outcome, populating the outcome cache (once per job, however
    /// many followers coalesced onto it), and delivering it (reply
    /// channel in serve mode, `sink` callback in batch mode) — then
    /// fanning the same solo observables out to every follower under
    /// the follower's own id and timing. Retirement order is admission
    /// order so batch outcomes are deterministic.
    fn retire<'a>(
        &self,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        metrics: &mut ServiceMetrics,
        mut sink: impl FnMut(usize, QueryOutcome),
    ) {
        let mut i = 0;
        while i < inflight.len() {
            if inflight[i].1.job.wants_scan() {
                i += 1;
                continue;
            }
            let (slot, fl) = inflight.remove(i);
            debug_assert!(
                self.cfg.coalesce || fl.followers.is_empty(),
                "followers can only attach when coalescing is enabled"
            );
            let result = fl.job.finish();
            let mut covered = BitSet::new(self.system.universe());
            for &id in &result.cover {
                for &e in self.system.set(id) {
                    covered.insert(e);
                }
            }
            let outcome = QueryOutcome {
                id: fl.id,
                spec: fl.spec,
                cover: result.cover,
                covered: covered.count(),
                required: result.required,
                logical_passes: result.logical_passes,
                space_words: result.space_words,
                epochs_joined: fl.epochs_joined,
                queue_wait: fl.admitted.duration_since(fl.submitted),
                latency: fl.submitted.elapsed(),
                cached: false,
                coalesced: false,
            };
            if self.cache_enabled() {
                self.cache.insert(
                    self.fingerprint,
                    self.system.universe(),
                    self.system.num_sets(),
                    &fl.spec,
                    CachedAnswer {
                        cover: outcome.cover.clone(),
                        covered: outcome.covered,
                        required: outcome.required,
                        logical_passes: outcome.logical_passes,
                        space_words: outcome.space_words,
                    },
                );
            }
            metrics.queries_completed += 1;
            metrics.queue_wait.record(outcome.queue_wait);
            metrics.latency.record(outcome.latency);
            if let Some(reply) = &fl.reply {
                // The client may have dropped its ticket; that is fine.
                let _ = reply.send(outcome.clone());
            }
            for f in fl.followers {
                // Determinism makes the job's observables the
                // follower's own solo observables; only identity and
                // timing are per-follower.
                let fanned = QueryOutcome {
                    id: f.id,
                    queue_wait: f.attached.duration_since(f.submitted),
                    latency: f.submitted.elapsed(),
                    coalesced: true,
                    ..outcome.clone()
                };
                metrics.queries_completed += 1;
                metrics.queue_wait.record(fanned.queue_wait);
                metrics.latency.record(fanned.latency);
                if let Some(reply) = &f.reply {
                    let _ = reply.send(fanned.clone());
                }
                sink(f.slot, fanned);
            }
            sink(slot, outcome);
        }
    }
}
