//! The scan-epoch scheduler: admission, shared scans, worker fan-out,
//! mid-stream joins, and the outcome cache.

use crate::cache::{CachedAnswer, OutcomeCache};
use crate::job::{make_job, CoverJob};
use crate::metrics::ServiceMetrics;
use crate::query::{QueryOutcome, QuerySpec};
use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId, SetSystem};
use sc_stream::{ScanLedger, SetStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Queries admitted into concurrent scan epochs at once; admission
    /// beyond this waits for a slot (the scheduler's half of
    /// backpressure).
    pub max_inflight: usize,
    /// Worker threads fanning out per-query state updates within one
    /// scan (`std::thread::scope`; the queries are disjoint state, so
    /// the fan-out never touches accounting). `1` disables threading.
    pub workers: usize,
    /// Bound of the submission queue; [`ServiceHandle::submit`] blocks
    /// once this many queries wait unadmitted (the client's half of
    /// backpressure).
    pub queue_depth: usize,
    /// Entries the outcome cache may hold (`0` disables caching).
    /// Ignored when the service is built with
    /// [`Service::with_cache`], which brings its own cache.
    pub cache_capacity: usize,
    /// How long the scheduler holds the *first* scan of a fresh epoch
    /// group open for mid-stream joiners (serve mode only; zero — the
    /// default — admits mid-stream without ever blocking). A burst
    /// arriving just behind the group's head then rides the same
    /// physical scan instead of paying an extra epoch of queue wait.
    ///
    /// This is a batching knob for bursty load, and it has a cost on
    /// sparse traffic: every query that starts a fresh group waits up
    /// to the full window for company before its first scan's fan-out
    /// runs, so a strict request-response client pays the window per
    /// query. Leave it at zero unless clients submit in bursts.
    pub admission_window: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
            queue_depth: 256,
            cache_capacity: 256,
            admission_window: Duration::ZERO,
        }
    }
}

/// Error returned when the service has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service closed")
    }
}

impl std::error::Error for ServiceClosed {}

/// A pending reply for one submitted query.
#[derive(Debug)]
pub struct QueryTicket {
    /// The service-assigned query id.
    pub id: u64,
    rx: Receiver<QueryOutcome>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler exited before serving it.
    pub fn wait(self) -> Result<QueryOutcome, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }
}

/// Clonable submission endpoint handed to client code by
/// [`Service::serve`]. Dropping every clone closes the queue; the
/// scheduler then drains what is inflight and exits.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: SyncSender<Submission>,
    counter: Arc<AtomicU64>,
}

impl ServiceHandle {
    /// Enqueues a query; blocks when the submission queue is full.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler already exited.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryTicket, ServiceClosed> {
        let (reply, rx) = mpsc::sync_channel(1);
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Submission {
                id,
                spec,
                submitted: Instant::now(),
                reply,
            })
            .map_err(|_| ServiceClosed)?;
        Ok(QueryTicket { id, rx })
    }
}

struct Submission {
    id: u64,
    spec: QuerySpec,
    submitted: Instant,
    reply: SyncSender<QueryOutcome>,
}

/// One admitted query inside the epoch loop.
struct Inflight<'a> {
    id: u64,
    spec: QuerySpec,
    job: Box<dyn CoverJob<'a> + 'a>,
    submitted: Instant,
    admitted: Instant,
    epochs_joined: usize,
    /// `None` in batch mode (outcomes are returned positionally).
    reply: Option<SyncSender<QueryOutcome>>,
}

/// Serve-mode plumbing threaded into [`Service::epoch`] so queries
/// arriving while a scan is in flight can join it mid-stream.
struct MidStream<'rx> {
    rx: &'rx Receiver<Submission>,
    open: &'rx mut bool,
    /// `true` when this epoch group just started from an idle
    /// scheduler — the admission window (if configured) holds this
    /// scan open for the rest of the burst.
    fresh_group: bool,
}

/// A multi-tenant, in-process cover-query engine over one repository.
///
/// The service holds the [`SetSystem`] and serves streams of cover
/// queries by batching them through shared physical scans: pending
/// queries are admitted into *scan epochs*, every admitted query
/// registers the logical pass it needs next, and one
/// [`SetStream::shared_pass`] per epoch advances all of them — so the
/// physical scan count of a group of concurrent queries is the *max*
/// of their logical pass counts, not the sum, exactly the accounting
/// the streaming model charges for parallel branches. Two further scale
/// levers ride on top: queries arriving while a scan is in flight join
/// it **mid-stream** (the scan's items are buffered, so a pass-1 joiner
/// still observes every item; [`ScanLedger::join`] keeps the physical
/// count honest), and repeat queries are answered from the
/// **outcome cache** in zero physical scans
/// ([`OutcomeCache`](crate::OutcomeCache)).
///
/// # Examples
///
/// ```
/// use sc_service::{QuerySpec, Service, ServiceConfig};
/// use sc_setsystem::gen;
///
/// let inst = gen::planted(256, 512, 8, 7);
/// let service = Service::new(inst.system, ServiceConfig::default());
/// let specs = vec![QuerySpec::IterCover { delta: 0.5, seed: 1 }; 8];
/// let (outcomes, metrics) = service.run_batch(&specs);
/// assert!(outcomes.iter().all(|o| o.goal_met()));
/// // Eight identical queries rode the same physical scans.
/// assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
/// ```
#[derive(Debug)]
pub struct Service {
    system: SetSystem,
    cfg: ServiceConfig,
    fingerprint: u64,
    cache: Arc<OutcomeCache>,
}

impl Service {
    /// Wraps a repository with the given configuration and a private
    /// outcome cache of `cfg.cache_capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight`, `workers`, or `queue_depth` is zero.
    pub fn new(system: SetSystem, cfg: ServiceConfig) -> Self {
        let cache = Arc::new(OutcomeCache::new(cfg.cache_capacity));
        Self::with_cache(system, cfg, cache)
    }

    /// Wraps a repository with a shared outcome cache — several
    /// services (even over different repositories) can point at the
    /// same [`OutcomeCache`]; the repository content fingerprint in
    /// the cache key, backed by a per-hit dimension cross-check,
    /// keeps their answers apart (see [`OutcomeCache`] for the 64-bit
    /// collision caveat).
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight`, `workers`, or `queue_depth` is zero.
    pub fn with_cache(system: SetSystem, cfg: ServiceConfig, cache: Arc<OutcomeCache>) -> Self {
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        let fingerprint = OutcomeCache::fingerprint(&system);
        Self {
            system,
            cfg,
            fingerprint,
            cache,
        }
    }

    /// The repository being served.
    pub fn system(&self) -> &SetSystem {
        &self.system
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The outcome cache answering repeat queries.
    pub fn cache(&self) -> &Arc<OutcomeCache> {
        &self.cache
    }

    /// The fingerprint of the served repository — the cache-key half
    /// that keeps answers from different repositories apart.
    pub fn repository_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Solves a batch of queries through shared scan epochs, all
    /// admitted before the first scan (up to `max_inflight` at a time;
    /// repeats of an already-retired spec are answered from the cache
    /// without occupying a slot). Outcomes come back in submission
    /// order.
    pub fn run_batch(&self, specs: &[QuerySpec]) -> (Vec<QueryOutcome>, ServiceMetrics) {
        let start = Instant::now();
        let root = SetStream::new(&self.system);
        let ledger = ScanLedger::new();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..specs.len()).map(|_| None).collect();
        let mut metrics = ServiceMetrics::default();
        let mut next = 0usize;
        let mut inflight: Vec<(usize, Inflight<'_>)> = Vec::new();
        loop {
            while next < specs.len() && inflight.len() < self.cfg.max_inflight {
                let slot = next;
                next += 1;
                if let Some(answer) = self.cache_lookup(&specs[slot]) {
                    // The whole batch is "submitted" when run_batch
                    // starts, so a hit's latency covers the epochs it
                    // waited for a slot, same as a job's would.
                    let outcome = self.cached_outcome(slot as u64, specs[slot], start, answer);
                    self.deliver_cached(&outcome, &mut metrics);
                    outcomes[slot] = Some(outcome);
                    continue;
                }
                if self.cache_enabled() {
                    metrics.cache_misses += 1;
                }
                let fl = Inflight {
                    id: slot as u64,
                    spec: specs[slot],
                    job: make_job(&specs[slot], &root),
                    submitted: start,
                    admitted: Instant::now(),
                    epochs_joined: 0,
                    reply: None,
                };
                inflight.push((slot, fl));
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len());
            self.retire(&mut inflight, &mut metrics, |slot, outcome| {
                outcomes[slot] = Some(outcome);
            });
            if inflight.is_empty() {
                if next >= specs.len() {
                    break;
                }
                continue;
            }
            self.epoch(&root, &ledger, &mut inflight, None, &mut metrics);
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.elapsed = start.elapsed();
        (
            outcomes
                .into_iter()
                .map(|o| o.expect("all served"))
                .collect(),
            metrics,
        )
    }

    /// Serves queries submitted concurrently through a
    /// [`ServiceHandle`]: `clients` runs on the calling thread while
    /// the scheduler runs beside it; when `clients` returns (and every
    /// handle clone it made is dropped), the scheduler drains the
    /// remaining queries and the call returns.
    ///
    /// Admission happens at epoch boundaries *and* mid-stream: a query
    /// arriving while a scan is in flight joins that scan (its first
    /// pass observes the buffered items, [`ScanLedger::join`] logs the
    /// logical pass) instead of queueing for the next epoch. Repeat
    /// queries are answered from the outcome cache immediately.
    pub fn serve<R, F>(&self, clients: F) -> (R, ServiceMetrics)
    where
        F: FnOnce(ServiceHandle) -> R,
    {
        let (tx, rx) = mpsc::sync_channel(self.cfg.queue_depth);
        let handle = ServiceHandle {
            tx,
            counter: Arc::new(AtomicU64::new(0)),
        };
        std::thread::scope(|s| {
            let scheduler = s.spawn(|| self.scheduler(rx));
            let r = clients(handle);
            let metrics = scheduler.join().expect("scheduler panicked");
            (r, metrics)
        })
    }

    /// The serve-mode scheduler: admission from the queue (at epoch
    /// boundaries and mid-stream), one shared scan per epoch, replies
    /// on completion.
    fn scheduler(&self, rx: Receiver<Submission>) -> ServiceMetrics {
        let start = Instant::now();
        let root = SetStream::new(&self.system);
        let ledger = ScanLedger::new();
        let mut inflight: Vec<(usize, Inflight<'_>)> = Vec::new();
        let mut metrics = ServiceMetrics::default();
        let mut open = true;
        loop {
            // Admission at the epoch boundary. Block only when idle.
            let fresh_group = inflight.is_empty();
            while open && inflight.len() < self.cfg.max_inflight {
                let sub = if inflight.is_empty() {
                    rx.recv().map_err(|_| TryRecvError::Disconnected)
                } else {
                    rx.try_recv()
                };
                match sub {
                    Ok(sub) => {
                        if let Some(fl) = self.admit_or_answer(sub, &root, &mut metrics) {
                            // The slot mirrors the submission id: serve
                            // mode routes outcomes by reply channel, but
                            // the slot stays meaningful either way.
                            inflight.push((fl.id as usize, fl));
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len());
            self.retire(&mut inflight, &mut metrics, |_slot, _outcome| {});
            if inflight.is_empty() {
                if !open {
                    break;
                }
                continue;
            }
            let mid = MidStream {
                rx: &rx,
                open: &mut open,
                fresh_group,
            };
            self.epoch(&root, &ledger, &mut inflight, Some(mid), &mut metrics);
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.elapsed = start.elapsed();
        metrics
    }

    /// `true` when this service actually caches outcomes — a disabled
    /// cache neither stores answers nor counts traffic
    /// ([`ServiceMetrics::cache_misses`] stays zero, matching
    /// [`OutcomeCache::stats`]'s disabled-cache semantics).
    fn cache_enabled(&self) -> bool {
        self.cache.capacity() > 0
    }

    /// Cache lookup under this service's repository identity
    /// (fingerprint plus the dimension cross-check).
    fn cache_lookup(&self, spec: &QuerySpec) -> Option<crate::cache::CachedAnswer> {
        self.cache.lookup(
            self.fingerprint,
            self.system.universe(),
            self.system.num_sets(),
            spec,
        )
    }

    /// Answers one submission from the cache (delivering the outcome
    /// immediately) or builds its job; returns the inflight entry on a
    /// cache miss.
    fn admit_or_answer<'a>(
        &'a self,
        sub: Submission,
        root: &SetStream<'a>,
        metrics: &mut ServiceMetrics,
    ) -> Option<Inflight<'a>> {
        if let Some(answer) = self.cache_lookup(&sub.spec) {
            let outcome = self.cached_outcome(sub.id, sub.spec, sub.submitted, answer);
            self.deliver_cached(&outcome, metrics);
            // The client may have dropped its ticket; that is fine.
            let _ = sub.reply.send(outcome);
            return None;
        }
        if self.cache_enabled() {
            metrics.cache_misses += 1;
        }
        Some(Inflight {
            id: sub.id,
            spec: sub.spec,
            job: make_job(&sub.spec, root),
            submitted: sub.submitted,
            admitted: Instant::now(),
            epochs_joined: 0,
            reply: Some(sub.reply),
        })
    }

    /// Builds the outcome of a cache hit: the stored solo observables
    /// (bit-identical to the run that populated the entry) under the
    /// caller's submission timing, in zero physical scans.
    fn cached_outcome(
        &self,
        id: u64,
        spec: QuerySpec,
        submitted: Instant,
        answer: CachedAnswer,
    ) -> QueryOutcome {
        QueryOutcome {
            id,
            spec,
            cover: answer.cover,
            covered: answer.covered,
            required: answer.required,
            logical_passes: answer.logical_passes,
            space_words: answer.space_words,
            epochs_joined: 0,
            queue_wait: submitted.elapsed(),
            latency: submitted.elapsed(),
            cached: true,
        }
    }

    /// Records a cache hit's metrics (counters + histograms).
    fn deliver_cached(&self, outcome: &QueryOutcome, metrics: &mut ServiceMetrics) {
        metrics.cache_hits += 1;
        metrics.queries_completed += 1;
        metrics.queue_wait.record(outcome.queue_wait);
        metrics.latency.record(outcome.latency);
    }

    /// Runs one scan epoch: every inflight job joins one shared
    /// physical pass, queries arriving while the scan is in flight join
    /// it mid-stream (serve mode), and worker threads fan the per-query
    /// state updates out across the jobs.
    fn epoch<'a>(
        &'a self,
        root: &SetStream<'a>,
        ledger: &ScanLedger,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        mut mid: Option<MidStream<'_>>,
        metrics: &mut ServiceMetrics,
    ) {
        for (_, fl) in inflight.iter_mut() {
            fl.job.begin_scan();
            fl.epochs_joined += 1;
        }
        let items: Vec<(SetId, &[ElemId])> = {
            let participants: Vec<&SetStream<'a>> = inflight
                .iter()
                .flat_map(|(_, fl)| fl.job.participants())
                .collect();
            ledger.scan(root, &participants).collect()
        };
        // The physical walk is buffered above, so a query admitted
        // *now* still observes every item of this scan: mid-stream,
        // pass-aligned admission. Joiners land at the tail of
        // `inflight` and ride the fan-out below; jobs with nothing to
        // scan are parked until after `end_scan`.
        let parked = match mid.as_mut() {
            Some(mid) => self.admit_mid_stream(root, ledger, inflight, mid, metrics),
            None => Vec::new(),
        };
        metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len() + parked.len());
        let workers = self.cfg.workers.min(inflight.len());
        if workers > 1 {
            let chunk = inflight.len().div_ceil(workers);
            let items = &items;
            std::thread::scope(|s| {
                for slice in inflight.chunks_mut(chunk) {
                    s.spawn(move || {
                        for (_, fl) in slice {
                            for &(id, elems) in items {
                                fl.job.absorb(id, elems);
                            }
                        }
                    });
                }
            });
        } else {
            for (_, fl) in inflight.iter_mut() {
                for &(id, elems) in &items {
                    fl.job.absorb(id, elems);
                }
            }
        }
        for (_, fl) in inflight.iter_mut() {
            fl.job.end_scan();
        }
        inflight.extend(parked);
    }

    /// Serve-mode mid-stream admission: drains queries that arrived
    /// while the current scan was being buffered, admitting each into
    /// the in-flight scan ([`ScanLedger::join`] logs its logical pass;
    /// no extra physical walk). When this is the first scan of a fresh
    /// epoch group and an admission window is configured, the scan is
    /// held open up to that long for the head of a burst to arrive;
    /// once anything joins (or the window expires) draining continues
    /// without blocking. Returns the jobs that had nothing to scan
    /// (empty-universe queries), to be parked until after `end_scan`.
    fn admit_mid_stream<'a>(
        &'a self,
        root: &SetStream<'a>,
        ledger: &ScanLedger,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        mid: &mut MidStream<'_>,
        metrics: &mut ServiceMetrics,
    ) -> Vec<(usize, Inflight<'a>)> {
        let mut parked = Vec::new();
        // The window only arms for a *lone* head of a fresh group: a
        // burst that already arrived together at the epoch boundary is
        // the company the window exists to wait for, so holding its
        // first scan open would stall every query in it for nothing.
        let lone_fresh_head = mid.fresh_group && inflight.len() < 2;
        let mut deadline = (lone_fresh_head && self.cfg.admission_window > Duration::ZERO)
            .then(|| Instant::now() + self.cfg.admission_window);
        while *mid.open && inflight.len() + parked.len() < self.cfg.max_inflight {
            let sub = match deadline {
                Some(d) => match mid
                    .rx
                    .recv_timeout(d.saturating_duration_since(Instant::now()))
                {
                    Ok(sub) => Ok(sub),
                    Err(RecvTimeoutError::Timeout) => {
                        deadline = None;
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => Err(TryRecvError::Disconnected),
                },
                None => mid.rx.try_recv(),
            };
            match sub {
                Ok(sub) => {
                    let Some(mut fl) = self.admit_or_answer(sub, root, metrics) else {
                        // A cache hit was answered without joining the
                        // scan; the window (if still open) keeps
                        // waiting for a real joiner.
                        continue;
                    };
                    if fl.job.wants_scan() {
                        fl.job.begin_scan();
                        fl.epochs_joined = 1;
                        ledger.join(root, &fl.job.participants());
                        metrics.mid_stream_admissions += 1;
                        inflight.push((fl.id as usize, fl));
                        // The burst's head joined; take the rest
                        // without blocking.
                        deadline = None;
                    } else {
                        parked.push((fl.id as usize, fl));
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    *mid.open = false;
                    break;
                }
            }
        }
        parked
    }

    /// Retires every job that no longer wants a scan, building its
    /// outcome, populating the outcome cache, and delivering it (reply
    /// channel in serve mode, `sink` callback in batch mode).
    /// Retirement order is admission order so batch outcomes are
    /// deterministic.
    fn retire<'a>(
        &self,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        metrics: &mut ServiceMetrics,
        mut sink: impl FnMut(usize, QueryOutcome),
    ) {
        let mut i = 0;
        while i < inflight.len() {
            if inflight[i].1.job.wants_scan() {
                i += 1;
                continue;
            }
            let (slot, fl) = inflight.remove(i);
            let result = fl.job.finish();
            let mut covered = BitSet::new(self.system.universe());
            for &id in &result.cover {
                for &e in self.system.set(id) {
                    covered.insert(e);
                }
            }
            let outcome = QueryOutcome {
                id: fl.id,
                spec: fl.spec,
                cover: result.cover,
                covered: covered.count(),
                required: result.required,
                logical_passes: result.logical_passes,
                space_words: result.space_words,
                epochs_joined: fl.epochs_joined,
                queue_wait: fl.admitted.duration_since(fl.submitted),
                latency: fl.submitted.elapsed(),
                cached: false,
            };
            if self.cache_enabled() {
                self.cache.insert(
                    self.fingerprint,
                    self.system.universe(),
                    self.system.num_sets(),
                    &fl.spec,
                    CachedAnswer {
                        cover: outcome.cover.clone(),
                        covered: outcome.covered,
                        required: outcome.required,
                        logical_passes: outcome.logical_passes,
                        space_words: outcome.space_words,
                    },
                );
            }
            metrics.queries_completed += 1;
            metrics.queue_wait.record(outcome.queue_wait);
            metrics.latency.record(outcome.latency);
            if let Some(reply) = fl.reply {
                // The client may have dropped its ticket; that is fine.
                let _ = reply.send(outcome.clone());
            }
            sink(slot, outcome);
        }
    }
}
