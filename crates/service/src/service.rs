//! The scan-epoch scheduler, restructured as a staged pipeline:
//! [`admission`](crate::admission) → [`alignment`](crate::alignment) →
//! [`execution`](crate::execution) → [`retirement`](crate::retirement),
//! orchestrated here around a narrow
//! [`EpochState`](crate::alignment::EpochState) handoff — one scheduler
//! *lane* per tenant, each over its own hot-swappable repository
//! generations ([`TenantRegistry`](crate::tenants::TenantRegistry)),
//! with the deficit-round-robin
//! [`FairGate`](crate::fairness::FairGate) arbitrating scan epochs
//! across lanes.

use crate::admission::{Admitted, Inflight, Intake, QuerySubmission, ReloadRequest, Submission};
use crate::alignment::{self, EpochState};
use crate::cache::{EvictionPolicy, OutcomeCache};
use crate::execution;
use crate::fairness::{FairGate, GrantUnit};
use crate::metrics::ServiceMetrics;
use crate::query::{QueryOutcome, QuerySpec};
use crate::telemetry::tel;
use crate::tenants::{RepositoryGeneration, Tenant, TenantMeta, TenantRegistry};
use sc_setsystem::SetSystem;
use sc_stream::{InterleavedCursor, ScanLedger, SetStream};
use sc_telemetry::EventKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How a query arriving while a scan is in flight is admitted into it
/// (serve mode; batch admission always happens before the first scan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Non-blocking, pass-aligned accept (the default): arrivals queue
    /// while the fan-out runs — the epoch thread drains them
    /// concurrently — and splice in at the scan boundary, each
    /// joiner's next logical pass aligned to the group's current pass
    /// tag and fed the scan's items through the zero-copy replay. The
    /// admission window's timer overlaps the fan-out instead of
    /// holding the epoch thread idle up front.
    #[default]
    Aligned,
    /// The PR 4 baseline, kept for measurement (experiment E20): a
    /// blocking drain before the fan-out. The admission window holds
    /// the epoch thread idle for up to its full duration, and a query
    /// arriving while the fan-out runs waits for the next epoch.
    Boundary,
}

impl AdmissionMode {
    /// Parses `"aligned"` / `"boundary"` (the `sctool serve
    /// --admission` grammar).
    ///
    /// # Errors
    ///
    /// A message naming the unknown mode.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "aligned" => Ok(Self::Aligned),
            "boundary" => Ok(Self::Boundary),
            other => Err(format!(
                "unknown admission mode {other:?} (aligned|boundary)"
            )),
        }
    }
}

/// The granularity at which tenant lanes share the machine (serve
/// mode; batch runs are a single ungated lane either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InterleaveMode {
    /// Shard-granular interleaving (the default): every lane with an
    /// in-flight epoch advances through one shared work-stealing
    /// fan-out ([`sc_stream::InterleavedCursor`]), with the
    /// deficit-round-robin gate metering individual `(tenant, shard)`
    /// units under a machine-wide concurrency cap (the worker budget).
    /// A box serving many narrow tenants saturates its cores; the
    /// per-tenant observables (covers, passes, space, cache keys) are
    /// bit-identical to epoch mode — only the interleaving changes.
    #[default]
    Shard,
    /// The PR 8 baseline, kept for measurement (experiments E23/E25):
    /// one tenant's epoch holds the gate exclusively and runs to
    /// completion. Simple and strictly bounded, but a narrow epoch
    /// leaves the rest of the worker pool idle.
    Epoch,
}

impl InterleaveMode {
    /// Parses `"shard"` / `"epoch"` (the `sctool serve --interleave`
    /// grammar).
    ///
    /// # Errors
    ///
    /// A message naming the unknown mode.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "shard" => Ok(Self::Shard),
            "epoch" => Ok(Self::Epoch),
            other => Err(format!("unknown interleave mode {other:?} (shard|epoch)")),
        }
    }
}

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Queries admitted into concurrent scan epochs at once; admission
    /// beyond this waits for a slot (the scheduler's half of
    /// backpressure).
    pub max_inflight: usize,
    /// Worker threads fanning out per-query state updates within one
    /// scan (`std::thread::scope`; the queries are disjoint state, so
    /// the fan-out never touches accounting). `1` disables threading.
    pub workers: usize,
    /// Bound of the submission queue; [`ServiceHandle::submit`] blocks
    /// once this many queries wait unadmitted (the client's half of
    /// backpressure).
    pub queue_depth: usize,
    /// Entries the outcome cache may hold (`0` disables caching).
    /// Ignored when [`ServiceBuilder::shared_cache`] supplies the
    /// cache, which brings its own capacity.
    pub cache_capacity: usize,
    /// Eviction policy of the private cache the builder creates (FIFO
    /// by default — zero bookkeeping on the hit path; `sctool serve`
    /// defaults to LRU). Ignored with
    /// [`ServiceBuilder::shared_cache`].
    pub eviction: EvictionPolicy,
    /// How mid-stream arrivals are admitted into an in-flight scan
    /// (see [`AdmissionMode`]; serve mode only).
    pub admission: AdmissionMode,
    /// How long the scheduler holds the *first* scan of a fresh epoch
    /// group open for mid-stream joiners (serve mode only; zero — the
    /// default — admits mid-stream without ever holding a scan open).
    /// A burst arriving just behind the group's head then rides the
    /// same physical scan instead of paying an extra epoch of queue
    /// wait.
    ///
    /// This is a batching knob for bursty load, and it has a cost on
    /// sparse traffic: every query that starts a fresh group holds its
    /// first scan's boundary open up to the full window waiting for
    /// company, so a strict request-response client pays the window per
    /// query. Under [`AdmissionMode::Aligned`] the timer runs from the
    /// scan's *start* — the fan-out overlaps it — while
    /// [`AdmissionMode::Boundary`] blocks the epoch thread for the
    /// whole window before any fan-out work. Leave it at zero unless
    /// clients submit in bursts.
    pub admission_window: Duration,
    /// Sets per shard of the zero-copy repository feed the epoch
    /// fan-out drives jobs with ([`sc_stream::ShardedPass`]): the
    /// work-stealing granularity of the worker pool. Smaller shards
    /// balance heterogeneous jobs better; larger shards amortise the
    /// per-claim bookkeeping. The observables are unaffected either
    /// way — every job sees every shard in repository order.
    pub shard_size: usize,
    /// Collapse identical in-flight queries into one job: a query
    /// whose spec matches a job already inside the scan epochs (and
    /// misses the outcome cache) attaches to that job as a *follower*
    /// instead of running — the job's retirement fans a reply out per
    /// follower and populates the cache once, so N identical
    /// concurrent clients cost one query's CPU as well as one query's
    /// scans. Off by default: coalescing changes the timing metrics
    /// (`epochs_joined`, queue waits) of duplicate queries, and the
    /// uncoalesced path is the baseline experiments E17/E18 pin.
    /// Covers, logical passes, and space peaks are bit-identical
    /// either way (the queries are deterministic given their spec).
    pub coalesce: bool,
    /// How tenant lanes share the machine: shard-granular interleaving
    /// (default) or exclusive epoch grants (see [`InterleaveMode`]).
    pub interleave: InterleaveMode,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
            queue_depth: 256,
            cache_capacity: 256,
            eviction: EvictionPolicy::Fifo,
            admission: AdmissionMode::Aligned,
            admission_window: Duration::ZERO,
            shard_size: 256,
            coalesce: false,
            interleave: InterleaveMode::Shard,
        }
    }
}

/// Error returned when the service has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service closed")
    }
}

impl std::error::Error for ServiceClosed {}

/// Why a non-blocking submission ([`ServiceHandle::try_submit`]) did
/// not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySubmitError {
    /// The tenant's submission queue is full — the load-shedding
    /// signal the event-driven front-end turns into `err msg=busy`
    /// instead of blocking its whole event loop on one tenant's
    /// backpressure.
    Busy,
    /// The scheduler already exited.
    Closed,
}

impl std::fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySubmitError::Busy => write!(f, "busy"),
            TrySubmitError::Closed => write!(f, "service closed"),
        }
    }
}

impl std::error::Error for TrySubmitError {}

/// A pending reply for one submitted query.
#[derive(Debug)]
pub struct QueryTicket {
    /// The service-assigned query id.
    pub id: u64,
    rx: Receiver<QueryOutcome>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler exited before serving it.
    pub fn wait(self) -> Result<QueryOutcome, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }

    /// Non-blocking poll: `None` while the query is still in flight —
    /// what the event-driven front-end drains tickets with (the ticket
    /// stays valid across `None`s).
    ///
    /// # Errors
    ///
    /// `Some(Err(ServiceClosed))` if the scheduler exited before
    /// serving it.
    pub fn try_wait(&self) -> Option<Result<QueryOutcome, ServiceClosed>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(Ok(outcome)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceClosed)),
        }
    }
}

/// A pending acknowledgement for a requested repository hot swap.
#[derive(Debug)]
pub struct ReloadTicket {
    rx: Receiver<u64>,
}

impl ReloadTicket {
    /// Blocks until the swap took effect — queries admitted before the
    /// reload have drained on their original generation — and returns
    /// the new generation id.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler exited before swapping.
    pub fn wait(self) -> Result<u64, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }

    /// Non-blocking poll: `None` while in-flight queries are still
    /// draining ahead of the swap.
    ///
    /// # Errors
    ///
    /// `Some(Err(ServiceClosed))` if the scheduler exited before
    /// swapping.
    pub fn try_wait(&self) -> Option<Result<u64, ServiceClosed>> {
        match self.rx.try_recv() {
            Ok(generation) => Some(Ok(generation)),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServiceClosed)),
        }
    }
}

/// Clonable submission endpoint handed to client code by
/// [`Service::serve`]. Dropping every clone closes every tenant's
/// queue; the lanes then drain what is inflight and exit.
///
/// A handle targets one tenant — the *default* (registry slot 0) as
/// handed out by [`Service::serve`] — and
/// [`with_tenant`](ServiceHandle::with_tenant) derives a handle
/// targeting another (the library form of the protocol's
/// `!use <name>`; a per-query `repo=<name>` is just a one-shot
/// `with_tenant`). Each tenant has its own bounded submission queue,
/// so a hot tenant's full queue blocks only submitters *to that
/// tenant* — backpressure never crosses tenants.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    routes: Arc<[SyncSender<Submission>]>,
    route: usize,
    counter: Arc<AtomicU64>,
    registry: Arc<TenantRegistry>,
}

impl ServiceHandle {
    /// Enqueues a query for this handle's tenant; blocks when that
    /// tenant's submission queue is full.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler already exited.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryTicket, ServiceClosed> {
        let (reply, rx) = mpsc::sync_channel(1);
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        tel().submitted.incr();
        // The serving generation is the scheduler's business; the
        // submit site tags generation 0 (= not yet assigned).
        sc_telemetry::event(EventKind::Submitted, id, 0, 0, 0);
        self.routes[self.route]
            .send(Submission::Query(QuerySubmission {
                id,
                spec,
                submitted: Instant::now(),
                reply,
            }))
            .map_err(|_| ServiceClosed)?;
        Ok(QueryTicket { id, rx })
    }

    /// Non-blocking [`submit`](ServiceHandle::submit): enqueues the
    /// query only if the tenant's submission queue has room *right
    /// now*. This is the shedding half of the front door — an event
    /// loop multiplexing many connections must not block on one
    /// tenant's full queue, so a full queue comes back as
    /// [`TrySubmitError::Busy`] for the caller to turn into
    /// `err msg=busy`.
    ///
    /// A shed attempt leaves no telemetry footprint (no `submitted`
    /// count, no journal event) — the query never entered the
    /// scheduler; the front-end's own shed counter is the record.
    ///
    /// # Errors
    ///
    /// [`TrySubmitError::Busy`] when the queue is full,
    /// [`TrySubmitError::Closed`] when the scheduler already exited.
    pub fn try_submit(&self, spec: QuerySpec) -> Result<QueryTicket, TrySubmitError> {
        let (reply, rx) = mpsc::sync_channel(1);
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        match self.routes[self.route].try_send(Submission::Query(QuerySubmission {
            id,
            spec,
            submitted: Instant::now(),
            reply,
        })) {
            Ok(()) => {
                tel().submitted.incr();
                sc_telemetry::event(EventKind::Submitted, id, 0, 0, 0);
                Ok(QueryTicket { id, rx })
            }
            Err(mpsc::TrySendError::Full(_)) => Err(TrySubmitError::Busy),
            Err(mpsc::TrySendError::Disconnected(_)) => Err(TrySubmitError::Closed),
        }
    }

    /// Requests a repository hot swap of this handle's tenant: queries
    /// submitted to it before this call drain on its current
    /// generation, queries submitted after run against `system` (once
    /// the drain completes). Other tenants' lanes — and their in-flight
    /// queries — are untouched. The returned ticket resolves to the
    /// tenant's new generation id.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler already exited.
    pub fn reload(&self, system: SetSystem) -> Result<ReloadTicket, ServiceClosed> {
        let (reply, rx) = mpsc::sync_channel(1);
        self.routes[self.route]
            .send(Submission::Reload(ReloadRequest { system, reply }))
            .map_err(|_| ServiceClosed)?;
        Ok(ReloadTicket { rx })
    }

    /// A handle targeting the named tenant (`None` if no tenant of
    /// that name is served) — the library form of `!use <name>`.
    pub fn with_tenant(&self, name: &str) -> Option<ServiceHandle> {
        let route = self.registry.index_of(name)?;
        Some(ServiceHandle {
            route,
            ..self.clone()
        })
    }

    /// The name of the tenant this handle targets.
    pub fn tenant_name(&self) -> &str {
        self.registry.tenant(self.route).name()
    }

    /// The registry of tenants behind this service — what `!repos`
    /// formats.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }
}

/// A multi-tenant, in-process cover-query engine over a hot-swappable
/// repository.
///
/// The service holds its [`SetSystem`] as a fingerprint-versioned
/// *generation* ([`RepositoryGeneration`]) and serves streams of cover
/// queries by batching them through shared physical scans: pending
/// queries are admitted into *scan epochs*, every admitted query
/// registers the logical pass it needs next, and one shared physical
/// scan per epoch advances all of them — so the physical scan count of
/// a group of concurrent queries is the *max* of their logical pass
/// counts, not the sum, exactly the accounting the streaming model
/// charges for parallel branches. Queries arriving while a scan is in
/// flight splice into it **pass-aligned and non-blocking** (see
/// [`AdmissionMode`]), repeats are answered from the **outcome cache**
/// in zero physical scans, and `!reload` swaps the repository
/// mid-load with in-flight queries draining on their original
/// generation.
///
/// # Examples
///
/// ```
/// use sc_service::{QuerySpec, ServiceBuilder};
/// use sc_setsystem::gen;
///
/// let inst = gen::planted(256, 512, 8, 7);
/// let service = ServiceBuilder::new().tenant("corpus", inst.system).build();
/// let specs = vec![QuerySpec::IterCover { delta: 0.5, seed: 1 }; 8];
/// let (outcomes, metrics) = service.run_batch(&specs);
/// assert!(outcomes.iter().all(|o| o.goal_met()));
/// // Eight identical queries rode the same physical scans.
/// assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
/// ```
#[derive(Debug)]
pub struct Service {
    registry: Arc<TenantRegistry>,
    cfg: ServiceConfig,
    cache: Arc<OutcomeCache>,
    quantum: u64,
}

/// Builds a [`Service`]: the tenants it hosts (each a named
/// repository with an optional inflight quota) plus the shared tuning
/// knobs, replacing hand-assembled [`ServiceConfig`] field soup at the
/// call sites that grow tenants.
///
/// The first tenant added is the *default* — the one
/// [`Service::serve`]'s handle targets until
/// [`ServiceHandle::with_tenant`] (or the protocol's `!use` /
/// `repo=`) redirects it, and the one the batch/compat surfaces
/// ([`Service::run_batch`], [`Service::generation`]) address.
///
/// # Examples
///
/// ```
/// use sc_service::{EvictionPolicy, QuerySpec, ServiceBuilder};
/// use sc_setsystem::gen;
///
/// let service = ServiceBuilder::new()
///     .tenant("wiki", gen::planted(128, 256, 8, 3).system)
///     .tenant_with_quota("logs", gen::planted(128, 256, 8, 4).system, 8)
///     .eviction(EvictionPolicy::Lru)
///     .coalesce(true)
///     .build();
/// let ((), _metrics) = service.serve(|handle| {
///     let logs = handle.with_tenant("logs").expect("tenant exists");
///     let t = logs.submit(QuerySpec::IterCover { delta: 0.5, seed: 1 }).unwrap();
///     assert!(t.wait().unwrap().goal_met());
/// });
/// ```
#[derive(Debug)]
pub struct ServiceBuilder {
    cfg: ServiceConfig,
    quantum: Option<u64>,
    cache: Option<Arc<OutcomeCache>>,
    tenants: Vec<(String, SetSystem, Option<usize>)>,
}

impl Default for ServiceBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceBuilder {
    /// A builder with the [`ServiceConfig`] defaults and no tenants
    /// yet; add at least one with [`tenant`](Self::tenant) before
    /// [`build`](Self::build).
    pub fn new() -> Self {
        Self {
            cfg: ServiceConfig::default(),
            quantum: None,
            cache: None,
            tenants: Vec::new(),
        }
    }

    /// Replaces the whole [`ServiceConfig`] at once — for call sites
    /// that already hold an assembled config (tests sweeping config
    /// matrices, the CLI). Individual setters called afterwards still
    /// apply on top.
    #[must_use]
    pub fn config(mut self, cfg: ServiceConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Adds a named tenant serving `system` (as its generation 1) with
    /// the default inflight quota (`max_inflight`). The first tenant
    /// added is the service's default.
    #[must_use]
    pub fn tenant(self, name: impl Into<String>, system: SetSystem) -> Self {
        self.push_tenant(name.into(), system, None)
    }

    /// Adds a named tenant with its own inflight quota: the cap on
    /// queries it may hold inside scan epochs at once, independent of
    /// the service-wide `max_inflight` default — the sizing half of
    /// cross-tenant fairness (the [`FairGate`] is the scheduling
    /// half).
    #[must_use]
    pub fn tenant_with_quota(
        self,
        name: impl Into<String>,
        system: SetSystem,
        quota: usize,
    ) -> Self {
        self.push_tenant(name.into(), system, Some(quota))
    }

    fn push_tenant(mut self, name: String, system: SetSystem, quota: Option<usize>) -> Self {
        self.tenants.push((name, system, quota));
        self
    }

    /// Sets [`ServiceConfig::max_inflight`] (also the default tenant
    /// quota and the default fairness quantum).
    #[must_use]
    pub fn max_inflight(mut self, n: usize) -> Self {
        self.cfg.max_inflight = n;
        self
    }

    /// Sets [`ServiceConfig::workers`].
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.cfg.workers = n;
        self
    }

    /// Sets [`ServiceConfig::queue_depth`] (per tenant — each tenant
    /// has its own bounded submission queue).
    #[must_use]
    pub fn queue_depth(mut self, n: usize) -> Self {
        self.cfg.queue_depth = n;
        self
    }

    /// Sets [`ServiceConfig::cache_capacity`] (ignored when
    /// [`shared_cache`](Self::shared_cache) supplies the cache).
    #[must_use]
    pub fn cache_capacity(mut self, n: usize) -> Self {
        self.cfg.cache_capacity = n;
        self
    }

    /// Sets [`ServiceConfig::eviction`].
    #[must_use]
    pub fn eviction(mut self, policy: EvictionPolicy) -> Self {
        self.cfg.eviction = policy;
        self
    }

    /// Sets [`ServiceConfig::admission`].
    #[must_use]
    pub fn admission(mut self, mode: AdmissionMode) -> Self {
        self.cfg.admission = mode;
        self
    }

    /// Sets [`ServiceConfig::admission_window`].
    #[must_use]
    pub fn admission_window(mut self, window: Duration) -> Self {
        self.cfg.admission_window = window;
        self
    }

    /// Sets [`ServiceConfig::shard_size`].
    #[must_use]
    pub fn shard_size(mut self, n: usize) -> Self {
        self.cfg.shard_size = n;
        self
    }

    /// Sets [`ServiceConfig::coalesce`].
    #[must_use]
    pub fn coalesce(mut self, on: bool) -> Self {
        self.cfg.coalesce = on;
        self
    }

    /// Sets [`ServiceConfig::interleave`].
    #[must_use]
    pub fn interleave(mut self, mode: InterleaveMode) -> Self {
        self.cfg.interleave = mode;
        self
    }

    /// Sets the fairness quantum: the credit a tenant lane is funded
    /// with per arbitration turn of the gate. Under
    /// [`InterleaveMode::Epoch`] it is banked per ring round against
    /// the epoch's inflight cost (default `max_inflight`: one round
    /// funds one full epoch); under [`InterleaveMode::Shard`] it is
    /// the lane's burst of `(tenant, shard)` units per turn (default
    /// `workers`: one turn refills the machine's worker budget). See
    /// [`crate::fairness`].
    #[must_use]
    pub fn quantum(mut self, q: u64) -> Self {
        self.quantum = Some(q);
        self
    }

    /// Supplies a shared outcome cache instead of the private one the
    /// builder would create — several services can point at the same
    /// [`OutcomeCache`]; the (tenant, fingerprint) pair in the cache
    /// key, backed by a per-hit dimension cross-check, keeps answers
    /// apart (see [`OutcomeCache`] for the caveats).
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<OutcomeCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Builds the service.
    ///
    /// # Panics
    ///
    /// Panics if no tenant was added, on a duplicate tenant name, or
    /// if `max_inflight`, `workers`, `queue_depth`, or any tenant
    /// quota is zero.
    pub fn build(self) -> Service {
        let cfg = self.cfg;
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        assert!(
            !self.tenants.is_empty(),
            "a service needs at least one tenant"
        );
        let cache = self.cache.unwrap_or_else(|| {
            Arc::new(OutcomeCache::with_policy(cfg.cache_capacity, cfg.eviction))
        });
        let tenants = self
            .tenants
            .into_iter()
            .enumerate()
            .map(|(slot, (name, system, quota))| {
                let meta = TenantMeta::new(slot as u64, &name, quota.unwrap_or(cfg.max_inflight));
                Tenant::new(meta, system)
            })
            .collect();
        Service {
            registry: TenantRegistry::build(tenants),
            cfg,
            cache,
            quantum: self.quantum.unwrap_or(match cfg.interleave {
                InterleaveMode::Epoch => cfg.max_inflight as u64,
                InterleaveMode::Shard => cfg.workers as u64,
            }),
        }
    }
}

impl Service {
    /// The repository generation new queries of the *default* tenant
    /// are admitted under (tenant-addressed access goes through
    /// [`Service::tenants`]).
    pub fn generation(&self) -> Arc<RepositoryGeneration> {
        self.registry.default_tenant().store().current()
    }

    /// The registry of named tenants this service hosts.
    pub fn tenants(&self) -> &Arc<TenantRegistry> {
        &self.registry
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The outcome cache answering repeat queries.
    pub fn cache(&self) -> &Arc<OutcomeCache> {
        &self.cache
    }

    /// The fingerprint of the default tenant's currently served
    /// repository generation — the cache-key half (with the tenant id)
    /// that keeps answers from different repositories apart.
    pub fn repository_fingerprint(&self) -> u64 {
        self.generation().fingerprint
    }

    /// Installs `system` as the *default* tenant's next repository
    /// generation and reaps the replaced generation's outcome-cache
    /// entries — but only when the fingerprint actually changed *and*
    /// this service is the cache's sole owner: another service sharing
    /// the cache ([`ServiceBuilder::shared_cache`]) may still be
    /// serving the "dead" fingerprint's repository, and its entries
    /// must survive (they stay reachable through its own generation; a
    /// shared cache relies on the capacity bound instead of the eager
    /// reap). Queries already running keep their generation and drain
    /// on it. Prefer [`ServiceHandle::reload`] while serving — it
    /// sequences the swap against the in-flight drain; this method is
    /// the direct form for between-batch swaps.
    pub fn install_repository(&self, system: SetSystem) -> Arc<RepositoryGeneration> {
        self.install_counted(self.registry.default_tenant(), system)
            .0
    }

    /// The swap plus how many dead-generation cache entries it reaped
    /// (from the swapped tenant's cache partition only — a reload of
    /// one tenant never touches a neighbour's entries).
    fn install_counted(
        &self,
        tenant: &Tenant,
        system: SetSystem,
    ) -> (Arc<RepositoryGeneration>, usize) {
        let old = tenant.store().swap(system);
        let fresh = tenant.store().current();
        // Strong count 1 = the cache is privately owned by this
        // service (a conservative test: any outstanding clone of the
        // Arc blocks the reap, whether or not it belongs to a service
        // presenting the old fingerprint).
        let sole_owner = Arc::strong_count(&self.cache) == 1;
        let reaped = if sole_owner && old.fingerprint != fresh.fingerprint && self.cache_enabled() {
            self.cache
                .evict_fingerprint(tenant.meta().id(), old.fingerprint)
        } else {
            0
        };
        (fresh, reaped)
    }

    /// Solves a batch of queries through shared scan epochs, all
    /// admitted before the first scan (up to `max_inflight` at a time;
    /// repeats of an already-retired spec are answered from the cache,
    /// and — with [`ServiceConfig::coalesce`] — repeats of an
    /// *in-flight* spec attach to its job, neither occupying a slot).
    /// Outcomes come back in submission order.
    pub fn run_batch(&self, specs: &[QuerySpec]) -> (Vec<QueryOutcome>, ServiceMetrics) {
        let start = Instant::now();
        let gen = self.registry.default_tenant().store().current();
        let root = SetStream::new(&gen.system);
        let ledger = ScanLedger::new();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..specs.len()).map(|_| None).collect();
        let mut metrics = ServiceMetrics::default();
        let mut next = 0usize;
        let mut state = EpochState::new();
        tel().submitted.add(specs.len() as u64);
        if sc_telemetry::enabled() {
            for slot in 0..specs.len() {
                sc_telemetry::event(EventKind::Submitted, slot as u64, gen.id, 0, 0);
            }
        }
        loop {
            if state.inflight.is_empty() {
                state.group_pass = 0;
            }
            let admitted_from = next;
            let admission_t0 = sc_telemetry::enabled().then(Instant::now);
            while next < specs.len() {
                let slot = next;
                if state.inflight.len() >= gen.tenant.quota() {
                    // Only a fresh job needs an inflight slot: an
                    // identical spec is still disposed of past a full
                    // window — from the cache first (a *shared* cache
                    // can hold a retired answer even while a twin job
                    // is in flight, and zero scans beats waiting on
                    // it), else as a follower of the in-flight job.
                    // Anything else waits for a retirement. The
                    // side-effecting cache lookup only runs when a
                    // leader guarantees the query is disposed of
                    // either way, so a slot blocked on the window is
                    // never counted as a miss twice.
                    let has_leader = self.cfg.coalesce
                        && state.inflight.iter().any(|(_, fl)| fl.spec == specs[slot]);
                    if !has_leader {
                        break;
                    }
                    if let Some(answer) = self.cache_lookup(&gen, &specs[slot]) {
                        let outcome =
                            self.cached_outcome(&gen, slot as u64, specs[slot], start, answer);
                        self.deliver_cached(&gen, &outcome, &mut metrics);
                        outcomes[slot] = Some(outcome);
                    } else {
                        let attached = self.try_coalesce(
                            &gen,
                            &specs[slot],
                            slot,
                            slot as u64,
                            start,
                            Instant::now(),
                            None,
                            &mut state.inflight,
                        );
                        debug_assert!(attached, "the leader cannot vanish mid-admission");
                        metrics.coalesced += 1;
                    }
                    next += 1;
                    continue;
                }
                next += 1;
                if let Some(answer) = self.cache_lookup(&gen, &specs[slot]) {
                    // The whole batch is "submitted" when run_batch
                    // starts, so a hit's latency covers the epochs it
                    // waited for a slot, same as a job's would.
                    let outcome =
                        self.cached_outcome(&gen, slot as u64, specs[slot], start, answer);
                    self.deliver_cached(&gen, &outcome, &mut metrics);
                    outcomes[slot] = Some(outcome);
                    continue;
                }
                if self.try_coalesce(
                    &gen,
                    &specs[slot],
                    slot,
                    slot as u64,
                    start,
                    Instant::now(),
                    None,
                    &mut state.inflight,
                ) {
                    metrics.coalesced += 1;
                    continue;
                }
                if self.cache_enabled() {
                    metrics.cache_misses += 1;
                    tel().cache_misses.incr();
                }
                metrics.jobs += 1;
                tel().jobs.incr();
                sc_telemetry::event(
                    EventKind::Admitted,
                    slot as u64,
                    gen.id,
                    ledger.scan_index() as u64,
                    state.group_pass as u32,
                );
                let fl = Inflight {
                    id: slot as u64,
                    spec: specs[slot],
                    job: crate::job::make_job(&specs[slot], &root),
                    submitted: start,
                    admitted: Instant::now(),
                    reply: None,
                    followers: Vec::new(),
                };
                state.inflight.push((slot, fl));
            }
            if let Some(t0) = admission_t0 {
                if next > admitted_from {
                    tel().stage_admission.record(t0.elapsed());
                }
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(state.inflight.len());
            let retire_from = state.inflight.len();
            let retire_t0 = sc_telemetry::enabled().then(Instant::now);
            self.retire(&gen, &mut state.inflight, &mut metrics, |slot, outcome| {
                outcomes[slot] = Some(outcome);
            });
            if let Some(t0) = retire_t0 {
                if state.inflight.len() < retire_from {
                    tel().stage_retirement.record(t0.elapsed());
                }
            }
            if state.inflight.is_empty() {
                if next >= specs.len() {
                    break;
                }
                continue;
            }
            self.epoch(
                &gen,
                &root,
                &ledger,
                &mut state,
                None,
                &mut metrics,
                false,
                None,
            );
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.elapsed = start.elapsed();
        (
            outcomes
                .into_iter()
                .map(|o| o.expect("all served"))
                .collect(),
            metrics,
        )
    }

    /// Serves queries submitted concurrently through a
    /// [`ServiceHandle`]: `clients` runs on the calling thread while
    /// one scheduler *lane* per tenant runs beside it; when `clients`
    /// returns (and every handle clone it made is dropped), the lanes
    /// drain the remaining queries and the call returns with the
    /// lanes' metrics merged.
    ///
    /// Each lane is the full single-tenant epoch pipeline over its
    /// tenant's generations — so every per-tenant stream of queries
    /// behaves bit-identically to a solo service — while the lanes
    /// share the outcome cache (tenant-partitioned) and arbitrate scan
    /// epochs through the deficit-round-robin [`FairGate`]: a hot
    /// tenant cannot starve a cold one, and a cold tenant's admission
    /// (stage 1, including cache hits) never waits on the gate at all.
    ///
    /// Admission happens at epoch boundaries *and* mid-stream (see
    /// [`AdmissionMode`]): a query arriving while a scan is in flight
    /// splices into that scan — its first pass aligned to the group's
    /// current pass tag, the items observed through the zero-copy
    /// replay — instead of queueing for the next epoch. Repeat queries
    /// are answered from the outcome cache immediately, and
    /// [`ServiceHandle::reload`] hot-swaps the handle's tenant between
    /// epoch groups with in-flight queries draining on their original
    /// generation, other tenants untouched.
    pub fn serve<R, F>(&self, clients: F) -> (R, ServiceMetrics)
    where
        F: FnOnce(ServiceHandle) -> R,
    {
        let lanes = self.registry.len();
        let mut routes = Vec::with_capacity(lanes);
        let mut inboxes = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let (tx, rx) = mpsc::sync_channel(self.cfg.queue_depth);
            routes.push(tx);
            inboxes.push(rx);
        }
        let handle = ServiceHandle {
            routes: routes.into(),
            route: 0,
            counter: Arc::new(AtomicU64::new(0)),
            registry: Arc::clone(&self.registry),
        };
        let gate = match self.cfg.interleave {
            InterleaveMode::Epoch => FairGate::new(lanes, self.quantum),
            InterleaveMode::Shard => {
                FairGate::sharded(lanes, self.quantum, self.cfg.workers as u64)
            }
        };
        let gate = &gate;
        let fanout = InterleavedCursor::new();
        let fanout = &fanout;
        std::thread::scope(|s| {
            let lanes: Vec<_> = inboxes
                .into_iter()
                .enumerate()
                .map(|(lane, rx)| s.spawn(move || self.lane_scheduler(lane, rx, gate, fanout)))
                .collect();
            let r = clients(handle);
            let mut metrics = ServiceMetrics::default();
            for lane in lanes {
                metrics.merge(&lane.join().expect("lane scheduler panicked"));
            }
            (r, metrics)
        })
    }

    /// One tenant's scheduler lane: an outer loop over that tenant's
    /// repository generations, each running the epoch pipeline until
    /// the tenant's channel closes or a reload ends the generation
    /// (in-flight queries drain on it first; the swap is acknowledged
    /// once it took effect). Scan work goes through the shared
    /// [`FairGate`] — per epoch or per `(tenant, shard)` unit,
    /// depending on [`InterleaveMode`].
    fn lane_scheduler(
        &self,
        lane: usize,
        rx: Receiver<Submission>,
        gate: &FairGate,
        fanout: &InterleavedCursor,
    ) -> ServiceMetrics {
        let tenant = self.registry.tenant(lane);
        let start = Instant::now();
        let mut metrics = ServiceMetrics::default();
        let mut physical = 0usize;
        let mut intake = Intake::new(&rx);
        loop {
            let gen = tenant.store().current();
            self.run_generation(
                &gen,
                &mut intake,
                &mut metrics,
                &mut physical,
                (gate, lane),
                fanout,
            );
            match intake.reload.take() {
                Some(req) => {
                    let (fresh, reaped) = self.install_counted(tenant, req.system);
                    metrics.reloads += 1;
                    metrics.evictions += reaped;
                    metrics.reload_evictions += reaped;
                    tel().reloads.incr();
                    tel().cache_evictions.add(reaped as u64);
                    // The requester may have dropped its ticket.
                    let _ = req.reply.send(fresh.id);
                }
                None => break,
            }
        }
        metrics.physical_scans = physical;
        metrics.elapsed = start.elapsed();
        metrics
    }

    /// Runs the epoch pipeline over one pinned repository generation:
    /// boundary admission, retirement, and scan epochs, until nothing
    /// further can arrive for this generation (channel closed, or a
    /// reload captured) and everything admitted has drained. Scan
    /// work is arbitrated across tenant lanes through `gate` —
    /// exclusive epoch holds in [`InterleaveMode::Epoch`], per-unit
    /// holds through the shared `fanout` registry in
    /// [`InterleaveMode::Shard`] (admission and retirement stay
    /// ungated — only the repository-walking stages contend).
    fn run_generation(
        &self,
        gen: &RepositoryGeneration,
        intake: &mut Intake<'_>,
        metrics: &mut ServiceMetrics,
        physical: &mut usize,
        gate: (&FairGate, usize),
        fanout: &InterleavedCursor,
    ) {
        let root = SetStream::new(&gen.system);
        let ledger = ScanLedger::new();
        let mut state = EpochState::new();
        loop {
            // Stage 1 — admission at the epoch boundary. Block only
            // when idle; past a full window, still dispose of cache
            // hits and coalescible duplicates (they need no slot).
            let fresh_group = state.inflight.is_empty();
            if fresh_group {
                state.group_pass = 0;
            }
            // The admission-stage span starts at the first pulled
            // submission (never inside the idle blocking wait) and
            // records once the boundary loop drains.
            let mut admission_t0: Option<Instant> = None;
            loop {
                let sub = if state.inflight.is_empty() {
                    intake.pull_blocking()
                } else {
                    intake.pull_nonblocking()
                };
                let Some(sub) = sub else { break };
                if admission_t0.is_none() && sc_telemetry::enabled() {
                    admission_t0 = Some(Instant::now());
                }
                if state.inflight.len() >= gen.tenant.quota() {
                    match self.dispose_past_full_window(
                        gen,
                        sub,
                        &mut state.inflight,
                        metrics,
                        Instant::now(),
                    ) {
                        Ok(_) => continue,
                        Err(sub) => {
                            // A fresh job with no slot: defer it (order
                            // preserved — the backlog is consumed
                            // first).
                            intake.backlog.push_front(sub);
                            break;
                        }
                    }
                }
                if let Admitted::Job(fl) = self.admit_or_answer(
                    gen,
                    sub,
                    &root,
                    &mut state.inflight,
                    metrics,
                    Instant::now(),
                ) {
                    sc_telemetry::event(
                        EventKind::Admitted,
                        fl.id,
                        gen.id,
                        ledger.scan_index() as u64,
                        state.group_pass as u32,
                    );
                    // The slot mirrors the submission id: serve mode
                    // routes outcomes by reply channel, but the slot
                    // stays meaningful either way.
                    state.inflight.push((fl.id as usize, fl));
                }
            }
            if let Some(t0) = admission_t0 {
                tel().stage_admission.record(t0.elapsed());
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(state.inflight.len());
            // Stage 4 — retirement (replies go out by channel).
            let retire_from = state.inflight.len();
            let retire_t0 = sc_telemetry::enabled().then(Instant::now);
            self.retire(gen, &mut state.inflight, metrics, |_slot, _outcome| {});
            if let Some(t0) = retire_t0 {
                if state.inflight.len() < retire_from {
                    tel().stage_retirement.record(t0.elapsed());
                }
            }
            if state.inflight.is_empty() {
                let drained_for_swap = intake.reload.is_some() && intake.backlog.is_empty();
                let closed_and_done = !intake.open && intake.backlog.is_empty();
                if drained_for_swap || closed_and_done {
                    break;
                }
                continue;
            }
            // Stages 2 + 3 — one scan epoch, gated across tenant
            // lanes (the RAII holds release even if the epoch
            // panics). Epoch mode holds the gate exclusively for the
            // whole scan, its cost the rider count — heavy epochs
            // spend proportionally more deficit credit. Shard mode
            // instead marks the lane live and lets the fan-out meter
            // individual (tenant, shard) units through the shared
            // cursor, so every granted lane advances concurrently.
            let (g, l) = gate;
            let interleave =
                matches!(g.unit(), GrantUnit::Shard).then(|| execution::ShardInterleave {
                    gate: g,
                    lane: l,
                    fanout,
                    counters: gen.tenant.counters(),
                });
            let _hold = interleave
                .is_none()
                .then(|| g.acquire(l, state.inflight.len() as u64));
            let _session = interleave.is_some().then(|| g.enter(l));
            self.epoch(
                gen,
                &root,
                &ledger,
                &mut state,
                Some(intake),
                metrics,
                fresh_group,
                interleave.as_ref(),
            );
        }
        *physical += ledger.physical_scans();
    }

    /// Runs one scan epoch: every inflight job joins one shared
    /// physical pass — exposed as a zero-copy sharded feed — the
    /// configured admission path handles queries arriving while the
    /// scan is in flight, and the work-stealing worker pool fans the
    /// per-query state updates out shard by shard. With `interleave`
    /// set, the fan-out goes through the service-wide shared cursor
    /// with one gate unit held per shard (see
    /// [`execution::ShardInterleave`]).
    #[allow(clippy::too_many_arguments)]
    fn epoch<'g>(
        &self,
        gen: &RepositoryGeneration,
        root: &SetStream<'g>,
        ledger: &ScanLedger,
        state: &mut EpochState<'g>,
        intake: Option<&mut Intake<'_>>,
        metrics: &mut ServiceMetrics,
        fresh_group: bool,
        interleave: Option<&execution::ShardInterleave<'_>>,
    ) {
        state.group_pass += 1;
        for (_, fl) in state.inflight.iter_mut() {
            fl.job.begin_scan();
        }
        let feed = {
            let participants: Vec<&SetStream<'g>> = state
                .inflight
                .iter()
                .flat_map(|(_, fl)| fl.job.participants())
                .collect();
            ledger.scan_sharded(root, &participants, self.cfg.shard_size)
        };
        if sc_telemetry::enabled() {
            // One lifecycle event per rider of this physical scan,
            // tagged with the scan's ordinal and the group pass it
            // carries (mid-stream joiners get their own
            // `admitted`/`aligned_join` events at the splice instead).
            for (_, fl) in state.inflight.iter() {
                sc_telemetry::event(
                    EventKind::EpochScan,
                    fl.id,
                    gen.id,
                    ledger.scan_index() as u64,
                    state.group_pass as u32,
                );
            }
        }
        // The window only arms for a *lone* head of a fresh group: a
        // burst that already arrived together at the epoch boundary is
        // the company the window exists to wait for, so holding its
        // first scan open would stall every query in it for nothing.
        let lone_fresh_head = fresh_group && state.inflight.len() < 2;
        let window = (lone_fresh_head && self.cfg.admission_window > Duration::ZERO)
            .then(|| Instant::now() + self.cfg.admission_window);
        let parked = match (self.cfg.admission, intake) {
            (_, None) => {
                // Batch mode: a pure fan-out, no mid-stream arrivals.
                let _span = tel().stage_execution.span();
                metrics.shard_grants += execution::fan_out(
                    &feed,
                    &mut state.inflight,
                    self.cfg.workers,
                    None,
                    interleave,
                );
                Vec::new()
            }
            (AdmissionMode::Boundary, Some(intake)) => {
                // The PR 4 baseline: blocking drain before the
                // fan-out (joiners ride the workers with the group).
                let parked = {
                    let _span = tel().stage_alignment.span();
                    alignment::blocking_drain(
                        self, gen, root, ledger, state, intake, window, metrics,
                    )
                };
                metrics.max_inflight_seen = metrics
                    .max_inflight_seen
                    .max(state.inflight.len() + parked.len());
                let _span = tel().stage_execution.span();
                metrics.shard_grants += execution::fan_out(
                    &feed,
                    &mut state.inflight,
                    self.cfg.workers,
                    None,
                    interleave,
                );
                parked
            }
            (AdmissionMode::Aligned, Some(intake)) => {
                // Non-blocking accept: the fan-out drains arrivals
                // concurrently (answering cache hits on the spot); the
                // splice lands the rest at the boundary.
                let scan_tag = ledger.scan_index();
                let mut pending = Vec::new();
                let units = {
                    let _span = tel().stage_execution.span();
                    let mut drain = execution::ArrivalDrain {
                        service: self,
                        gen,
                        intake,
                        pending: &mut pending,
                        limit: self.cfg.queue_depth,
                        metrics,
                    };
                    execution::fan_out(
                        &feed,
                        &mut state.inflight,
                        self.cfg.workers,
                        Some(&mut drain),
                        interleave,
                    )
                };
                metrics.shard_grants += units;
                let parked = {
                    let _span = tel().stage_alignment.span();
                    alignment::splice_pending(
                        self,
                        gen,
                        root,
                        ledger,
                        &feed,
                        scan_tag,
                        state,
                        intake,
                        &mut pending,
                        window,
                        metrics,
                    )
                };
                metrics.max_inflight_seen = metrics
                    .max_inflight_seen
                    .max(state.inflight.len() + parked.len());
                parked
            }
        };
        for (_, fl) in state.inflight.iter_mut() {
            fl.job.end_scan();
        }
        state.inflight.extend(parked);
    }
}
