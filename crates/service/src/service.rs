//! The scan-epoch scheduler: admission, shared scans, worker fan-out.

use crate::job::{make_job, CoverJob};
use crate::query::{QueryOutcome, QuerySpec};
use sc_bitset::BitSet;
use sc_setsystem::{ElemId, SetId, SetSystem};
use sc_stream::{ScanLedger, SetStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Tuning knobs of the service.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Queries admitted into concurrent scan epochs at once; admission
    /// beyond this waits for a slot (the scheduler's half of
    /// backpressure).
    pub max_inflight: usize,
    /// Worker threads fanning out per-query state updates within one
    /// scan (`std::thread::scope`; the queries are disjoint state, so
    /// the fan-out never touches accounting). `1` disables threading.
    pub workers: usize,
    /// Bound of the submission queue; [`ServiceHandle::submit`] blocks
    /// once this many queries wait unadmitted (the client's half of
    /// backpressure).
    pub queue_depth: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8),
            queue_depth: 256,
        }
    }
}

/// Aggregate counters of one service run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceMetrics {
    /// Physical scans of the repository the service actually performed
    /// — the number scan sharing is measured against (compare with the
    /// sum of per-query `logical_passes`).
    pub physical_scans: usize,
    /// Queries completed.
    pub queries_completed: usize,
    /// Largest number of queries concurrently inside scan epochs.
    pub max_inflight_seen: usize,
    /// Wall-clock from first admission to last retirement.
    pub elapsed: Duration,
}

/// Error returned when the service has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceClosed;

impl std::fmt::Display for ServiceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "service closed")
    }
}

impl std::error::Error for ServiceClosed {}

/// A pending reply for one submitted query.
#[derive(Debug)]
pub struct QueryTicket {
    /// The service-assigned query id.
    pub id: u64,
    rx: Receiver<QueryOutcome>,
}

impl QueryTicket {
    /// Blocks until the query completes.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler exited before serving it.
    pub fn wait(self) -> Result<QueryOutcome, ServiceClosed> {
        self.rx.recv().map_err(|_| ServiceClosed)
    }
}

/// Clonable submission endpoint handed to client code by
/// [`Service::serve`]. Dropping every clone closes the queue; the
/// scheduler then drains what is inflight and exits.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    tx: SyncSender<Submission>,
    counter: Arc<AtomicU64>,
}

impl ServiceHandle {
    /// Enqueues a query; blocks when the submission queue is full.
    ///
    /// # Errors
    ///
    /// [`ServiceClosed`] if the scheduler already exited.
    pub fn submit(&self, spec: QuerySpec) -> Result<QueryTicket, ServiceClosed> {
        let (reply, rx) = mpsc::sync_channel(1);
        let id = self.counter.fetch_add(1, Ordering::Relaxed);
        self.tx
            .send(Submission {
                id,
                spec,
                submitted: Instant::now(),
                reply,
            })
            .map_err(|_| ServiceClosed)?;
        Ok(QueryTicket { id, rx })
    }
}

struct Submission {
    id: u64,
    spec: QuerySpec,
    submitted: Instant,
    reply: SyncSender<QueryOutcome>,
}

/// One admitted query inside the epoch loop.
struct Inflight<'a> {
    id: u64,
    spec: QuerySpec,
    job: Box<dyn CoverJob<'a> + 'a>,
    submitted: Instant,
    admitted: Instant,
    epochs_joined: usize,
    /// `None` in batch mode (outcomes are returned positionally).
    reply: Option<SyncSender<QueryOutcome>>,
}

/// A multi-tenant, in-process cover-query engine over one repository.
///
/// The service holds the [`SetSystem`] and serves streams of cover
/// queries by batching them through shared physical scans: pending
/// queries are admitted into *scan epochs*, every admitted query
/// registers the logical pass it needs next, and one
/// [`SetStream::shared_pass`] per epoch advances all of them — so the
/// physical scan count of a group of concurrent queries is the *max*
/// of their logical pass counts, not the sum, exactly the accounting
/// the streaming model charges for parallel branches.
///
/// # Examples
///
/// ```
/// use sc_service::{QuerySpec, Service, ServiceConfig};
/// use sc_setsystem::gen;
///
/// let inst = gen::planted(256, 512, 8, 7);
/// let service = Service::new(inst.system, ServiceConfig::default());
/// let specs = vec![QuerySpec::IterCover { delta: 0.5, seed: 1 }; 8];
/// let (outcomes, metrics) = service.run_batch(&specs);
/// assert!(outcomes.iter().all(|o| o.goal_met()));
/// // Eight identical queries rode the same physical scans.
/// assert_eq!(metrics.physical_scans, outcomes[0].logical_passes);
/// ```
#[derive(Debug)]
pub struct Service {
    system: SetSystem,
    cfg: ServiceConfig,
}

impl Service {
    /// Wraps a repository with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_inflight`, `workers`, or `queue_depth` is zero.
    pub fn new(system: SetSystem, cfg: ServiceConfig) -> Self {
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        assert!(cfg.workers > 0, "workers must be positive");
        assert!(cfg.queue_depth > 0, "queue_depth must be positive");
        Self { system, cfg }
    }

    /// The repository being served.
    pub fn system(&self) -> &SetSystem {
        &self.system
    }

    /// The active configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Solves a batch of queries through shared scan epochs, all
    /// admitted before the first scan (up to `max_inflight` at a time).
    /// Outcomes come back in submission order.
    pub fn run_batch(&self, specs: &[QuerySpec]) -> (Vec<QueryOutcome>, ServiceMetrics) {
        let start = Instant::now();
        let root = SetStream::new(&self.system);
        let ledger = ScanLedger::new();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..specs.len()).map(|_| None).collect();
        let mut metrics = ServiceMetrics::default();
        let mut next = 0usize;
        let mut inflight: Vec<(usize, Inflight<'_>)> = Vec::new();
        loop {
            while next < specs.len() && inflight.len() < self.cfg.max_inflight {
                // The whole batch is "submitted" when run_batch starts,
                // so queries that wait epochs for a `max_inflight` slot
                // report that wait in `queue_wait` / `latency`.
                let fl = Inflight {
                    id: next as u64,
                    spec: specs[next],
                    job: make_job(&specs[next], &root),
                    submitted: start,
                    admitted: Instant::now(),
                    epochs_joined: 0,
                    reply: None,
                };
                inflight.push((next, fl));
                next += 1;
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len());
            self.retire(&mut inflight, |slot, outcome| {
                outcomes[slot] = Some(outcome);
            });
            if inflight.is_empty() {
                if next >= specs.len() {
                    break;
                }
                continue;
            }
            self.epoch(&root, &ledger, &mut inflight);
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.queries_completed = specs.len();
        metrics.elapsed = start.elapsed();
        (
            outcomes
                .into_iter()
                .map(|o| o.expect("all served"))
                .collect(),
            metrics,
        )
    }

    /// Serves queries submitted concurrently through a
    /// [`ServiceHandle`]: `clients` runs on the calling thread while
    /// the scheduler runs beside it; when `clients` returns (and every
    /// handle clone it made is dropped), the scheduler drains the
    /// remaining queries and the call returns.
    ///
    /// Admission happens at epoch boundaries: new queries wait until
    /// the current scan completes, then join the next epoch (subject to
    /// `max_inflight`).
    pub fn serve<R, F>(&self, clients: F) -> (R, ServiceMetrics)
    where
        F: FnOnce(ServiceHandle) -> R,
    {
        let (tx, rx) = mpsc::sync_channel(self.cfg.queue_depth);
        let handle = ServiceHandle {
            tx,
            counter: Arc::new(AtomicU64::new(0)),
        };
        std::thread::scope(|s| {
            let scheduler = s.spawn(|| self.scheduler(rx));
            let r = clients(handle);
            let metrics = scheduler.join().expect("scheduler panicked");
            (r, metrics)
        })
    }

    /// The serve-mode scheduler: admission from the queue, one shared
    /// scan per epoch, replies on completion.
    fn scheduler(&self, rx: Receiver<Submission>) -> ServiceMetrics {
        let start = Instant::now();
        let root = SetStream::new(&self.system);
        let ledger = ScanLedger::new();
        let mut inflight: Vec<(usize, Inflight<'_>)> = Vec::new();
        let mut metrics = ServiceMetrics::default();
        let mut open = true;
        loop {
            // Admission at the epoch boundary. Block only when idle.
            while open && inflight.len() < self.cfg.max_inflight {
                let sub = if inflight.is_empty() {
                    rx.recv().map_err(|_| TryRecvError::Disconnected)
                } else {
                    rx.try_recv()
                };
                match sub {
                    Ok(sub) => {
                        let admitted = Instant::now();
                        // The slot mirrors the submission id: serve
                        // mode routes outcomes by reply channel, but
                        // the slot stays meaningful either way.
                        inflight.push((
                            sub.id as usize,
                            Inflight {
                                id: sub.id,
                                spec: sub.spec,
                                job: make_job(&sub.spec, &root),
                                submitted: sub.submitted,
                                admitted,
                                epochs_joined: 0,
                                reply: Some(sub.reply),
                            },
                        ));
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            }
            metrics.max_inflight_seen = metrics.max_inflight_seen.max(inflight.len());
            let mut completed = 0usize;
            self.retire(&mut inflight, |_slot, _outcome| completed += 1);
            metrics.queries_completed += completed;
            if inflight.is_empty() {
                if !open {
                    break;
                }
                continue;
            }
            self.epoch(&root, &ledger, &mut inflight);
        }
        metrics.physical_scans = ledger.physical_scans();
        metrics.elapsed = start.elapsed();
        metrics
    }

    /// Runs one scan epoch: every inflight job joins one shared
    /// physical pass, with worker threads fanning the per-query state
    /// updates out across the jobs.
    fn epoch<'a>(
        &'a self,
        root: &SetStream<'a>,
        ledger: &ScanLedger,
        inflight: &mut [(usize, Inflight<'a>)],
    ) {
        for (_, fl) in inflight.iter_mut() {
            fl.job.begin_scan();
            fl.epochs_joined += 1;
        }
        let items: Vec<(SetId, &[ElemId])> = {
            let participants: Vec<&SetStream<'a>> = inflight
                .iter()
                .flat_map(|(_, fl)| fl.job.participants())
                .collect();
            ledger.scan(root, &participants).collect()
        };
        let workers = self.cfg.workers.min(inflight.len());
        if workers > 1 {
            let chunk = inflight.len().div_ceil(workers);
            let items = &items;
            std::thread::scope(|s| {
                for slice in inflight.chunks_mut(chunk) {
                    s.spawn(move || {
                        for (_, fl) in slice {
                            for &(id, elems) in items {
                                fl.job.absorb(id, elems);
                            }
                        }
                    });
                }
            });
        } else {
            for (_, fl) in inflight.iter_mut() {
                for &(id, elems) in &items {
                    fl.job.absorb(id, elems);
                }
            }
        }
        for (_, fl) in inflight.iter_mut() {
            fl.job.end_scan();
        }
    }

    /// Retires every job that no longer wants a scan, building its
    /// outcome and delivering it (reply channel in serve mode, `sink`
    /// callback in batch mode). Retirement order is admission order so
    /// batch outcomes are deterministic.
    fn retire<'a>(
        &self,
        inflight: &mut Vec<(usize, Inflight<'a>)>,
        mut sink: impl FnMut(usize, QueryOutcome),
    ) {
        let mut i = 0;
        while i < inflight.len() {
            if inflight[i].1.job.wants_scan() {
                i += 1;
                continue;
            }
            let (slot, fl) = inflight.remove(i);
            let result = fl.job.finish();
            let mut covered = BitSet::new(self.system.universe());
            for &id in &result.cover {
                for &e in self.system.set(id) {
                    covered.insert(e);
                }
            }
            let outcome = QueryOutcome {
                id: fl.id,
                spec: fl.spec,
                cover: result.cover,
                covered: covered.count(),
                required: result.required,
                logical_passes: result.logical_passes,
                space_words: result.space_words,
                epochs_joined: fl.epochs_joined,
                queue_wait: fl.admitted.duration_since(fl.submitted),
                latency: fl.submitted.elapsed(),
            };
            if let Some(reply) = fl.reply {
                // The client may have dropped its ticket; that is fine.
                let _ = reply.send(outcome.clone());
            }
            sink(slot, outcome);
        }
    }
}
