//! `sc_service` — a concurrent cover-query service that batches many
//! queries through shared physical scans.
//!
//! The streaming model charges for *passes*, not CPU: the repository is
//! read-only and every algorithm interacts with it only through
//! sequential scans. PR 1 exploited that inside a single `iterSetCover`
//! run (all `log₂ n` guesses ride one physical scan per logical pass —
//! [`sc_core::multiplex`]); this crate applies the same idea one level
//! up. A [`Service`] owns one hot [`SetSystem`](sc_setsystem::SetSystem)
//! repository and accepts a stream of cover queries
//! ([`QuerySpec::IterCover`], [`QuerySpec::PartialCover`],
//! [`QuerySpec::GreedyBaseline`]) from many clients concurrently; a
//! scan scheduler admits pending queries into **scan epochs**, each
//! query's state machine registers the logical pass it needs next, and
//! one shared physical scan per epoch advances all of them. The scan
//! itself is a **sharded zero-copy feed**
//! ([`sc_stream::ShardedPass`], via
//! [`sc_stream::ScanLedger::scan_sharded`]): the repository is
//! partitioned into contiguous shards read directly from the
//! repository slices — nothing is materialised per epoch — and a
//! work-stealing cursor ([`sc_stream::FeedCursor`]) hands `(job,
//! shard)` units to a `std::thread::scope` worker pool, every job
//! observing every shard in repository order
//! ([`ServiceConfig::shard_size`] sets the stealing granularity).
//!
//! Four scale levers ride on the epoch scheduler:
//!
//! * **Mid-stream, pass-aligned admission** — a query arriving while a
//!   scan is in flight joins that scan instead of queueing for the
//!   next epoch: the feed reads the immutable repository directly, so
//!   a pass-1 joiner still observes every item in repository order,
//!   and [`sc_stream::ScanLedger::join`] logs its logical pass without
//!   a second physical walk. [`ServiceConfig::admission_window`]
//!   optionally holds a fresh group's first scan open for the rest of
//!   a burst.
//! * **In-flight query coalescing** — with
//!   [`ServiceConfig::coalesce`], a query identical to a job already
//!   in flight attaches to it as a follower instead of running: the
//!   job's retirement fans one reply out per follower and populates
//!   the cache once, so N identical concurrent clients cost one
//!   query's CPU as well as one query's scans
//!   ([`ServiceMetrics::coalesced`]; pinned by the `coalesce` test
//!   suite and measured by experiment E19, `BENCH_coalesce.json`).
//!   The cache takes precedence: a retired identical answer is served
//!   in zero scans rather than waiting on the in-flight job.
//! * **The outcome cache** — repeat queries (same spec, same
//!   repository fingerprint) are answered from [`OutcomeCache`] in
//!   zero physical scans, with hit/miss counters in
//!   [`ServiceMetrics`]; a cache shared across services keeps
//!   repositories apart through the content fingerprint in the key
//!   plus a per-hit dimension cross-check (see [`OutcomeCache`] for
//!   the collision caveat).
//! * **Latency histograms** — [`ServiceMetrics::queue_wait`] and
//!   [`ServiceMetrics::latency`] are log-bucketed
//!   [`LatencyHistogram`]s with p50/p90/p99 extraction, the numbers
//!   experiment E18 (`BENCH_service_load.json`) reports under load.
//!
//! Two guarantees, both pinned by integration tests:
//!
//! * **Equivalence** — a query solved through the service returns the
//!   bit-identical cover, logical pass count, and space peak as the
//!   same query run solo (`service_equivalence`) — under mid-stream
//!   admission and cache hits alike: each job keeps its own forked
//!   stream counter and space meter and performs exactly the
//!   sequential operations in the same order, and a cache hit replays
//!   the stored solo observables verbatim.
//! * **Scan sharing is real** — for `N` concurrent identical queries
//!   the service performs `max` (not `N ×`) physical scans, recorded
//!   by [`sc_stream::ScanLedger`] and reported in
//!   [`ServiceMetrics::physical_scans`] (`service_scan_sharing`), and
//!   cache hits cost zero scans (`outcome_cache`).
//!
//! Entry points: [`Service::run_batch`] for a fixed workload (all
//! queries admitted before the first scan — what experiment E17
//! measures) and [`Service::serve`] for concurrent clients submitting
//! through a [`ServiceHandle`] with bounded-queue backpressure. The
//! line protocol spoken by `sctool serve` lives in [`QuerySpec::parse`]
//! / [`QueryOutcome::protocol_line`]; the TCP front-end and the
//! [`net::wait_ready`] readiness probe live in [`net`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod job;
mod metrics;
pub mod net;
mod query;
mod service;

pub use cache::{CachedAnswer, OutcomeCache};
pub use metrics::{LatencyHistogram, ServiceMetrics};
pub use query::{QueryOutcome, QuerySpec};
pub use service::{QueryTicket, Service, ServiceClosed, ServiceConfig, ServiceHandle};
