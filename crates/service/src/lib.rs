//! `sc_service` — a concurrent cover-query service that batches many
//! queries through shared physical scans.
//!
//! The streaming model charges for *passes*, not CPU: the repository is
//! read-only and every algorithm interacts with it only through
//! sequential scans. PR 1 exploited that inside a single `iterSetCover`
//! run (all `log₂ n` guesses ride one physical scan per logical pass —
//! [`sc_core::multiplex`]); this crate applies the same idea one level
//! up. A [`Service`] owns a hot, hot-swappable
//! [`SetSystem`](sc_setsystem::SetSystem) repository and accepts a
//! stream of cover queries ([`QuerySpec::IterCover`],
//! [`QuerySpec::PartialCover`], [`QuerySpec::GreedyBaseline`]) from
//! many clients concurrently; a scan scheduler admits pending queries
//! into **scan epochs**, each query's state machine registers the
//! logical pass it needs next, and one shared physical scan per epoch
//! advances all of them.
//!
//! # Pipeline module map
//!
//! The scheduler is an explicit staged pipeline; each stage is a
//! module, and the narrow handoff between them is
//! `alignment::EpochState` (the inflight jobs plus the epoch group's
//! pass tag):
//!
//! | stage | module | job |
//! |---|---|---|
//! | 1 admission | `admission` | intake from the submission channel (queries, `!reload`), outcome-cache probe, coalesce-or-build disposition, the deferred-work backlog |
//! | 2 alignment | `alignment` | pass-indexed join planning: which queued query splices into which in-flight scan (pass-2 joins pass-2), the splice itself (ledger join + zero-copy replay), the admission window, and the PR 4 `Boundary` baseline |
//! | 3 execution | `execution` | the sharded work-stealing fan-out ([`sc_stream::ShardedPass`] + [`sc_stream::FeedCursor`], or the shared [`sc_stream::InterleavedCursor`] under shard-granular gating) with the epoch thread concurrently draining arrivals (non-blocking accept) |
//! | 4 retirement | `retirement` | outcome construction (tenant- and generation-tagged), cache fill + eviction accounting, reply fan-out to the query and its coalesced followers |
//! |  lifecycle | `tenants` | [`TenantRegistry`] / [`Tenant`] / [`RepositoryGeneration`]: named repositories, each a fingerprint-versioned generation chain behind its own hot swap, with per-tenant quotas and counters |
//! |  fairness | `fairness` | the deficit-round-robin gate arbitrating tenant lanes' scan work — per `(tenant, shard)` unit by default ([`InterleaveMode::Shard`]), per exclusive epoch as the measured baseline — a hot tenant cannot starve a cold one |
//!
//! `service` orchestrates the stages (epoch loop, batch/serve entry
//! points, the generation outer loop); `cache`, `metrics`, `query`,
//! `protocol`, and `net` are the supporting surfaces (outcome cache
//! with pluggable eviction, counters/histograms, the query grammar,
//! the typed request/reply wire codec, and the event-driven TCP
//! front-end with its readiness poller).
//!
//! # Scale levers
//!
//! * **Pass-aligned, non-blocking mid-stream admission**
//!   ([`AdmissionMode::Aligned`], the default) — a query arriving
//!   while a scan is in flight is committed to that scan immediately
//!   (the epoch thread drains arrivals *while the fan-out runs*) and
//!   spliced at the scan boundary: its first logical pass aligns with
//!   whatever pass the group's scan carries — pass-2 joins pass-2 —
//!   [`sc_stream::ScanLedger::join`] logs the pass against the scan's
//!   tag with no second physical walk, and the joiner observes the
//!   items through the zero-copy replay. The admission window
//!   ([`ServiceConfig::admission_window`]) overlaps the fan-out
//!   instead of blocking the epoch thread up front; the blocking PR 4
//!   path survives as [`AdmissionMode::Boundary`], the baseline
//!   experiment E20 (`BENCH_admission.json`) measures against.
//! * **Multi-tenant serving** — one process hosts many *named*
//!   repositories ([`TenantRegistry`], built through
//!   [`ServiceBuilder`]): each tenant runs its own scheduler lane
//!   (own generation chain, own submission queue, own quota) while
//!   sharing the worker pool and the outcome cache (partitioned by
//!   tenant in the key). The protocol addresses tenants with
//!   `!use <name>` per connection or `repo=<name>` per query, and a
//!   deficit-round-robin gate over scan epochs (`fairness`) keeps a
//!   hot tenant from starving a cold one — cold-tenant admission never
//!   waits on hot-tenant scans at all, only execution is arbitrated.
//! * **Repository lifecycle** — every served repository is a
//!   fingerprint-versioned generation ([`RepositoryGeneration`]):
//!   [`ServiceHandle::reload`] (the `!reload <path>` protocol line)
//!   hot-swaps it mid-load, in-flight queries drain on their original
//!   generation, every outcome reports the generation it was answered
//!   from (`gen=`), and the dead generation's outcome-cache entries
//!   are reaped ([`OutcomeCache::evict_fingerprint`]) — per tenant,
//!   leaving every other tenant's in-flight work untouched.
//! * **In-flight query coalescing** — with
//!   [`ServiceConfig::coalesce`], a query identical to a job already
//!   in flight attaches to it as a follower instead of running: the
//!   job's retirement fans one reply out per follower and populates
//!   the cache once, so N identical concurrent clients cost one
//!   query's CPU as well as one query's scans
//!   ([`ServiceMetrics::coalesced`]; pinned by the `coalesce` test
//!   suite and measured by experiment E19, `BENCH_coalesce.json`).
//!   The cache takes precedence: a retired identical answer is served
//!   in zero scans rather than waiting on the in-flight job.
//! * **The outcome cache** — repeat queries (same spec, same
//!   repository fingerprint) are answered from [`OutcomeCache`] in
//!   zero physical scans, with hit/miss/eviction counters in
//!   [`ServiceMetrics`] and a pluggable [`EvictionPolicy`] (FIFO for
//!   deterministic batches, LRU for serving workloads with a hot
//!   repeat set — the `sctool serve` default); a cache shared across
//!   services keeps repositories apart through the content
//!   fingerprint in the key plus a per-hit dimension cross-check (see
//!   [`OutcomeCache`] for the collision caveat).
//! * **Latency histograms** — [`ServiceMetrics::queue_wait`] and
//!   [`ServiceMetrics::latency`] are log-bucketed
//!   [`LatencyHistogram`]s with p50/p90/p99 extraction, the numbers
//!   experiments E18/E20 report under load.
//!
//! Two guarantees, both pinned by integration tests:
//!
//! * **Equivalence** — a query solved through the service returns the
//!   bit-identical cover, logical pass count, and space peak as the
//!   same query run solo (`service_equivalence`, `alignment`) — under
//!   mid-stream splices, cache hits, and hot swaps alike: each job
//!   keeps its own forked stream counter and space meter and performs
//!   exactly the sequential operations in the same order, and a cache
//!   hit replays the stored solo observables verbatim.
//! * **Scan sharing is real** — for `N` concurrent identical queries
//!   the service performs `max` (not `N ×`) physical scans, recorded
//!   by [`sc_stream::ScanLedger`] and reported in
//!   [`ServiceMetrics::physical_scans`] (`service_scan_sharing`), and
//!   cache hits cost zero scans (`outcome_cache`).
//!
//! Entry points: [`Service::run_batch`] for a fixed workload (all
//! queries admitted before the first scan — what experiment E17
//! measures) and [`Service::serve`] for concurrent clients submitting
//! through a [`ServiceHandle`] with bounded-queue backpressure. The
//! line protocol spoken by `sctool serve` lives in [`QuerySpec::parse`]
//! / [`QueryOutcome::protocol_line`]; the TCP front-end and the
//! [`net::wait_ready`] readiness probe live in [`net`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod admission;
mod alignment;
mod cache;
mod execution;
mod fairness;
mod job;
mod metrics;
pub mod net;
pub mod protocol;
mod query;
mod retirement;
mod service;
mod telemetry;
mod tenants;

pub use cache::{CachedAnswer, EvictionPolicy, OutcomeCache};
pub use metrics::{LatencyHistogram, ServiceMetrics};
pub use net::{NetConfig, NetStats};
pub use query::{QueryOutcome, QuerySpec};
pub use service::{
    AdmissionMode, InterleaveMode, QueryTicket, ReloadTicket, Service, ServiceBuilder,
    ServiceClosed, ServiceConfig, ServiceHandle, TrySubmitError,
};
pub use tenants::{
    RepositoryGeneration, RepositoryStore, Tenant, TenantCounters, TenantMeta, TenantRegistry,
};
