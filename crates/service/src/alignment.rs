//! Pipeline stage 2 — **alignment**: pass-indexed join planning for
//! queries that want to ride a scan already in flight.
//!
//! The repository is immutable, so every physical scan yields the same
//! item sequence — which is exactly why a query can join a scan that
//! is *already running*: the items it "missed" are still there to
//! replay from the repository slices, and
//! [`ScanLedger::join`](sc_stream::ScanLedger::join) charges its
//! logical pass without a second physical walk. This module owns the
//! plan: which queued query splices into which scan, tagged by pass
//! index on both sides ([`CoverJob::next_pass`](crate::job::CoverJob)
//! on the query, [`ScanLedger::scan_index`](sc_stream::ScanLedger) on
//! the scan). A fresh joiner's pass 1 aligns with whatever pass the
//! group's current scan is — pass-2 joins pass-2 — so a query no
//! longer waits out an epoch (or, under a blocking window, the whole
//! group) to start.
//!
//! Two admission modes share this module
//! ([`ServiceConfig::admission`](crate::ServiceConfig)):
//!
//! * [`AdmissionMode::Aligned`](crate::AdmissionMode) (the default) —
//!   **non-blocking accept**: arrivals queue as
//!   [`PendingArrival`]s while the fan-out runs
//!   ([`execution`](crate::execution) drains the channel concurrently)
//!   and [`splice_pending`] splices them at the scan boundary, feeding
//!   each joiner the scan's items through the zero-copy replay before
//!   `end_scan` runs. The admission window, when configured, holds the
//!   boundary of a lone fresh head's first scan open — but its timer
//!   runs from the scan's *start*, so the fan-out already burned most
//!   of it and the epoch thread idles only for the remainder.
//! * [`AdmissionMode::Boundary`](crate::AdmissionMode) — the PR 4
//!   behaviour, kept as the measured baseline (experiment E20): a
//!   blocking drain *before* the fan-out, which holds the epoch thread
//!   idle for the whole window and makes later arrivals wait for the
//!   next epoch.

use crate::admission::{Admitted, Inflight, Intake, PendingArrival};
use crate::metrics::ServiceMetrics;
use crate::service::Service;
use crate::telemetry::tel;
use crate::tenants::RepositoryGeneration;
use sc_stream::{ScanLedger, SetStream, ShardedPass};
use sc_telemetry::EventKind;
use std::time::Instant;

/// The narrow handoff the pipeline stages pass between each other: the
/// jobs inside the scan epochs plus the group's pass bookkeeping.
pub(crate) struct EpochState<'a> {
    /// The admitted jobs, in admission order (retirement preserves it).
    pub inflight: Vec<(usize, Inflight<'a>)>,
    /// Scans the current epoch group has run — the group-side pass
    /// index joiners align against. Reset to zero whenever the
    /// scheduler goes idle (the next admission starts a fresh group).
    pub group_pass: usize,
}

impl<'a> EpochState<'a> {
    pub fn new() -> Self {
        Self {
            inflight: Vec::new(),
            group_pass: 0,
        }
    }
}

/// Splices the arrivals a scan's fan-out drained into that scan, at its
/// boundary (after the fan-out, before `end_scan`) — the aligned-mode
/// half of mid-stream admission.
///
/// Each arrival is disposed of in order: cache hits answer immediately,
/// duplicates coalesce onto their in-flight leader, and a fresh job —
/// room in the inflight window permitting — joins the scan it was
/// drained during: `begin_scan`, [`ScanLedger::join`] (logging its
/// logical pass against the scan's pass tag, no physical walk), then
/// the zero-copy replay of the feed, so by `end_scan` it is
/// indistinguishable from a job that was in the original participant
/// list. Its admission instant is the drain instant — the moment the
/// scheduler committed the in-flight scan to it. Jobs with nothing to
/// scan are parked (returned) until after `end_scan`; fresh jobs that
/// found no room go back to the intake's backlog for the next boundary.
///
/// When `window` is armed (a lone fresh head's first scan), the
/// boundary is held open up to the deadline for company: the wait
/// overlaps nothing *useful* anymore — the fan-out already ran — but
/// it still only spends what remains of the window after the scan,
/// instead of the whole window up front.
#[allow(clippy::too_many_arguments)]
pub(crate) fn splice_pending<'g>(
    service: &Service,
    gen: &RepositoryGeneration,
    root: &SetStream<'g>,
    ledger: &ScanLedger,
    feed: &ShardedPass<'g>,
    scan_tag: usize,
    state: &mut EpochState<'g>,
    intake: &mut Intake<'_>,
    pending: &mut Vec<PendingArrival>,
    window: Option<Instant>,
    metrics: &mut ServiceMetrics,
) -> Vec<(usize, Inflight<'g>)> {
    let mut parked = Vec::new();
    let mut deadline = window;
    loop {
        for arrival in pending.drain(..) {
            let PendingArrival { sub, drained } = arrival;
            let room = state.inflight.len() + parked.len() < gen.tenant.quota();
            if !room {
                // Only a fresh job needs a slot: a duplicate of an
                // in-flight leader is still disposed of past the full
                // window — cache first, else as a follower. Anything
                // else waits at the next boundary.
                match service.dispose_past_full_window(
                    gen,
                    sub,
                    &mut state.inflight,
                    metrics,
                    drained,
                ) {
                    Ok(true) => deadline = None,
                    Ok(false) => {}
                    Err(sub) => intake.backlog.push_back(sub),
                }
                continue;
            }
            match service.admit_or_answer(gen, sub, root, &mut state.inflight, metrics, drained) {
                Admitted::Answered => {
                    // A cache hit joined no scan; the window (if still
                    // open) keeps waiting for a real joiner.
                }
                Admitted::Coalesced => {
                    // The company the window waited for arrived (at
                    // zero cost): stop holding the boundary open.
                    deadline = None;
                }
                Admitted::Job(mut fl) => {
                    if fl.job.wants_scan() {
                        debug_assert_eq!(
                            fl.job.next_pass(),
                            1,
                            "a spliced joiner's first pass rides the in-flight scan"
                        );
                        fl.job.begin_scan();
                        let scan = ledger.join(root, &fl.job.participants());
                        debug_assert_eq!(
                            scan, scan_tag,
                            "the splice lands on the scan the epoch planned it for"
                        );
                        // The scan already walked the repository on the
                        // group's behalf; the joiner observes the same
                        // item sequence through the zero-copy replay.
                        fl.job.absorb_shard(&mut feed.replay());
                        metrics.mid_stream_admissions += 1;
                        tel().mid_stream_admissions.incr();
                        sc_telemetry::event(
                            EventKind::Admitted,
                            fl.id,
                            gen.id,
                            scan_tag as u64,
                            state.group_pass as u32,
                        );
                        if state.group_pass > 1 {
                            // Only per-pass alignment makes this join
                            // possible: the group is past its first
                            // scan, and the joiner's pass 1 still
                            // rides the pass the group is on.
                            metrics.aligned_joins += 1;
                            tel().aligned_joins.incr();
                            sc_telemetry::event(
                                EventKind::AlignedJoin,
                                fl.id,
                                gen.id,
                                scan_tag as u64,
                                state.group_pass as u32,
                            );
                        }
                        state.inflight.push((fl.id as usize, fl));
                        deadline = None;
                    } else {
                        parked.push((fl.id as usize, fl));
                    }
                }
            }
        }
        // Hold a lone fresh head's first boundary open for company —
        // watching the channel only: backlog entries were already
        // examined and deferred above, so re-pulling them here would
        // cycle them through the splice without ever reaching the
        // deadline check.
        let Some(d) = deadline else { break };
        match intake.pull_channel_deadline(d) {
            Some(sub) => pending.push(PendingArrival {
                drained: Instant::now(),
                sub,
            }),
            None => {
                if Instant::now() >= d || !intake.draining_rx() {
                    break;
                }
            }
        }
    }
    parked
}

/// The PR 4 admission path, kept verbatim as
/// [`AdmissionMode::Boundary`](crate::AdmissionMode) — the baseline
/// experiment E20 measures the aligned path against: a *blocking* drain
/// before the fan-out. Queries that arrive while the drain holds the
/// epoch thread join the scan (they ride the worker fan-out like
/// original participants); the admission window, if armed, blocks the
/// thread for up to its full duration before any fan-out work starts,
/// and everything arriving after the drain waits for the next epoch.
/// Returns the jobs that had nothing to scan, to be parked until after
/// `end_scan`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn blocking_drain<'g>(
    service: &Service,
    gen: &RepositoryGeneration,
    root: &SetStream<'g>,
    ledger: &ScanLedger,
    state: &mut EpochState<'g>,
    intake: &mut Intake<'_>,
    window: Option<Instant>,
    metrics: &mut ServiceMetrics,
) -> Vec<(usize, Inflight<'g>)> {
    let mut parked = Vec::new();
    let mut deadline = window;
    while state.inflight.len() + parked.len() < gen.tenant.quota() {
        let sub = match deadline {
            Some(d) => match intake.pull_deadline(d) {
                Some(sub) => sub,
                None => {
                    if !intake.draining_rx() && intake.backlog.is_empty() {
                        break;
                    }
                    if Instant::now() >= d {
                        deadline = None;
                    }
                    continue;
                }
            },
            None => match intake.pull_nonblocking() {
                Some(sub) => sub,
                None => break,
            },
        };
        let now = Instant::now();
        let mut fl =
            match service.admit_or_answer(gen, sub, root, &mut state.inflight, metrics, now) {
                Admitted::Job(fl) => fl,
                Admitted::Coalesced => {
                    deadline = None;
                    continue;
                }
                Admitted::Answered => continue,
            };
        if fl.job.wants_scan() {
            fl.job.begin_scan();
            let scan = ledger.join(root, &fl.job.participants());
            metrics.mid_stream_admissions += 1;
            tel().mid_stream_admissions.incr();
            sc_telemetry::event(
                EventKind::Admitted,
                fl.id,
                gen.id,
                scan as u64,
                state.group_pass as u32,
            );
            state.inflight.push((fl.id as usize, fl));
            // The burst's head joined; take the rest without blocking.
            deadline = None;
        } else {
            parked.push((fl.id as usize, fl));
        }
    }
    parked
}
