//! Query specifications, outcomes, and the line protocol.
//!
//! One request line, one response line — the format `sctool serve`
//! speaks over stdin or TCP and `sctool client` generates load with.
//! Parsing and formatting live here so server, client, and tests agree
//! on a single grammar:
//!
//! ```text
//! iter [delta=0.5] [seed=0]          full cover via iterSetCover
//! partial [eps=0.1] [delta=0.5] [seed=0]   ε-partial cover
//! greedy                             store-all greedy baseline
//! ```
//!
//! Any query line may carry a `repo=<name>` token addressing one of
//! the server's named tenants for that query only
//! ([`QuerySpec::parse_addressed`] strips it); the connection-scoped
//! form is the admin line `!use <name>`. Besides query lines the
//! server accepts the admin lines `ping`, `quit`, `shutdown`,
//! `!repos` (list the served tenants), and `!reload [name] <path>`
//! (hot-swap a served repository; answered `ok reload gen=N …` once
//! its in-flight queries drained on their original generation) —
//! those are intercepted by the pump
//! ([`net::pump_queries`](crate::net::pump_queries)) before
//! [`QuerySpec::parse`] sees them.

use sc_setsystem::SetId;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// One cover query a client can submit to the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuerySpec {
    /// Full cover via the paper's `iterSetCover` (multiplexed guesses).
    IterCover {
        /// Pass/space trade-off δ ∈ (0, 1].
        delta: f64,
        /// RNG seed — results are deterministic given the seed.
        seed: u64,
    },
    /// ε-partial cover via the truncated `iterSetCover`.
    PartialCover {
        /// Allowed uncovered fraction ε ∈ [0, 1).
        epsilon: f64,
        /// Pass/space trade-off δ ∈ (0, 1].
        delta: f64,
        /// RNG seed.
        seed: u64,
    },
    /// The one-pass store-all greedy baseline (`O(mn)` space).
    GreedyBaseline,
}

impl QuerySpec {
    /// Short kind tag used in protocol responses.
    pub fn kind(&self) -> &'static str {
        match self {
            QuerySpec::IterCover { .. } => "iter",
            QuerySpec::PartialCover { .. } => "partial",
            QuerySpec::GreedyBaseline => "greedy",
        }
    }

    /// Parses one protocol request line.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown kind, malformed
    /// `key=value` token, or out-of-range parameter.
    pub fn parse(line: &str) -> Result<QuerySpec, String> {
        let mut it = line.split_whitespace();
        let kind = it.next().ok_or("empty query line")?;
        // Keys each kind accepts — a parameter the kind would silently
        // discard is rejected, so "iter eps=0.2" (meaning a partial
        // query) errors instead of running a different query than the
        // client asked for.
        let allowed: &[&str] = match kind {
            "iter" => &["delta", "seed"],
            "partial" => &["eps", "epsilon", "delta", "seed"],
            "greedy" => &[],
            other => {
                return Err(format!(
                    "unknown query kind {other:?} (expected iter|partial|greedy)"
                ))
            }
        };
        let mut delta = 0.5f64;
        let mut epsilon = 0.1f64;
        let mut seed = 0u64;
        for tok in it {
            let (key, value) = tok
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {tok:?}"))?;
            if !allowed.contains(&key) {
                return Err(format!("{kind:?} queries take no {key:?} parameter"));
            }
            match key {
                "delta" => {
                    delta = value.parse().map_err(|_| format!("bad delta {value:?}"))?;
                }
                "eps" | "epsilon" => {
                    epsilon = value
                        .parse()
                        .map_err(|_| format!("bad epsilon {value:?}"))?;
                }
                "seed" => {
                    seed = value.parse().map_err(|_| format!("bad seed {value:?}"))?;
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if !(delta > 0.0 && delta <= 1.0) {
            return Err(format!("delta must be in (0,1], got {delta}"));
        }
        if !(0.0..1.0).contains(&epsilon) {
            return Err(format!("epsilon must be in [0,1), got {epsilon}"));
        }
        match kind {
            "iter" => Ok(QuerySpec::IterCover { delta, seed }),
            "partial" => Ok(QuerySpec::PartialCover {
                epsilon,
                delta,
                seed,
            }),
            "greedy" => Ok(QuerySpec::GreedyBaseline),
            _ => unreachable!("kind validated above"),
        }
    }

    /// Parses one protocol request line that may carry a
    /// `repo=<name>` token addressing a named tenant for this query
    /// only. The token is position-independent and stripped before
    /// the spec grammar applies (so `iter repo=wiki delta=0.25` and
    /// `repo=wiki iter delta=0.25` both work); at most one is
    /// allowed. Returns the tenant name (if any) beside the spec.
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty or repeated `repo=`, or
    /// anything [`QuerySpec::parse`] rejects in the rest of the line.
    pub fn parse_addressed(line: &str) -> Result<(Option<String>, QuerySpec), String> {
        let mut repo: Option<String> = None;
        let mut rest: Vec<&str> = Vec::new();
        for tok in line.split_whitespace() {
            match tok.strip_prefix("repo=") {
                Some("") => return Err("empty repo= name".to_string()),
                Some(name) => {
                    if repo.is_some() {
                        return Err("repo= given twice".to_string());
                    }
                    repo = Some(name.to_string());
                }
                None => rest.push(tok),
            }
        }
        Ok((repo, QuerySpec::parse(&rest.join(" "))?))
    }
}

impl fmt::Display for QuerySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuerySpec::IterCover { delta, seed } => write!(f, "iter delta={delta} seed={seed}"),
            QuerySpec::PartialCover {
                epsilon,
                delta,
                seed,
            } => write!(f, "partial eps={epsilon} delta={delta} seed={seed}"),
            QuerySpec::GreedyBaseline => write!(f, "greedy"),
        }
    }
}

/// What the service measured for one completed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Service-assigned query id (submission order).
    pub id: u64,
    /// The query as submitted.
    pub spec: QuerySpec,
    /// The emitted cover (set ids).
    pub cover: Vec<SetId>,
    /// Elements the cover actually covers.
    pub covered: usize,
    /// The coverage goal: `n` for full queries, `⌈(1-ε)·n⌉` for
    /// partial ones.
    pub required: usize,
    /// Logical passes charged to this query (max over its parallel
    /// branches — identical to the same query run solo).
    pub logical_passes: usize,
    /// Peak working memory in words (identical to the solo run).
    pub space_words: usize,
    /// Physical scan epochs this query rode (== `logical_passes`:
    /// every epoch it joined advanced its slowest branch by one pass).
    pub epochs_joined: usize,
    /// Time from submission to admission into the first epoch.
    pub queue_wait: Duration,
    /// Time from submission to completion.
    pub latency: Duration,
    /// `true` when the outcome was answered from the cross-query
    /// outcome cache (zero physical scans; all observables are the
    /// stored solo values of the run that populated the entry).
    pub cached: bool,
    /// `true` when this query coalesced onto an identical in-flight
    /// job instead of running as its own
    /// ([`ServiceConfig::coalesce`](crate::ServiceConfig)): the cover,
    /// pass, and space observables mirror that job's — bit-identical
    /// to a solo run by determinism — and `epochs_joined` reports the
    /// job's epoch count.
    pub coalesced: bool,
    /// The repository generation this query was answered from
    /// ([`RepositoryGeneration::id`](crate::RepositoryGeneration::id)
    /// — `1` until the first hot swap). A query admitted before a
    /// `!reload` drains on its original generation and reports it here;
    /// `gen=` in the protocol line.
    pub generation: u64,
    /// The named tenant (repository) this query was answered by —
    /// `"default"` on a single-tenant service; `repo=` in the
    /// protocol line.
    pub tenant: Arc<str>,
}

impl QueryOutcome {
    /// `true` iff the coverage goal was met.
    pub fn goal_met(&self) -> bool {
        self.covered >= self.required
    }

    /// Cover size `|sol|`.
    pub fn cover_size(&self) -> usize {
        self.cover.len()
    }

    /// The one-line protocol response `sctool serve` prints.
    ///
    /// `ok`/`fail` reflects the coverage goal; `fail` still carries the
    /// (best-effort) measurements so a load generator can tabulate it.
    pub fn protocol_line(&self) -> String {
        format!(
            "{} id={} kind={} sol={} covered={}/{} passes={} space={} epochs={} wait_us={} us={} cached={} coal={} gen={} repo={}",
            if self.goal_met() { "ok" } else { "fail" },
            self.id,
            self.spec.kind(),
            self.cover.len(),
            self.covered,
            self.required,
            self.logical_passes,
            self.space_words,
            self.epochs_joined,
            self.queue_wait.as_micros(),
            self.latency.as_micros(),
            u8::from(self.cached),
            u8::from(self.coalesced),
            self.generation,
            self.tenant,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind_with_defaults() {
        assert_eq!(
            QuerySpec::parse("iter").unwrap(),
            QuerySpec::IterCover {
                delta: 0.5,
                seed: 0
            }
        );
        assert_eq!(
            QuerySpec::parse("partial eps=0.25 delta=0.5 seed=9").unwrap(),
            QuerySpec::PartialCover {
                epsilon: 0.25,
                delta: 0.5,
                seed: 9
            }
        );
        assert_eq!(
            QuerySpec::parse("  greedy  ").unwrap(),
            QuerySpec::GreedyBaseline
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in [
            QuerySpec::IterCover {
                delta: 0.25,
                seed: 3,
            },
            QuerySpec::PartialCover {
                epsilon: 0.2,
                delta: 1.0,
                seed: 8,
            },
            QuerySpec::GreedyBaseline,
        ] {
            assert_eq!(QuerySpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "",
            "frobnicate",
            "iter delta",
            "iter delta=zero",
            "iter delta=0",
            "iter delta=1.5",
            "partial eps=1.0",
            "iter passes=3",
            "iter eps=0.2",
            "greedy seed=1",
            "greedy delta=0.5",
        ] {
            assert!(QuerySpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn repo_token_is_stripped_anywhere_in_the_line() {
        for line in [
            "repo=wiki iter delta=0.25 seed=3",
            "iter repo=wiki delta=0.25 seed=3",
            "iter delta=0.25 seed=3 repo=wiki",
        ] {
            let (repo, spec) = QuerySpec::parse_addressed(line).unwrap();
            assert_eq!(repo.as_deref(), Some("wiki"));
            assert_eq!(
                spec,
                QuerySpec::IterCover {
                    delta: 0.25,
                    seed: 3
                }
            );
        }
    }

    #[test]
    fn unaddressed_lines_parse_with_no_tenant() {
        let (repo, spec) = QuerySpec::parse_addressed("greedy").unwrap();
        assert_eq!(repo, None);
        assert_eq!(spec, QuerySpec::GreedyBaseline);
    }

    #[test]
    fn bad_repo_tokens_are_rejected() {
        assert!(QuerySpec::parse_addressed("iter repo=").is_err());
        assert!(QuerySpec::parse_addressed("iter repo=a repo=b").is_err());
        // The stripped rest still goes through the strict grammar.
        assert!(QuerySpec::parse_addressed("repo=wiki frobnicate").is_err());
    }
}
