//! Tenant lifecycle: named repositories, each with its own
//! fingerprint-versioned generation chain, behind one scheduler.
//!
//! A [`Service`](crate::Service) used to own exactly one live
//! repository, so every tenant needed its own process. This module
//! generalises the old `RepositoryStore` into a [`TenantRegistry`]:
//! many *named* repositories, each an independent generation chain
//! ([`RepositoryGeneration`] behind a hot-swappable
//! [`RepositoryStore`]), all served by the one staged pipeline. Every
//! generation carries its tenant's identity ([`TenantMeta`]) — the
//! pipeline stages already receive the generation a query was admitted
//! under, so tenant-scoped cache keys, per-tenant quotas, and
//! per-tenant counters ride along without widening a single stage
//! signature.
//!
//! The scheduler pins the generation a query was admitted under for as
//! long as that query runs — in-flight work drains on its original
//! repository — while [`swap`](RepositoryStore::swap) installs the
//! next generation for everything admitted afterwards, *per tenant*: a
//! `!reload` of one tenant never disturbs another tenant's in-flight
//! queries. The `(tenant, fingerprint)` pair in the outcome-cache key
//! already makes a dead generation's entries unreachable;
//! [`OutcomeCache::evict_fingerprint`](crate::OutcomeCache::evict_fingerprint)
//! reaps them eagerly on swap.

use crate::cache::OutcomeCache;
use sc_setsystem::SetSystem;
use sc_telemetry::Counter;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Always-on per-tenant traffic counters (relaxed atomics, a few
/// nanoseconds per bump), the numbers `!repos` reports live. Each
/// tenant additionally mirrors them onto the process-wide
/// [`sc_telemetry`] registry (`sc_tenant_<name>_*_total`, visible in
/// `!metrics`) — those mirrors are gated on the telemetry switch; these
/// atomics are not, so `!repos` answers even on a quiet server.
pub struct TenantCounters {
    completed: AtomicU64,
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    shard_grants: AtomicU64,
    tel_completed: &'static Counter,
    tel_jobs: &'static Counter,
    tel_cache_hits: &'static Counter,
    tel_coalesced: &'static Counter,
    tel_shard_grants: &'static Counter,
}

impl std::fmt::Debug for TenantCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (completed, jobs, cache_hits, coalesced, shard_grants) = self.snapshot();
        f.debug_struct("TenantCounters")
            .field("completed", &completed)
            .field("jobs", &jobs)
            .field("cache_hits", &cache_hits)
            .field("coalesced", &coalesced)
            .field("shard_grants", &shard_grants)
            .finish()
    }
}

/// Sanitises a tenant name into a telemetry metric segment
/// (`[a-zA-Z0-9_]`), so `!metrics` exposition lines stay one
/// `name value` pair regardless of what the operator called the
/// repository.
fn metric_segment(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl TenantCounters {
    fn new(name: &str) -> Self {
        let seg = metric_segment(name);
        let leaked = |suffix: &str| -> &'static Counter {
            sc_telemetry::counter(Box::leak(
                format!("sc_tenant_{seg}_{suffix}_total").into_boxed_str(),
            ))
        };
        Self {
            completed: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            shard_grants: AtomicU64::new(0),
            tel_completed: leaked("completed"),
            tel_jobs: leaked("jobs"),
            tel_cache_hits: leaked("cache_hits"),
            tel_coalesced: leaked("coalesced"),
            tel_shard_grants: leaked("shard_grants"),
        }
    }

    pub(crate) fn bump_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.tel_completed.incr();
    }

    pub(crate) fn bump_job(&self) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
        self.tel_jobs.incr();
    }

    pub(crate) fn bump_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.tel_cache_hits.incr();
    }

    pub(crate) fn bump_coalesced(&self) {
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        self.tel_coalesced.incr();
    }

    /// One `(tenant, shard)` work unit absorbed through the
    /// shard-granular interleaved fan-out
    /// ([`InterleaveMode::Shard`](crate::InterleaveMode)). Stays zero
    /// under epoch-granular gating.
    pub(crate) fn bump_shard_grant(&self) {
        self.shard_grants.fetch_add(1, Ordering::Relaxed);
        self.tel_shard_grants.incr();
    }

    /// Live `(completed, jobs, cache_hits, coalesced, shard_grants)`
    /// totals.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.completed.load(Ordering::Relaxed),
            self.jobs.load(Ordering::Relaxed),
            self.cache_hits.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.shard_grants.load(Ordering::Relaxed),
        )
    }
}

/// A tenant's identity, carried by every [`RepositoryGeneration`] it
/// serves — so each pipeline stage, which already holds the generation
/// a query was admitted under, knows the tenant without a widened
/// signature.
#[derive(Debug)]
pub struct TenantMeta {
    id: u64,
    name: Arc<str>,
    quota: usize,
    counters: TenantCounters,
}

impl TenantMeta {
    pub(crate) fn new(id: u64, name: &str, quota: usize) -> Arc<Self> {
        assert!(quota > 0, "tenant quota must be positive");
        Arc::new(Self {
            id,
            name: Arc::from(name),
            quota,
            counters: TenantCounters::new(name),
        })
    }

    /// The meta a bare [`RepositoryStore::new`] (and the single-tenant
    /// compat constructors) serve under: tenant slot 0, named
    /// `default`, with the default inflight quota.
    pub(crate) fn solo() -> Arc<Self> {
        Self::new(0, "default", crate::ServiceConfig::default().max_inflight)
    }

    /// The tenant's registry slot — also the tenant half of the
    /// outcome-cache key, which is what keeps two tenants serving
    /// byte-identical repositories (equal fingerprints by construction)
    /// from ever answering each other's queries.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The tenant's name (`!use <name>` / `repo=<name>` in the
    /// protocol).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A cheap shared handle on the name, for tagging outcomes.
    pub(crate) fn name_handle(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// This tenant's inflight quota: the most queries it may hold
    /// inside scan epochs at once. Admission past the quota waits for
    /// one of the tenant's own retirements — the static half of the
    /// fairness story (the deficit-round-robin gate over scan epochs is
    /// the dynamic half).
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// The tenant's live traffic counters.
    pub fn counters(&self) -> &TenantCounters {
        &self.counters
    }
}

/// One immutable generation of a tenant's repository.
///
/// Queries hold the generation they were admitted under (via `Arc`), so
/// a hot swap never pulls a repository out from under an in-flight
/// scan; the generation is freed when the last query over it retires.
#[derive(Debug)]
pub struct RepositoryGeneration {
    /// Monotonically increasing generation id *within the tenant* (the
    /// first repository a tenant is built with is generation `1`).
    /// Reported per outcome as
    /// [`QueryOutcome::generation`](crate::QueryOutcome::generation)
    /// and as `gen=` in the protocol.
    pub id: u64,
    /// The repository itself.
    pub system: SetSystem,
    /// The content fingerprint ([`OutcomeCache::fingerprint`]) — with
    /// the tenant id, the cache-key half that keeps this generation's
    /// answers apart from every other repository's.
    pub fingerprint: u64,
    /// The tenant this generation serves: scan epochs group by
    /// `(tenant, generation)`, and the pipeline stages read quota,
    /// cache partition, and counters from here.
    pub tenant: Arc<TenantMeta>,
}

/// The hot-swappable owner of one tenant's repository generations.
#[derive(Debug)]
pub struct RepositoryStore {
    current: Mutex<Arc<RepositoryGeneration>>,
}

impl RepositoryStore {
    /// Wraps the first repository as generation `1` of a solo
    /// `default` tenant (the single-tenant compat shape).
    pub fn new(system: SetSystem) -> Self {
        Self::for_tenant(TenantMeta::solo(), system)
    }

    /// Wraps the first repository as generation `1` of the given
    /// tenant.
    pub(crate) fn for_tenant(tenant: Arc<TenantMeta>, system: SetSystem) -> Self {
        let fingerprint = OutcomeCache::fingerprint(&system);
        Self {
            current: Mutex::new(Arc::new(RepositoryGeneration {
                id: 1,
                system,
                fingerprint,
                tenant,
            })),
        }
    }

    /// The generation new queries are admitted under right now.
    pub fn current(&self) -> Arc<RepositoryGeneration> {
        self.current.lock().expect("store poisoned").clone()
    }

    /// Installs `system` as the next generation and returns the one it
    /// replaced. Queries already admitted keep their `Arc` to the old
    /// generation and drain on it; only admission from here on sees the
    /// new one. The id is allocated and the generation installed under
    /// one lock, so concurrent swaps always install in id order. The
    /// tenant identity is carried over — a swap changes a tenant's
    /// *content*, never its name, quota, or counters.
    pub fn swap(&self, system: SetSystem) -> Arc<RepositoryGeneration> {
        let fingerprint = OutcomeCache::fingerprint(&system);
        let mut current = self.current.lock().expect("store poisoned");
        let fresh = Arc::new(RepositoryGeneration {
            id: current.id + 1,
            system,
            fingerprint,
            tenant: Arc::clone(&current.tenant),
        });
        std::mem::replace(&mut *current, fresh)
    }
}

/// One named repository the registry serves: its identity, its
/// generation chain, and its quota.
#[derive(Debug)]
pub struct Tenant {
    meta: Arc<TenantMeta>,
    store: RepositoryStore,
}

impl Tenant {
    pub(crate) fn new(meta: Arc<TenantMeta>, system: SetSystem) -> Self {
        let store = RepositoryStore::for_tenant(Arc::clone(&meta), system);
        Self { meta, store }
    }

    /// The tenant's identity (name, id, quota, counters).
    pub fn meta(&self) -> &Arc<TenantMeta> {
        &self.meta
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        self.meta.name()
    }

    /// The tenant's generation chain.
    pub fn store(&self) -> &RepositoryStore {
        &self.store
    }

    /// The generation this tenant's new queries are admitted under.
    pub fn generation(&self) -> Arc<RepositoryGeneration> {
        self.store.current()
    }

    /// This tenant's inflight quota.
    pub fn quota(&self) -> usize {
        self.meta.quota()
    }
}

/// The named repositories one [`Service`](crate::Service) serves —
/// resolution by name for the protocol (`!use`, `repo=`), by slot for
/// the scheduler's per-tenant lanes. The first tenant added is the
/// *default*: what [`ServiceHandle::submit`](crate::ServiceHandle)
/// targets before a `!use`, and what the single-tenant compat
/// constructors wrap.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<Tenant>,
}

impl TenantRegistry {
    pub(crate) fn build(tenants: Vec<Tenant>) -> Arc<Self> {
        assert!(!tenants.is_empty(), "a service needs at least one tenant");
        for (i, t) in tenants.iter().enumerate() {
            assert_eq!(t.meta().id(), i as u64, "tenant ids must be registry slots");
            assert!(
                tenants[..i].iter().all(|u| u.name() != t.name()),
                "duplicate tenant name {:?}",
                t.name()
            );
        }
        Arc::new(Self { tenants })
    }

    /// Number of tenants served.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// `true` is impossible — a registry always holds at least one
    /// tenant — but the pair with [`len`](Self::len) keeps clippy and
    /// callers honest.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The tenant in registry slot `idx`.
    pub fn tenant(&self, idx: usize) -> &Tenant {
        &self.tenants[idx]
    }

    /// The default tenant (slot 0).
    pub fn default_tenant(&self) -> &Tenant {
        &self.tenants[0]
    }

    /// Resolves a tenant by name.
    pub fn get(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.name() == name)
    }

    /// The registry slot of the named tenant.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.tenants.iter().position(|t| t.name() == name)
    }

    /// Iterates the tenants in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(seed: u8) -> SetSystem {
        SetSystem::from_sets(3, vec![vec![0, 1], vec![u32::from(seed) % 3]])
    }

    #[test]
    fn generations_are_versioned_and_fingerprinted() {
        let store = RepositoryStore::new(system(2));
        let g1 = store.current();
        assert_eq!(g1.id, 1);
        assert_eq!(g1.fingerprint, OutcomeCache::fingerprint(&g1.system));

        let old = store.swap(system(0));
        assert_eq!(old.id, 1, "swap returns the replaced generation");
        let g2 = store.current();
        assert_eq!(g2.id, 2);
        assert_ne!(g1.fingerprint, g2.fingerprint, "content changed");

        // The old generation stays usable for draining queries.
        assert_eq!(old.system.num_sets(), 2);
    }

    #[test]
    fn swapping_identical_content_still_advances_the_id() {
        let store = RepositoryStore::new(system(2));
        let before = store.current();
        store.swap(system(2));
        let after = store.current();
        assert_eq!(after.id, before.id + 1);
        assert_eq!(after.fingerprint, before.fingerprint, "same content");
    }

    #[test]
    fn a_swap_preserves_the_tenant_identity() {
        let meta = TenantMeta::new(0, "alpha", 4);
        let store = RepositoryStore::for_tenant(Arc::clone(&meta), system(2));
        store.swap(system(0));
        let g2 = store.current();
        assert_eq!(g2.tenant.name(), "alpha");
        assert_eq!(g2.tenant.quota(), 4);
        assert!(Arc::ptr_eq(&g2.tenant, &meta), "same meta, same counters");
    }

    #[test]
    fn registry_resolves_by_name_and_slot() {
        let reg = TenantRegistry::build(vec![
            Tenant::new(TenantMeta::new(0, "alpha", 8), system(0)),
            Tenant::new(TenantMeta::new(1, "beta", 8), system(1)),
        ]);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.default_tenant().name(), "alpha");
        assert_eq!(reg.index_of("beta"), Some(1));
        assert!(reg.get("gamma").is_none());
        assert_eq!(reg.tenant(1).name(), "beta");
    }

    #[test]
    #[should_panic(expected = "duplicate tenant name")]
    fn registry_rejects_duplicate_names() {
        TenantRegistry::build(vec![
            Tenant::new(TenantMeta::new(0, "alpha", 8), system(0)),
            Tenant::new(TenantMeta::new(1, "alpha", 8), system(1)),
        ]);
    }

    #[test]
    fn counters_snapshot_live_totals() {
        let meta = TenantMeta::new(0, "stats me!", 8);
        meta.counters().bump_job();
        meta.counters().bump_completed();
        meta.counters().bump_completed();
        meta.counters().bump_shard_grant();
        assert_eq!(meta.counters().snapshot(), (2, 1, 0, 0, 1));
        // The telemetry mirror name survived sanitisation.
        assert_eq!(metric_segment("stats me!"), "stats_me_");
    }
}
