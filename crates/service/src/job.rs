//! Per-query pass machines the scheduler can interleave.
//!
//! Every admitted query becomes a [`CoverJob`]: a state machine that
//! registers the streams needing the next logical pass
//! ([`participants`](CoverJob::participants)), absorbs the items of one
//! shared physical scan, and runs its between-scan work in
//! [`end_scan`](CoverJob::end_scan). Each job owns a forked
//! [`SetStream`] (its logical pass meter) and a private [`SpaceMeter`],
//! so its measured passes and space are *identical* to the same query
//! run solo — the `service_equivalence` integration test pins this for
//! all three query kinds.

use crate::query::QuerySpec;
use sc_core::baselines::greedy_over_stored;
use sc_core::partial::coverage_goal;
use sc_core::{IterCoverDriver, IterSetCoverConfig, PartialCoverDriver};
use sc_setsystem::{ElemId, SetId};
use sc_stream::{SetStream, SpaceMeter, Tracked};

/// What a finished job measured.
#[derive(Debug)]
pub(crate) struct JobResult {
    /// The emitted cover.
    pub cover: Vec<SetId>,
    /// Logical passes charged to the query (max over branches).
    pub logical_passes: usize,
    /// Peak working memory in words.
    pub space_words: usize,
    /// The coverage goal this query had to meet.
    pub required: usize,
    /// Scan epochs the job rode, derived from its pass tag
    /// ([`next_pass`](CoverJob::next_pass)` - 1` at retirement): every
    /// epoch a job is inside — boundary-admitted or spliced mid-stream
    /// — completes exactly one of its passes, so the driver's pass
    /// index is the single source of truth for the count.
    pub epochs_joined: usize,
}

/// A cover query advanced one shared physical scan at a time.
///
/// Scan protocol (driven by the scheduler): while
/// [`wants_scan`](CoverJob::wants_scan), call
/// [`begin_scan`](CoverJob::begin_scan), include
/// [`participants`](CoverJob::participants) in the shared pass, feed
/// every item to [`absorb`](CoverJob::absorb), then
/// [`end_scan`](CoverJob::end_scan). Finally, [`finish`](CoverJob::finish).
pub(crate) trait CoverJob<'a>: Send {
    /// `true` while the job needs to join the next physical scan.
    fn wants_scan(&self) -> bool;
    /// The 1-based index of the logical pass this job needs next — the
    /// tag the pass-aligned admission planner matches against the scan
    /// it splices the job into (a fresh job reports `1`). Meaningful
    /// while [`wants_scan`](CoverJob::wants_scan) is `true`.
    fn next_pass(&self) -> usize;
    /// Prepares the job for the scan it is about to join.
    fn begin_scan(&mut self);
    /// The forked streams that must log a logical pass for this scan.
    fn participants(&self) -> Vec<&SetStream<'a>>;
    /// Feeds one stream item.
    fn absorb(&mut self, id: SetId, elems: &[ElemId]);
    /// Feeds a run of stream items — one shard of the zero-copy feed
    /// the epoch scheduler drives jobs with
    /// ([`sc_stream::ShardedPass`]). Shards of one scan must arrive in
    /// repository order (the scheduler's feed cursor guarantees it),
    /// so the job observes exactly the item sequence of a solo pass.
    /// The default feeds [`absorb`](CoverJob::absorb) item by item;
    /// driver-backed jobs forward to their driver's batch entry point.
    fn absorb_shard(&mut self, items: &mut dyn Iterator<Item = (SetId, &'a [ElemId])>) {
        for (id, elems) in items {
            self.absorb(id, elems);
        }
    }
    /// Runs the between-scan transition after the scan's items end.
    fn end_scan(&mut self);
    /// Releases the job and reports its measurements.
    fn finish(self: Box<Self>) -> JobResult;
}

/// Builds the machine for one query spec, forking the query's pass
/// meter off `root`.
pub(crate) fn make_job<'a>(spec: &QuerySpec, root: &SetStream<'a>) -> Box<dyn CoverJob<'a> + 'a> {
    match *spec {
        QuerySpec::IterCover { delta, seed } => Box::new(IterJob::new(
            IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            },
            root,
        )),
        QuerySpec::PartialCover {
            epsilon,
            delta,
            seed,
        } => Box::new(PartialJob::new(
            IterSetCoverConfig {
                delta,
                seed,
                ..Default::default()
            },
            epsilon,
            root,
        )),
        QuerySpec::GreedyBaseline => Box::new(GreedyJob::new(root)),
    }
}

/// Full-cover `iterSetCover` query: a thin ownership wrapper around
/// [`IterCoverDriver`] holding the query's parent stream and meter.
struct IterJob<'a> {
    parent: SetStream<'a>,
    meter: SpaceMeter,
    /// `None` on the empty universe, where the solo path returns an
    /// empty cover without forking any guess.
    driver: Option<IterCoverDriver<'a>>,
}

impl<'a> IterJob<'a> {
    fn new(cfg: IterSetCoverConfig, root: &SetStream<'a>) -> Self {
        let parent = root.fork();
        let meter = SpaceMeter::new();
        let driver = (parent.universe() > 0).then(|| IterCoverDriver::new(&cfg, &parent, &meter));
        Self {
            parent,
            meter,
            driver,
        }
    }
}

impl<'a> CoverJob<'a> for IterJob<'a> {
    fn wants_scan(&self) -> bool {
        self.driver
            .as_ref()
            .is_some_and(IterCoverDriver::wants_scan)
    }

    fn next_pass(&self) -> usize {
        self.driver.as_ref().map_or(1, IterCoverDriver::pass_index)
    }

    fn begin_scan(&mut self) {
        self.driver.as_mut().expect("active job").begin_scan();
    }

    fn participants(&self) -> Vec<&SetStream<'a>> {
        self.driver.as_ref().expect("active job").participants()
    }

    fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        self.driver.as_mut().expect("active job").absorb(id, elems);
    }

    fn absorb_shard(&mut self, items: &mut dyn Iterator<Item = (SetId, &'a [ElemId])>) {
        self.driver
            .as_mut()
            .expect("active job")
            .absorb_items(items);
    }

    fn end_scan(&mut self) {
        self.driver.as_mut().expect("active job").end_scan();
    }

    fn finish(self: Box<Self>) -> JobResult {
        let epochs_joined = self.next_pass() - 1;
        let cover = match self.driver {
            Some(driver) => driver.finish_into(&self.parent, &self.meter).0,
            None => Vec::new(),
        };
        JobResult {
            cover,
            logical_passes: self.parent.passes(),
            space_words: self.meter.peak(),
            required: self.parent.universe(),
            epochs_joined,
        }
    }
}

/// ε-partial `iterSetCover` query wrapping [`PartialCoverDriver`].
struct PartialJob<'a> {
    parent: SetStream<'a>,
    meter: SpaceMeter,
    driver: PartialCoverDriver<'a>,
    required: usize,
}

impl<'a> PartialJob<'a> {
    fn new(cfg: IterSetCoverConfig, epsilon: f64, root: &SetStream<'a>) -> Self {
        let parent = root.fork();
        let meter = SpaceMeter::new();
        let required = coverage_goal(parent.universe(), epsilon);
        let driver = PartialCoverDriver::new(&cfg, required, &parent, &meter);
        Self {
            parent,
            meter,
            driver,
            required,
        }
    }
}

impl<'a> CoverJob<'a> for PartialJob<'a> {
    fn wants_scan(&self) -> bool {
        self.driver.wants_scan()
    }

    fn next_pass(&self) -> usize {
        self.driver.pass_index()
    }

    fn begin_scan(&mut self) {
        self.driver.begin_scan();
    }

    fn participants(&self) -> Vec<&SetStream<'a>> {
        self.driver.participants()
    }

    fn absorb(&mut self, id: SetId, elems: &[ElemId]) {
        self.driver.absorb(id, elems);
    }

    fn absorb_shard(&mut self, items: &mut dyn Iterator<Item = (SetId, &'a [ElemId])>) {
        self.driver.absorb_items(items);
    }

    fn end_scan(&mut self) {
        self.driver.end_scan();
    }

    fn finish(self: Box<Self>) -> JobResult {
        let epochs_joined = self.next_pass() - 1;
        let cover = self.driver.finish_into(&self.parent, &self.meter);
        JobResult {
            cover,
            logical_passes: self.parent.passes(),
            space_words: self.meter.peak(),
            required: self.required,
            epochs_joined,
        }
    }
}

/// The store-all greedy baseline as a one-scan machine: the scan copies
/// the repository (CSR layout), `end_scan` runs the shared
/// [`greedy_over_stored`] half of `StoreAllGreedy` on the copy — so
/// passes (one) and the space peak (`Θ(Σ|r|)` plus the residual bitmap)
/// match the solo run by construction.
struct GreedyJob<'a> {
    parent: SetStream<'a>,
    meter: SpaceMeter,
    store: Option<Tracked<(Vec<u32>, Vec<ElemId>)>>,
    result: Option<Vec<SetId>>,
}

impl<'a> GreedyJob<'a> {
    fn new(root: &SetStream<'a>) -> Self {
        Self {
            parent: root.fork(),
            meter: SpaceMeter::new(),
            store: None,
            result: None,
        }
    }
}

impl<'a> CoverJob<'a> for GreedyJob<'a> {
    fn wants_scan(&self) -> bool {
        self.result.is_none()
    }

    fn next_pass(&self) -> usize {
        // One-scan machine: pass 1 until the store-all scan ran.
        if self.result.is_none() {
            1
        } else {
            2
        }
    }

    fn begin_scan(&mut self) {
        self.store = Some(Tracked::new((vec![0u32], Vec::new()), &self.meter));
    }

    fn participants(&self) -> Vec<&SetStream<'a>> {
        vec![&self.parent]
    }

    fn absorb(&mut self, _id: SetId, elems: &[ElemId]) {
        self.store
            .as_mut()
            .expect("scan in progress")
            .mutate(&self.meter, |(offsets, flat)| {
                flat.extend_from_slice(elems);
                offsets.push(flat.len() as u32);
            });
    }

    fn end_scan(&mut self) {
        let store = self.store.take().expect("scan in progress");
        self.result = Some(greedy_over_stored(
            store,
            self.parent.universe(),
            &self.meter,
        ));
    }

    fn finish(self: Box<Self>) -> JobResult {
        let epochs_joined = self.next_pass() - 1;
        JobResult {
            cover: self.result.unwrap_or_default(),
            logical_passes: self.parent.passes(),
            space_words: self.meter.peak(),
            required: self.parent.universe(),
            epochs_joined,
        }
    }
}
