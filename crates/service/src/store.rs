//! Repository lifecycle: fingerprint-versioned generations behind a
//! hot-swappable store.
//!
//! A [`Service`](crate::Service) used to own its [`SetSystem`] as a
//! fixed field, so changing the served repository meant tearing the
//! whole service down — dropping its outcome cache, its listeners, and
//! every in-flight query with it. [`RepositoryStore`] makes the
//! repository a *generation* instead: an immutable
//! [`RepositoryGeneration`] (the set system plus its content
//! fingerprint and a monotonically increasing id) held behind an
//! atomically swappable handle. The scheduler pins the generation a
//! query was admitted under for as long as that query runs — in-flight
//! work drains on its original repository — while
//! [`swap`](RepositoryStore::swap) installs the next generation for
//! everything admitted afterwards. The fingerprint in the outcome-cache
//! key already makes a dead generation's entries unreachable;
//! [`OutcomeCache::evict_fingerprint`](crate::OutcomeCache::evict_fingerprint)
//! reaps them eagerly on swap.

use crate::cache::OutcomeCache;
use sc_setsystem::SetSystem;
use std::sync::{Arc, Mutex};

/// One immutable generation of the served repository.
///
/// Queries hold the generation they were admitted under (via `Arc`), so
/// a hot swap never pulls a repository out from under an in-flight
/// scan; the generation is freed when the last query over it retires.
#[derive(Debug)]
pub struct RepositoryGeneration {
    /// Monotonically increasing generation id (the first repository a
    /// service is built with is generation `1`). Reported per outcome
    /// as [`QueryOutcome::generation`](crate::QueryOutcome::generation)
    /// and as `gen=` in the protocol.
    pub id: u64,
    /// The repository itself.
    pub system: SetSystem,
    /// The content fingerprint ([`OutcomeCache::fingerprint`]) — the
    /// cache-key half that keeps this generation's answers apart from
    /// every other repository's.
    pub fingerprint: u64,
}

/// The hot-swappable owner of the served repository's generations.
#[derive(Debug)]
pub struct RepositoryStore {
    current: Mutex<Arc<RepositoryGeneration>>,
}

impl RepositoryStore {
    /// Wraps the first repository as generation `1`.
    pub fn new(system: SetSystem) -> Self {
        let fingerprint = OutcomeCache::fingerprint(&system);
        Self {
            current: Mutex::new(Arc::new(RepositoryGeneration {
                id: 1,
                system,
                fingerprint,
            })),
        }
    }

    /// The generation new queries are admitted under right now.
    pub fn current(&self) -> Arc<RepositoryGeneration> {
        self.current.lock().expect("store poisoned").clone()
    }

    /// Installs `system` as the next generation and returns the one it
    /// replaced. Queries already admitted keep their `Arc` to the old
    /// generation and drain on it; only admission from here on sees the
    /// new one. The id is allocated and the generation installed under
    /// one lock, so concurrent swaps always install in id order.
    pub fn swap(&self, system: SetSystem) -> Arc<RepositoryGeneration> {
        let fingerprint = OutcomeCache::fingerprint(&system);
        let mut current = self.current.lock().expect("store poisoned");
        let fresh = Arc::new(RepositoryGeneration {
            id: current.id + 1,
            system,
            fingerprint,
        });
        std::mem::replace(&mut *current, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(seed: u8) -> SetSystem {
        SetSystem::from_sets(3, vec![vec![0, 1], vec![u32::from(seed) % 3]])
    }

    #[test]
    fn generations_are_versioned_and_fingerprinted() {
        let store = RepositoryStore::new(system(2));
        let g1 = store.current();
        assert_eq!(g1.id, 1);
        assert_eq!(g1.fingerprint, OutcomeCache::fingerprint(&g1.system));

        let old = store.swap(system(0));
        assert_eq!(old.id, 1, "swap returns the replaced generation");
        let g2 = store.current();
        assert_eq!(g2.id, 2);
        assert_ne!(g1.fingerprint, g2.fingerprint, "content changed");

        // The old generation stays usable for draining queries.
        assert_eq!(old.system.num_sets(), 2);
    }

    #[test]
    fn swapping_identical_content_still_advances_the_id() {
        let store = RepositoryStore::new(system(2));
        let before = store.current();
        store.swap(system(2));
        let after = store.current();
        assert_eq!(after.id, before.id + 1);
        assert_eq!(after.fingerprint, before.fingerprint, "same content");
    }
}
