//! Cross-tenant admission fairness: a deficit-round-robin gate over
//! scan work, at epoch or shard granularity.
//!
//! Every tenant runs its own scheduler lane (its own generation loop,
//! intake, and epoch pipeline), but the lanes share one machine — so a
//! hot tenant flooding the service with heavy queries could starve a
//! cold one of CPU even though their queues are separate. The
//! [`FairGate`] is the arbiter, and it meters lanes in one of two
//! [`GrantUnit`] modes:
//!
//! * **Epoch** (`FairGate::new`): a lane must hold the gate exclusively
//!   to run a scan epoch (pipeline stages 2 + 3, the part that actually
//!   burns CPU and walks the repository). Deficit round robin decides
//!   the grant: each waiting lane banks `quantum` credit per
//!   arbitration round, an epoch costs its inflight job count, and the
//!   grant goes to the first lane in ring order whose bank covers its
//!   cost. Exactly one epoch runs at a time — simple, and a strict
//!   starvation bound — but a narrow epoch leaves the rest of the
//!   worker pool idle.
//! * **Shard** (`FairGate::sharded`): the gate becomes a DRR-arbitrated
//!   counting semaphore over `(tenant, shard)` work units. A lane
//!   [`enter`](FairGate::enter)s the execution stage (no exclusivity;
//!   every lane with an in-flight epoch is *live* at once) and each
//!   worker takes an [`acquire_unit`](FairGate::acquire_unit) RAII hold
//!   per shard it absorbs, bounded by `capacity` concurrent units
//!   machine-wide. The ring arbitration funds each lane's turn with
//!   `quantum` units; a turn cut short by capacity resumes where it
//!   left off, so a lane bursts up to `quantum` units per ring visit —
//!   the same per-work fairness as epoch mode, at ~three orders finer
//!   granularity. A box serving K narrow tenants saturates its cores
//!   instead of running one narrow epoch at a time.
//!
//! In both modes, **idleness is not a savings account**: every
//! arbitration zeroes the bank of *every* lane with nothing waiting —
//! including lanes the ring walk never reaches. A lane that sheds its
//! whole queue (quota-full `err msg=busy`) therefore re-arrives with an
//! empty bank and pays full freight, instead of burst-starving its
//! neighbours with credit banked before it went quiet.
//!
//! When only one lane is live, shard mode skips the arbiter entirely
//! (a single atomic read per unit — the single-tenant fast path), so a
//! solo service pays no gate overhead at all.
//!
//! Everything *outside* the epoch runs ungated: stage-1 admission,
//! cache hits, retirement replies, and the idle blocking wait on the
//! submission channel — so a cold tenant's queue wait (submission →
//! admission) stays flat no matter how hot its neighbours are; the
//! gate shows up only in execution latency, bounded by the work in
//! front of it.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The granularity at which the gate arbitrates lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum GrantUnit {
    /// One grant = one whole scan epoch, held exclusively.
    Epoch,
    /// One grant = one `(tenant, shard)` work unit; many lanes run
    /// concurrently under a machine-wide unit capacity.
    Shard,
}

#[derive(Debug)]
struct GateInner {
    /// Epoch mode: the lane currently holding the gate.
    holder: Option<usize>,
    /// Epoch mode: per-lane epoch cost while waiting for the gate;
    /// `None` when the lane is not waiting.
    pending: Vec<Option<u64>>,
    /// Shard mode: units currently held via the arbitrated slow path.
    in_use: u64,
    /// Shard mode: per-lane workers blocked waiting for a unit grant.
    waiting: Vec<u64>,
    /// Shard mode: per-lane grants issued but not yet picked up by a
    /// waiting worker.
    granted: Vec<u64>,
    /// Per-lane banked credit (deficit-round-robin state). In epoch
    /// mode credit accrues per arbitration round; in shard mode it is
    /// the unspent remainder of the lane's current `quantum`-unit
    /// turn. Zeroed for every idle lane on every arbitration.
    deficit: Vec<u64>,
    /// Ring position the next arbitration round starts from.
    cursor: usize,
}

impl GateInner {
    /// Idleness is not a savings account: zero the bank of every lane
    /// with nothing waiting — visited by the ring walk or not. This is
    /// what stops a lane that shed its whole queue from returning with
    /// banked credit and burst-starving its neighbours.
    fn forfeit_idle_banks(&mut self, unit: GrantUnit) {
        for lane in 0..self.deficit.len() {
            let idle = match unit {
                GrantUnit::Epoch => self.pending[lane].is_none(),
                GrantUnit::Shard => self.waiting[lane] == 0,
            };
            if idle {
                self.deficit[lane] = 0;
            }
        }
    }
}

/// The deficit-round-robin scan arbiter shared by a service's tenant
/// lanes. See the module docs for the policy.
#[derive(Debug)]
pub(crate) struct FairGate {
    quantum: u64,
    unit: GrantUnit,
    /// Shard mode: max concurrent units machine-wide (the worker
    /// budget). Unused in epoch mode.
    capacity: u64,
    /// Lanes currently inside the execution stage (shard mode). Read
    /// without the lock on the unit fast path.
    engaged: AtomicUsize,
    /// Units that took the arbitrated slow path — the witness that the
    /// single-live-lane fast path really skips the arbiter.
    slow_units: AtomicU64,
    inner: Mutex<GateInner>,
    cv: Condvar,
}

/// RAII hold on the gate for one epoch (epoch mode): released on drop,
/// so a panicking epoch frees the other lanes instead of wedging the
/// scope join.
pub(crate) struct GateHold<'g> {
    gate: &'g FairGate,
    lane: usize,
}

impl Drop for GateHold<'_> {
    fn drop(&mut self) {
        self.gate.release(self.lane);
    }
}

/// RAII mark that a lane is inside the execution stage (shard mode).
/// Dropping it forfeits whatever remains of the lane's current turn —
/// a lane cannot carry mid-turn credit from one epoch to the next.
pub(crate) struct LaneSession<'g> {
    gate: &'g FairGate,
    lane: usize,
}

impl Drop for LaneSession<'_> {
    fn drop(&mut self) {
        self.gate.leave(self.lane);
    }
}

/// RAII hold on one `(tenant, shard)` work unit (shard mode). `None`
/// inside means the unit was granted on the single-live-lane fast path
/// and there is nothing to give back.
pub(crate) struct UnitHold<'g> {
    gate: Option<&'g FairGate>,
}

impl Drop for UnitHold<'_> {
    fn drop(&mut self) {
        if let Some(gate) = self.gate {
            gate.release_unit();
        }
    }
}

impl FairGate {
    /// An epoch-granular gate over `lanes` tenant lanes granting
    /// `quantum` credit per arbitration round. A larger quantum
    /// approaches epoch-count round robin (one visit funds one full
    /// epoch); a smaller one makes a heavy epoch wait out
    /// proportionally more light ones.
    pub fn new(lanes: usize, quantum: u64) -> Self {
        Self::with_unit(lanes, quantum, GrantUnit::Epoch, u64::MAX)
    }

    /// A shard-granular gate: up to `capacity` concurrent `(tenant,
    /// shard)` units machine-wide, arbitrated by DRR in turns of
    /// `quantum` units per lane per ring visit.
    pub fn sharded(lanes: usize, quantum: u64, capacity: u64) -> Self {
        Self::with_unit(lanes, quantum, GrantUnit::Shard, capacity.max(1))
    }

    fn with_unit(lanes: usize, quantum: u64, unit: GrantUnit, capacity: u64) -> Self {
        assert!(lanes > 0, "a gate needs at least one lane");
        Self {
            quantum: quantum.max(1),
            unit,
            capacity,
            engaged: AtomicUsize::new(0),
            slow_units: AtomicU64::new(0),
            inner: Mutex::new(GateInner {
                holder: None,
                pending: vec![None; lanes],
                in_use: 0,
                waiting: vec![0; lanes],
                granted: vec![0; lanes],
                deficit: vec![0; lanes],
                cursor: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The granularity this gate arbitrates at.
    pub fn unit(&self) -> GrantUnit {
        self.unit
    }

    /// Units granted via the arbitrated slow path since construction.
    /// Stays zero while at most one lane is ever live — the witness
    /// for the single-tenant fast path.
    #[cfg(test)]
    pub fn slow_unit_acquires(&self) -> u64 {
        self.slow_units.load(Ordering::Relaxed)
    }

    /// Blocks until this lane holds the gate for one epoch of the given
    /// cost (its inflight job count; clamped to at least 1). Returns an
    /// RAII hold releasing the gate when dropped. Epoch mode only.
    pub fn acquire(&self, lane: usize, cost: u64) -> GateHold<'_> {
        debug_assert_eq!(self.unit, GrantUnit::Epoch);
        let mut g = self.inner.lock().expect("gate poisoned");
        g.pending[lane] = Some(cost.max(1));
        loop {
            if g.holder.is_none() {
                Self::arbitrate(&mut g, self.quantum);
                if g.holder.is_some() {
                    // Someone won — them or us. Wake everyone so the
                    // winner (if it is not this thread) observes it.
                    self.cv.notify_all();
                }
            }
            if g.holder == Some(lane) && g.pending[lane].is_none() {
                return GateHold { gate: self, lane };
            }
            g = self.cv.wait(g).expect("gate poisoned");
        }
    }

    /// Marks this lane live inside the execution stage (shard mode).
    /// While exactly one lane is live, unit acquisition short-circuits
    /// to a single atomic read. Dropping the session forfeits the
    /// lane's remaining turn credit.
    pub fn enter(&self, lane: usize) -> LaneSession<'_> {
        debug_assert_eq!(self.unit, GrantUnit::Shard);
        self.engaged.fetch_add(1, Ordering::SeqCst);
        LaneSession { gate: self, lane }
    }

    /// Blocks until this lane is granted one `(tenant, shard)` work
    /// unit; the unit is returned to the pool when the hold drops.
    /// Shard mode only, called between [`enter`](FairGate::enter) and
    /// the session's drop.
    ///
    /// Fast path: with at most one lane live there is nobody to be
    /// fair to, so the unit is granted on a single atomic read — no
    /// lock, no arbitration, no bookkeeping. (The check is racy by
    /// design: a lane entering concurrently may let a handful of units
    /// through unmetered, bounded by the in-flight worker count, and
    /// metering self-heals on the next unit.)
    pub fn acquire_unit(&self, lane: usize) -> UnitHold<'_> {
        debug_assert_eq!(self.unit, GrantUnit::Shard);
        if self.engaged.load(Ordering::SeqCst) <= 1 {
            return UnitHold { gate: None };
        }
        self.slow_units.fetch_add(1, Ordering::Relaxed);
        let mut g = self.inner.lock().expect("gate poisoned");
        g.waiting[lane] += 1;
        loop {
            Self::arbitrate_shard(&mut g, self.quantum, self.capacity);
            if g.granted.iter().any(|&n| n > 0) {
                // Grants may have landed on other lanes' waiters too.
                self.cv.notify_all();
            }
            if g.granted[lane] > 0 {
                g.granted[lane] -= 1;
                return UnitHold { gate: Some(self) };
            }
            g = self.cv.wait(g).expect("gate poisoned");
        }
    }

    /// One deficit-round-robin arbitration (epoch mode): zero every
    /// idle lane's bank, then walk the ring from the cursor, banking
    /// `quantum` per waiting lane visited, until a lane's bank covers
    /// its epoch cost. The walk always terminates — every full ring
    /// adds `quantum` to each waiter's bank, and costs are finite.
    /// No-op when nobody waits.
    fn arbitrate(g: &mut GateInner, quantum: u64) {
        debug_assert!(g.holder.is_none());
        g.forfeit_idle_banks(GrantUnit::Epoch);
        if g.pending.iter().all(Option::is_none) {
            return;
        }
        loop {
            let lane = g.cursor;
            g.cursor = (g.cursor + 1) % g.pending.len();
            if let Some(cost) = g.pending[lane] {
                g.deficit[lane] = g.deficit[lane].saturating_add(quantum);
                if g.deficit[lane] >= cost {
                    g.deficit[lane] -= cost;
                    g.pending[lane] = None;
                    g.holder = Some(lane);
                    return;
                }
            }
        }
    }

    /// One deficit-round-robin arbitration at shard granularity: while
    /// capacity remains and workers wait, fund the cursor lane's turn
    /// with `quantum` units (once per ring visit — `deficit` holds the
    /// unspent remainder) and convert as much of it into grants as the
    /// lane's waiters and the capacity allow. A turn cut short by
    /// capacity keeps the cursor, so the lane resumes its turn on the
    /// next release; a spent or emptied turn advances the ring.
    fn arbitrate_shard(g: &mut GateInner, quantum: u64, capacity: u64) {
        g.forfeit_idle_banks(GrantUnit::Shard);
        while g.in_use < capacity && g.waiting.iter().any(|&w| w > 0) {
            let lane = g.cursor;
            if g.waiting[lane] == 0 {
                g.deficit[lane] = 0;
                g.cursor = (lane + 1) % g.waiting.len();
                continue;
            }
            if g.deficit[lane] == 0 {
                g.deficit[lane] = quantum; // fund the turn, once per visit
            }
            let grant = g.deficit[lane]
                .min(g.waiting[lane])
                .min(capacity - g.in_use);
            g.deficit[lane] -= grant;
            g.waiting[lane] -= grant;
            g.granted[lane] += grant;
            g.in_use += grant;
            if g.waiting[lane] == 0 {
                // Emptied its queue mid-turn: leftover credit is
                // forfeit, not banked for a burst later.
                g.deficit[lane] = 0;
                g.cursor = (lane + 1) % g.waiting.len();
            } else if g.deficit[lane] == 0 {
                // Turn fully spent: next lane's turn.
                g.cursor = (lane + 1) % g.waiting.len();
            }
            // else: capacity cut the turn short — keep the cursor so
            // the lane resumes its turn when a unit frees up.
        }
    }

    fn release(&self, lane: usize) {
        let mut g = self.inner.lock().expect("gate poisoned");
        debug_assert_eq!(g.holder, Some(lane), "release by the holder only");
        g.holder = None;
        self.cv.notify_all();
    }

    fn release_unit(&self) {
        let mut g = self.inner.lock().expect("gate poisoned");
        debug_assert!(g.in_use > 0, "unit release without a hold");
        g.in_use -= 1;
        Self::arbitrate_shard(&mut g, self.quantum, self.capacity);
        if g.granted.iter().any(|&n| n > 0) {
            self.cv.notify_all();
        }
    }

    fn leave(&self, lane: usize) {
        self.engaged.fetch_sub(1, Ordering::SeqCst);
        let mut g = self.inner.lock().expect("gate poisoned");
        debug_assert_eq!(
            g.waiting[lane], 0,
            "a lane cannot leave with workers still waiting"
        );
        // The departing lane's unspent turn credit dies with it.
        g.deficit[lane] = 0;
        Self::arbitrate_shard(&mut g, self.quantum, self.capacity);
        if g.granted.iter().any(|&n| n > 0) {
            self.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn a_single_lane_always_gets_the_gate() {
        let gate = FairGate::new(1, 4);
        for _ in 0..100 {
            let hold = gate.acquire(0, 64);
            drop(hold);
        }
    }

    #[test]
    fn a_cold_lane_is_granted_within_one_hot_release() {
        // Lane 0 hammers the gate with expensive epochs; lane 1 asks
        // once. The DRR walk must grant lane 1 promptly rather than
        // letting lane 0 re-acquire forever.
        let gate = FairGate::new(2, 8);
        let hot_epochs_before_cold = AtomicUsize::new(0);
        let cold_done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..200 {
                    let hold = gate.acquire(0, 8);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    drop(hold);
                    if cold_done.load(Ordering::SeqCst) == 0 {
                        hot_epochs_before_cold.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
            s.spawn(|| {
                // Let the hot lane win the gate first.
                std::thread::sleep(std::time::Duration::from_millis(2));
                let hold = gate.acquire(1, 8);
                drop(hold);
                cold_done.store(1, Ordering::SeqCst);
            });
        });
        // The cold lane's one epoch landed long before the hot lane's
        // 200 finished (a generous bound: scheduling noise aside, it is
        // granted within a handful of releases).
        let before = hot_epochs_before_cold.load(Ordering::SeqCst);
        assert!(
            before < 190,
            "cold lane starved: {before} hot epochs ran first"
        );
    }

    #[test]
    fn deficit_makes_heavy_epochs_pay_their_weight() {
        // Directly exercise the arbitration walk: with quantum 1, a
        // cost-3 epoch needs three ring rounds of banking while a
        // cost-1 neighbour goes every round.
        let gate = FairGate::new(2, 1);
        {
            let mut g = gate.inner.lock().unwrap();
            g.pending[0] = Some(3);
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            // Lane 0 banked 1 (not enough); lane 1 banked 1 and won.
            assert_eq!(g.holder, Some(1));
            assert_eq!(g.deficit[0], 1);
            g.holder = None;
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            assert_eq!(g.holder, Some(1), "lane 0 still short: 2 < 3");
            g.holder = None;
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            assert_eq!(g.holder, Some(0), "third round funds the heavy epoch");
            assert_eq!(g.deficit[0], 0, "the grant spent the bank");
        }
    }

    #[test]
    fn idle_lanes_bank_nothing() {
        let gate = FairGate::new(3, 5);
        {
            let mut g = gate.inner.lock().unwrap();
            g.deficit[1] = 40; // stale credit from an earlier burst
            g.pending[0] = Some(1);
            g.cursor = 1; // the walk visits the idle lane before granting
            FairGate::arbitrate(&mut g, 5);
            assert_eq!(g.holder, Some(0));
            assert_eq!(g.deficit[1], 0, "idle visit reset the stale bank");
        }
    }

    /// Regression for burst starvation: a lane that sheds its whole
    /// queue must forfeit banked deficit even when the ring walk never
    /// reaches it (the walk stops at the first grant, so "reset on
    /// visit" alone left unvisited idle lanes with stale banks).
    #[test]
    fn a_lane_shedding_its_queries_forfeits_banked_deficit() {
        let gate = FairGate::new(3, 1);
        let mut g = gate.inner.lock().unwrap();
        // Lane 2 banked credit while waiting, then shed everything
        // (quota-full busy replies) before ever being granted.
        g.deficit[2] = 50;
        g.pending[0] = Some(1);
        g.cursor = 0; // grant lands at lane 0; lane 2 is never visited
        FairGate::arbitrate(&mut g, 1);
        assert_eq!(g.holder, Some(0));
        assert_eq!(g.deficit[2], 0, "unvisited idle lane forfeits its bank");
        // When lane 2 comes back with a heavy epoch it pays full
        // freight: three rounds of banking, not an instant burst win.
        g.holder = None;
        g.pending[2] = Some(3);
        g.cursor = 2; // each round's walk visits lane 2 first
        for round in 1..=3 {
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            if round < 3 {
                assert_eq!(g.holder, Some(1), "round {round}: lane 2 still short");
                g.holder = None;
            }
        }
        assert_eq!(g.holder, Some(2), "lane 2 funded at the normal DRR rate");
    }

    /// Shard mode, quantum 1, capacity 1: lanes alternate strictly,
    /// one unit per turn — the quantum can be smaller than a lane's
    /// appetite and the ring still shares by work.
    #[test]
    fn shard_units_alternate_under_unit_quantum() {
        let gate = FairGate::sharded(2, 1, 1);
        let mut g = gate.inner.lock().unwrap();
        g.waiting[0] = 3;
        g.waiting[1] = 3;
        let mut grants = Vec::new();
        for _ in 0..6 {
            FairGate::arbitrate_shard(&mut g, 1, 1);
            let lane = (0..2).find(|&l| g.granted[l] > 0).expect("a grant");
            g.granted[lane] -= 1;
            grants.push(lane);
            g.in_use -= 1; // the unit completes
        }
        assert_eq!(grants, vec![0, 1, 0, 1, 0, 1], "strict alternation");
        assert_eq!(g.in_use, 0);
    }

    /// Shard mode: a turn cut short by capacity carries its unspent
    /// credit across releases — the lane finishes its `quantum`-unit
    /// turn before the ring moves on.
    #[test]
    fn shard_deficit_carries_over_when_capacity_cuts_a_turn() {
        let gate = FairGate::sharded(2, 3, 2);
        let mut g = gate.inner.lock().unwrap();
        g.waiting[0] = 5;
        g.waiting[1] = 5;
        FairGate::arbitrate_shard(&mut g, 3, 2);
        assert_eq!(g.granted[0], 2, "capacity caps the first instalment");
        assert_eq!(g.deficit[0], 1, "turn credit carried, not forfeited");
        assert_eq!(g.cursor, 0, "the lane keeps its turn");
        g.granted[0] = 0;
        g.in_use -= 1; // one unit completes
        FairGate::arbitrate_shard(&mut g, 3, 2);
        assert_eq!(g.granted[0], 1, "the turn's last unit lands first");
        assert_eq!(g.deficit[0], 0);
        assert_eq!(g.cursor, 1, "only now does lane 1 get its turn");
        // Lane 0 got exactly its quantum (3 units) before lane 1 ran.
        g.granted[0] = 0;
        g.in_use -= 1;
        FairGate::arbitrate_shard(&mut g, 3, 2);
        assert_eq!(g.granted[1], 1, "lane 1's turn begins");
    }

    /// Shard mode: a lane whose queue empties mid-turn forfeits the
    /// leftover credit instead of banking it for a later burst.
    #[test]
    fn a_lane_emptying_mid_grant_banks_nothing() {
        let gate = FairGate::sharded(2, 4, 4);
        let mut g = gate.inner.lock().unwrap();
        g.waiting[0] = 2; // less than a full turn
        g.waiting[1] = 3;
        FairGate::arbitrate_shard(&mut g, 4, 4);
        assert_eq!(g.granted[0], 2, "lane 0 drained entirely");
        assert_eq!(g.deficit[0], 0, "its leftover turn credit is forfeit");
        assert_eq!(g.granted[1], 2, "lane 1 fills the remaining capacity");
        assert_eq!(g.deficit[1], 2, "lane 1's turn is merely cut short");
        assert_eq!(g.in_use, 4);
    }

    /// With one live lane, units are granted on the fast path: no
    /// arbitration, no lock — the slow-path counter stays zero. A
    /// second live lane engages the arbiter.
    #[test]
    fn a_single_live_lane_skips_arbitration_entirely() {
        let gate = FairGate::sharded(2, 4, 2);
        {
            let _session = gate.enter(0);
            for _ in 0..100 {
                let unit = gate.acquire_unit(0);
                drop(unit);
            }
            assert_eq!(gate.slow_unit_acquires(), 0, "solo lane pays no toll");
        }
        {
            let _s0 = gate.enter(0);
            let _s1 = gate.enter(1);
            let unit = gate.acquire_unit(0);
            drop(unit);
            assert!(
                gate.slow_unit_acquires() > 0,
                "two live lanes arbitrate for real"
            );
        }
    }

    /// Shard mode end-to-end under real threads: two lanes hammer the
    /// gate concurrently under a small capacity; both finish, and the
    /// semaphore books balance.
    #[test]
    fn shard_lanes_make_progress_under_contention() {
        let gate = FairGate::sharded(2, 2, 2);
        let done = [AtomicUsize::new(0), AtomicUsize::new(0)];
        std::thread::scope(|s| {
            for lane in 0..2 {
                let gate = &gate;
                let done = &done;
                s.spawn(move || {
                    let _session = gate.enter(lane);
                    for _ in 0..50 {
                        let unit = gate.acquire_unit(lane);
                        std::thread::sleep(std::time::Duration::from_micros(10));
                        drop(unit);
                        done[lane].fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(done[0].load(Ordering::SeqCst), 50);
        assert_eq!(done[1].load(Ordering::SeqCst), 50);
        let g = gate.inner.lock().unwrap();
        assert_eq!(g.in_use, 0, "every unit returned");
        assert!(g.waiting.iter().all(|&w| w == 0));
        assert!(g.granted.iter().all(|&n| n == 0));
    }

    /// Leaving the execution stage forfeits the lane's unspent turn.
    #[test]
    fn leaving_a_shard_lane_forfeits_its_turn() {
        let gate = FairGate::sharded(2, 8, 1);
        let session = gate.enter(0);
        gate.inner.lock().unwrap().deficit[0] = 5; // mid-turn leftovers
        drop(session);
        assert_eq!(gate.inner.lock().unwrap().deficit[0], 0);
    }
}
