//! Cross-tenant admission fairness: a deficit-round-robin gate over
//! scan epochs.
//!
//! Every tenant runs its own scheduler lane (its own generation loop,
//! intake, and epoch pipeline), but the lanes share one machine — so a
//! hot tenant flooding the service with heavy queries could starve a
//! cold one of CPU even though their queues are separate. The
//! [`FairGate`] is the arbiter: a lane must hold the gate to run a scan
//! epoch (pipeline stages 2 + 3, the part that actually burns CPU and
//! walks the repository), and the gate grants it by **deficit round
//! robin**: each waiting lane banks `quantum` credit per arbitration
//! round, an epoch costs its inflight job count, and the grant goes to
//! the first lane in ring order whose bank covers its cost. A lane with
//! nothing to run banks nothing (its deficit resets to zero — idleness
//! is not a savings account), so:
//!
//! * a **cold** tenant's occasional epoch is granted within one ring
//!   walk of the hot tenant releasing the gate — it waits at most one
//!   in-flight epoch, never the hot tenant's whole backlog;
//! * a **hot** tenant pays for its weight: an epoch carrying 64 jobs
//!   costs 64 credits, so two hot tenants of unequal batch sizes still
//!   split the machine by work, not by epoch count.
//!
//! Everything *outside* the epoch runs ungated: stage-1 admission,
//! cache hits, retirement replies, and the idle blocking wait on the
//! submission channel — so a cold tenant's queue wait (submission →
//! admission) stays flat no matter how hot its neighbours are; the
//! gate shows up only in execution latency, bounded by the epochs in
//! front of it.

use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct GateInner {
    /// The lane currently holding the gate (running its epoch).
    holder: Option<usize>,
    /// Per-lane epoch cost while waiting for the gate; `None` when the
    /// lane is not waiting.
    pending: Vec<Option<u64>>,
    /// Per-lane banked credit (deficit-round-robin state). Reset to
    /// zero whenever a lane is visited idle, so credit never
    /// accumulates across idle stretches.
    deficit: Vec<u64>,
    /// Ring position the next arbitration round starts from.
    cursor: usize,
}

/// The deficit-round-robin epoch arbiter shared by a service's tenant
/// lanes. See the module docs for the policy.
#[derive(Debug)]
pub(crate) struct FairGate {
    quantum: u64,
    inner: Mutex<GateInner>,
    cv: Condvar,
}

/// RAII hold on the gate: released on drop, so a panicking epoch frees
/// the other lanes instead of wedging the scope join.
pub(crate) struct GateHold<'g> {
    gate: &'g FairGate,
    lane: usize,
}

impl Drop for GateHold<'_> {
    fn drop(&mut self) {
        self.gate.release(self.lane);
    }
}

impl FairGate {
    /// A gate over `lanes` tenant lanes granting `quantum` credit per
    /// arbitration round. A larger quantum approaches epoch-count round
    /// robin (one visit funds one full epoch); a smaller one makes a
    /// heavy epoch wait out proportionally more light ones.
    pub fn new(lanes: usize, quantum: u64) -> Self {
        assert!(lanes > 0, "a gate needs at least one lane");
        Self {
            quantum: quantum.max(1),
            inner: Mutex::new(GateInner {
                holder: None,
                pending: vec![None; lanes],
                deficit: vec![0; lanes],
                cursor: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until this lane holds the gate for one epoch of the given
    /// cost (its inflight job count; clamped to at least 1). Returns an
    /// RAII hold releasing the gate when dropped.
    pub fn acquire(&self, lane: usize, cost: u64) -> GateHold<'_> {
        let mut g = self.inner.lock().expect("gate poisoned");
        g.pending[lane] = Some(cost.max(1));
        loop {
            if g.holder.is_none() {
                Self::arbitrate(&mut g, self.quantum);
                if g.holder.is_some() {
                    // Someone won — them or us. Wake everyone so the
                    // winner (if it is not this thread) observes it.
                    self.cv.notify_all();
                }
            }
            if g.holder == Some(lane) && g.pending[lane].is_none() {
                return GateHold { gate: self, lane };
            }
            g = self.cv.wait(g).expect("gate poisoned");
        }
    }

    /// One deficit-round-robin arbitration: walk the ring from the
    /// cursor, banking `quantum` per waiting lane visited (and zeroing
    /// idle lanes' banks), until a lane's bank covers its epoch cost.
    /// The walk always terminates — every full ring adds `quantum` to
    /// each waiter's bank, and costs are finite. No-op when nobody
    /// waits.
    fn arbitrate(g: &mut GateInner, quantum: u64) {
        debug_assert!(g.holder.is_none());
        if g.pending.iter().all(Option::is_none) {
            return;
        }
        loop {
            let lane = g.cursor;
            g.cursor = (g.cursor + 1) % g.pending.len();
            match g.pending[lane] {
                Some(cost) => {
                    g.deficit[lane] = g.deficit[lane].saturating_add(quantum);
                    if g.deficit[lane] >= cost {
                        g.deficit[lane] -= cost;
                        g.pending[lane] = None;
                        g.holder = Some(lane);
                        return;
                    }
                }
                None => g.deficit[lane] = 0,
            }
        }
    }

    fn release(&self, lane: usize) {
        let mut g = self.inner.lock().expect("gate poisoned");
        debug_assert_eq!(g.holder, Some(lane), "release by the holder only");
        g.holder = None;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn a_single_lane_always_gets_the_gate() {
        let gate = FairGate::new(1, 4);
        for _ in 0..100 {
            let hold = gate.acquire(0, 64);
            drop(hold);
        }
    }

    #[test]
    fn a_cold_lane_is_granted_within_one_hot_release() {
        // Lane 0 hammers the gate with expensive epochs; lane 1 asks
        // once. The DRR walk must grant lane 1 promptly rather than
        // letting lane 0 re-acquire forever.
        let gate = FairGate::new(2, 8);
        let hot_epochs_before_cold = AtomicUsize::new(0);
        let cold_done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..200 {
                    let hold = gate.acquire(0, 8);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    drop(hold);
                    if cold_done.load(Ordering::SeqCst) == 0 {
                        hot_epochs_before_cold.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
            s.spawn(|| {
                // Let the hot lane win the gate first.
                std::thread::sleep(std::time::Duration::from_millis(2));
                let hold = gate.acquire(1, 8);
                drop(hold);
                cold_done.store(1, Ordering::SeqCst);
            });
        });
        // The cold lane's one epoch landed long before the hot lane's
        // 200 finished (a generous bound: scheduling noise aside, it is
        // granted within a handful of releases).
        let before = hot_epochs_before_cold.load(Ordering::SeqCst);
        assert!(
            before < 190,
            "cold lane starved: {before} hot epochs ran first"
        );
    }

    #[test]
    fn deficit_makes_heavy_epochs_pay_their_weight() {
        // Directly exercise the arbitration walk: with quantum 1, a
        // cost-3 epoch needs three ring rounds of banking while a
        // cost-1 neighbour goes every round.
        let gate = FairGate::new(2, 1);
        {
            let mut g = gate.inner.lock().unwrap();
            g.pending[0] = Some(3);
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            // Lane 0 banked 1 (not enough); lane 1 banked 1 and won.
            assert_eq!(g.holder, Some(1));
            assert_eq!(g.deficit[0], 1);
            g.holder = None;
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            assert_eq!(g.holder, Some(1), "lane 0 still short: 2 < 3");
            g.holder = None;
            g.pending[1] = Some(1);
            FairGate::arbitrate(&mut g, 1);
            assert_eq!(g.holder, Some(0), "third round funds the heavy epoch");
            assert_eq!(g.deficit[0], 0, "the grant spent the bank");
        }
    }

    #[test]
    fn idle_lanes_bank_nothing() {
        let gate = FairGate::new(3, 5);
        {
            let mut g = gate.inner.lock().unwrap();
            g.deficit[1] = 40; // stale credit from an earlier burst
            g.pending[0] = Some(1);
            g.cursor = 1; // the walk visits the idle lane before granting
            FairGate::arbitrate(&mut g, 5);
            assert_eq!(g.holder, Some(0));
            assert_eq!(g.deficit[1], 0, "idle visit reset the stale bank");
        }
    }
}
