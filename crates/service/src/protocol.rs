//! The typed wire codec: every request line and every reply the
//! service speaks, as enums.
//!
//! [`Request::parse`] is the single grammar for the line protocol —
//! query lines ([`QuerySpec::parse_addressed`] underneath), the
//! connection verbs (`ping`, `quit`, `shutdown`), the admin verbs
//! (`!use`, `!repos`, `!reload`), and the telemetry verbs (`!stats`,
//! `!metrics`, `!trace`) — and [`Request::render`] is its canonical
//! inverse (`parse(render(r)) == r`, pinned by a property test).
//! [`Reply::render`] single-sources the response framing: every
//! success is an `ok …` line (plus body lines for the listing verbs),
//! every failure is `err msg=<reason>`, and overload shedding is the
//! fixed `err msg=busy`. The stdin pump, the TCP poller, and `sctool
//! client` all drive this codec, so a framing change happens in
//! exactly one place.
//!
//! Blank lines and `#` comments are connection-level noise, not
//! requests: callers skip them before [`Request::parse`] (an empty
//! line inside the codec is an error, not a no-op).
//!
//! The codec is also the seam for future protocol growth — a
//! streaming-ingest `!append` verb lands here as one new [`Request`]
//! variant plus its dispatch arm, with every front-end picking it up
//! for free.

use crate::query::{QueryOutcome, QuerySpec};

/// One parsed protocol request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A cover query, optionally addressed at a named tenant with a
    /// position-independent `repo=<name>` token.
    Query {
        /// The named tenant this query addresses (`None` = the
        /// connection's current tenant).
        repo: Option<String>,
        /// The query itself.
        spec: QuerySpec,
    },
    /// `!use <name>` — retarget the rest of the connection at a named
    /// tenant.
    Use {
        /// The tenant to switch to.
        repo: String,
    },
    /// `!repos` — list the served tenants with generation,
    /// fingerprint, quota, and live counters.
    Repos,
    /// `!reload [name] <path>` — hot-swap a served repository.
    ///
    /// A path may be double-quoted to carry whitespace (`\"` and `\\`
    /// escape inside): `!reload "/data/my file.sc"` is an unaddressed
    /// spaced path, `!reload wiki "my file.sc"` a targeted one —
    /// [`render`](Request::render) emits the quoted form whenever the
    /// bare token would be ambiguous, so `parse(render(r)) == r`
    /// holds for spaced paths too. Unquoted, the split is purely
    /// lexical: with two or more tokens the first becomes `target`
    /// and the rest the path. Dispatch resolves that — when `target`
    /// names no served tenant, the whole argument is reinterpreted as
    /// a path (with spaces) for the connection's current tenant, so a
    /// hand-typed `!reload /data/my file.sc` keeps working unaddressed
    /// (runs of interior whitespace collapse to single spaces in that
    /// best-effort fallback; the quoted form is exact).
    ///
    /// A `target` is always a single whitespace-free token (tenant
    /// names are); a `Reload` built with a spaced `target` has no wire
    /// form and will not round-trip.
    Reload {
        /// The named tenant to swap (`None` = the connection's
        /// current tenant).
        target: Option<String>,
        /// Path of the instance file to load.
        path: String,
    },
    /// `!stats` — the one-line live telemetry snapshot.
    Stats,
    /// `!metrics` — the framed Prometheus-style counter listing.
    Metrics,
    /// `!trace <id>` — one query's retained journal timeline.
    Trace {
        /// The query id to trace.
        id: u64,
    },
    /// `ping` — answered `pong` in request order (probes the
    /// connection's round-trip, not the scheduler's idle latency).
    Ping,
    /// `quit` — end this connection after pending replies drain.
    Quit,
    /// `shutdown` — stop the server once inflight work drains.
    Shutdown,
}

impl Request {
    /// Parses one protocol request line (already known to be
    /// non-blank and not a `#` comment).
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty line, unknown verb,
    /// missing verb argument, or anything
    /// [`QuerySpec::parse_addressed`] rejects in a query line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let line = line.trim();
        match line {
            "" => return Err("empty request line".into()),
            "quit" => return Ok(Request::Quit),
            "shutdown" => return Ok(Request::Shutdown),
            "ping" => return Ok(Request::Ping),
            "!stats" => return Ok(Request::Stats),
            "!metrics" => return Ok(Request::Metrics),
            "!repos" => return Ok(Request::Repos),
            _ => {}
        }
        if let Some(arg) = verb_arg(line, "!trace") {
            return match arg.parse::<u64>() {
                Ok(id) => Ok(Request::Trace { id }),
                Err(_) if arg.is_empty() => Err("!trace needs a query id".into()),
                Err(_) => Err(format!("!trace: bad query id {arg:?}")),
            };
        }
        if let Some(arg) = verb_arg(line, "!use") {
            return if arg.is_empty() {
                Err("!use needs a repository name".into())
            } else if arg.split_whitespace().nth(1).is_some() {
                Err(format!("!use takes one repository name, got {arg:?}"))
            } else {
                Ok(Request::Use { repo: arg.into() })
            };
        }
        if let Some(arg) = verb_arg(line, "!reload") {
            return if arg.is_empty() {
                Err("!reload needs an instance path".into())
            } else {
                let (target, path) = parse_reload_arg(arg)?;
                Ok(Request::Reload { target, path })
            };
        }
        if line.starts_with('!') {
            let verb = line.split_whitespace().next().unwrap_or(line);
            return Err(format!(
                "unknown verb {verb:?} (expected !use|!repos|!reload|!stats|!metrics|!trace)"
            ));
        }
        let (repo, spec) = QuerySpec::parse_addressed(line)?;
        Ok(Request::Query { repo, spec })
    }

    /// Renders the canonical request line — the exact inverse of
    /// [`parse`](Request::parse) (`repo=` lands at the end of a query
    /// line, verbs join their arguments with single spaces, and a
    /// `!reload` path that the bare token grammar would misparse —
    /// whitespace, a leading `"`, or empty — renders double-quoted).
    pub fn render(&self) -> String {
        match self {
            Request::Query { repo: None, spec } => spec.to_string(),
            Request::Query {
                repo: Some(name),
                spec,
            } => format!("{spec} repo={name}"),
            Request::Use { repo } => format!("!use {repo}"),
            Request::Repos => "!repos".into(),
            Request::Reload { target: None, path } => {
                format!("!reload {}", render_reload_path(path))
            }
            Request::Reload {
                target: Some(name),
                path,
            } => format!("!reload {name} {}", render_reload_path(path)),
            Request::Stats => "!stats".into(),
            Request::Metrics => "!metrics".into(),
            Request::Trace { id } => format!("!trace {id}"),
            Request::Ping => "ping".into(),
            Request::Quit => "quit".into(),
            Request::Shutdown => "shutdown".into(),
        }
    }
}

/// The argument of a standalone verb: `Some("")` for the bare verb,
/// `Some(rest)` for `verb rest`, `None` when the line is some other
/// verb (`!reloadx …` must not match `!reload`).
fn verb_arg<'l>(line: &'l str, verb: &str) -> Option<&'l str> {
    if line == verb {
        Some("")
    } else {
        line.strip_prefix(verb)
            .filter(|rest| rest.starts_with(char::is_whitespace))
            .map(str::trim)
    }
}

/// Splits a non-empty `!reload` argument into `(target, path)`. A
/// path may be double-quoted (`\"`/`\\` escaped inside) to carry
/// whitespace exactly; unquoted, the split is the lexical
/// two-token rule [`Request::Reload`] documents.
fn parse_reload_arg(arg: &str) -> Result<(Option<String>, String), String> {
    if arg.starts_with('"') {
        return Ok((None, parse_quoted_path(arg)?));
    }
    match arg.split_once(char::is_whitespace) {
        Some((name, rest)) if !rest.trim().is_empty() => {
            let rest = rest.trim();
            let path = if rest.starts_with('"') {
                parse_quoted_path(rest)?
            } else {
                rest.to_string()
            };
            Ok((Some(name.to_string()), path))
        }
        _ => Ok((None, arg.to_string())),
    }
}

/// Decodes a `"`-opened quoted path: the closing quote must end the
/// argument, and only `\"` / `\\` escapes are defined inside.
fn parse_quoted_path(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => match chars.next() {
                Some(e @ ('"' | '\\')) => out.push(e),
                _ => return Err("!reload: bad escape in quoted path (only \\\" and \\\\)".into()),
            },
            '"' => {
                return if chars.as_str().trim().is_empty() {
                    Ok(out)
                } else {
                    Err(format!(
                        "!reload: trailing data after quoted path: {:?}",
                        chars.as_str().trim()
                    ))
                };
            }
            c => out.push(c),
        }
    }
    Err("!reload: unterminated quoted path".into())
}

/// Renders a `!reload` path in its canonical wire form: bare when the
/// token grammar reads it back exactly, double-quoted (with `\"`/`\\`
/// escapes) when whitespace, a leading quote, or emptiness would
/// break the round trip.
fn render_reload_path(path: &str) -> String {
    if !path.is_empty() && !path.starts_with('"') && !path.contains(char::is_whitespace) {
        return path.to_string();
    }
    let mut out = String::with_capacity(path.len() + 2);
    out.push('"');
    for c in path.chars() {
        if c == '"' || c == '\\' {
            out.push('\\');
        }
        out.push(c);
    }
    out.push('"');
    out
}

/// One reply the service sends — [`render`](Reply::render) is the
/// single source of the `ok …` / `err msg=…` framing.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A completed query's measurements
    /// ([`QueryOutcome::protocol_line`]).
    Outcome(QueryOutcome),
    /// The answer to `ping`.
    Pong,
    /// `!use` succeeded; the connection now targets `repo`.
    Use {
        /// The tenant the connection switched to.
        repo: String,
    },
    /// `!reload` took effect; the tenant now serves this generation.
    Reload {
        /// The new generation id.
        generation: u64,
    },
    /// The `!stats` snapshot (one line of `key=value` counters).
    Stats {
        /// The rendered stats line ([`sc_telemetry::stats_line`]).
        stats: String,
    },
    /// The `!metrics` listing: a framing header then one line per
    /// counter.
    Metrics {
        /// `name value` body lines.
        body: Vec<String>,
    },
    /// The `!trace` timeline: a framing header then one line per
    /// retained event.
    Trace {
        /// The traced query id.
        id: u64,
        /// Rendered journal event lines.
        events: Vec<String>,
    },
    /// The `!repos` listing: a framing header then one line per
    /// served tenant.
    Repos {
        /// Rendered `repo name=… gen=… …` lines.
        listing: Vec<String>,
    },
    /// The load-shed reply: the server is at its connection limit or
    /// this session's queue bound — renders as the fixed
    /// `err msg=busy` clients retry on.
    Busy,
    /// Any other failure, rendered `err msg=<reason>`.
    Error {
        /// The human-readable reason.
        msg: String,
    },
}

/// The fixed reason string shedding replies carry (`err msg=busy`).
pub const BUSY_MSG: &str = "busy";

/// The fixed reason string an over-long request line is answered with
/// (`err msg=line_too_long`) before the rest of the line is discarded.
pub const LINE_TOO_LONG_MSG: &str = "line_too_long";

impl Reply {
    /// Shorthand for [`Reply::Error`].
    pub fn error(msg: impl Into<String>) -> Reply {
        Reply::Error { msg: msg.into() }
    }

    /// Renders the reply: one `\n`-joined string with no trailing
    /// newline (the listing verbs render their framing header plus
    /// body lines; everything else is a single line).
    pub fn render(&self) -> String {
        match self {
            Reply::Outcome(outcome) => outcome.protocol_line(),
            Reply::Pong => "pong".into(),
            Reply::Use { repo } => format!("ok use repo={repo}"),
            Reply::Reload { generation } => format!("ok reload gen={generation}"),
            Reply::Stats { stats } => format!("ok stats {stats}"),
            Reply::Metrics { body } => {
                let mut out = format!("ok metrics n={}", body.len());
                for line in body {
                    out.push('\n');
                    out.push_str(line);
                }
                out
            }
            Reply::Trace { id, events } => {
                let mut out = format!("ok trace id={id} events={}", events.len());
                for line in events {
                    out.push('\n');
                    out.push_str(line);
                }
                out
            }
            Reply::Repos { listing } => {
                let mut out = format!("ok repos n={}", listing.len());
                for line in listing {
                    out.push('\n');
                    out.push_str(line);
                }
                out
            }
            Reply::Busy => format!("err msg={BUSY_MSG}"),
            Reply::Error { msg } => format!("err msg={msg}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_verb() {
        assert_eq!(Request::parse("ping").unwrap(), Request::Ping);
        assert_eq!(Request::parse("quit").unwrap(), Request::Quit);
        assert_eq!(Request::parse(" shutdown ").unwrap(), Request::Shutdown);
        assert_eq!(Request::parse("!stats").unwrap(), Request::Stats);
        assert_eq!(Request::parse("!metrics").unwrap(), Request::Metrics);
        assert_eq!(Request::parse("!repos").unwrap(), Request::Repos);
        assert_eq!(
            Request::parse("!trace 12").unwrap(),
            Request::Trace { id: 12 }
        );
        assert_eq!(
            Request::parse("!use wiki").unwrap(),
            Request::Use {
                repo: "wiki".into()
            }
        );
        assert_eq!(
            Request::parse("!reload /tmp/a.sc").unwrap(),
            Request::Reload {
                target: None,
                path: "/tmp/a.sc".into()
            }
        );
        assert_eq!(
            Request::parse("!reload wiki /tmp/a.sc").unwrap(),
            Request::Reload {
                target: Some("wiki".into()),
                path: "/tmp/a.sc".into()
            }
        );
        assert_eq!(
            Request::parse("!reload \"/data/my file.sc\"").unwrap(),
            Request::Reload {
                target: None,
                path: "/data/my file.sc".into()
            }
        );
        assert_eq!(
            Request::parse(r#"!reload wiki "my \"quoted\" file.sc""#).unwrap(),
            Request::Reload {
                target: Some("wiki".into()),
                path: "my \"quoted\" file.sc".into()
            }
        );
        assert_eq!(
            Request::parse("greedy repo=wiki").unwrap(),
            Request::Query {
                repo: Some("wiki".into()),
                spec: QuerySpec::GreedyBaseline
            }
        );
        assert_eq!(
            Request::parse("iter delta=0.25 seed=3").unwrap(),
            Request::Query {
                repo: None,
                spec: QuerySpec::IterCover {
                    delta: 0.25,
                    seed: 3
                }
            }
        );
    }

    #[test]
    fn verb_keywords_must_stand_alone() {
        // `!reloadx` is an unknown verb, not a reload; same for the
        // other prefixes.
        assert!(Request::parse("!reloadx /tmp/a.sc").is_err());
        assert!(Request::parse("!used wiki").is_err());
        assert!(Request::parse("!tracey 1").is_err());
        // And the query grammar still owns non-`!` lines.
        assert!(Request::parse("pingx").is_err());
    }

    #[test]
    fn rejects_malformed_verbs_with_reasons() {
        for (bad, needle) in [
            ("", "empty"),
            ("!use", "repository name"),
            ("!use a b", "one repository name"),
            ("!reload", "instance path"),
            ("!reload \"unterminated", "unterminated quoted path"),
            ("!reload \"a b\" extra", "trailing data"),
            (r#"!reload "bad \n escape""#, "bad escape"),
            ("!trace", "query id"),
            ("!trace bogus", "bad query id"),
            ("!frobnicate", "unknown verb"),
            ("frobnicate", "unknown query kind"),
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert!(err.contains(needle), "{bad:?} -> {err:?}");
        }
    }

    #[test]
    fn render_is_the_canonical_inverse_of_parse() {
        for line in [
            "ping",
            "quit",
            "shutdown",
            "!stats",
            "!metrics",
            "!repos",
            "!trace 7",
            "!use wiki",
            "!reload /tmp/a.sc",
            "!reload wiki /tmp/a.sc",
            "!reload \"/data/my file.sc\"",
            r#"!reload wiki "a \"b\" c.sc""#,
            "greedy",
            "iter delta=0.5 seed=9",
            "partial eps=0.2 delta=0.5 seed=1 repo=logs",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(
                Request::parse(&req.render()).unwrap(),
                req,
                "round trip of {line:?}"
            );
        }
    }

    #[test]
    fn reload_render_quotes_paths_the_token_grammar_would_misparse() {
        // The REVIEW.md case: an unaddressed path with a space used to
        // render to a line that re-parsed as target + mangled path.
        for (target, path) in [
            (None, "/data/my file.sc"),
            (None, "  leading and  interior  .sc"),
            (None, r#"we"ird \ path.sc"#),
            (None, "\"starts-with-quote.sc"),
            (None, ""),
            (Some("wiki"), "/data/my file.sc"),
            (Some("wiki"), "plain.sc"),
        ] {
            let req = Request::Reload {
                target: target.map(String::from),
                path: path.into(),
            };
            let line = req.render();
            assert_eq!(
                Request::parse(&line).as_ref(),
                Ok(&req),
                "round trip of {path:?} via {line:?}"
            );
        }
    }

    #[test]
    fn replies_render_their_framing() {
        assert_eq!(Reply::Pong.render(), "pong");
        assert_eq!(
            Reply::Use {
                repo: "wiki".into()
            }
            .render(),
            "ok use repo=wiki"
        );
        assert_eq!(Reply::Reload { generation: 3 }.render(), "ok reload gen=3");
        assert_eq!(Reply::Busy.render(), "err msg=busy");
        assert_eq!(Reply::error("nope").render(), "err msg=nope");
        assert_eq!(
            Reply::Metrics {
                body: vec!["a 1".into(), "b 2".into()]
            }
            .render(),
            "ok metrics n=2\na 1\nb 2"
        );
        assert_eq!(
            Reply::Trace {
                id: 4,
                events: vec!["ev".into()]
            }
            .render(),
            "ok trace id=4 events=1\nev"
        );
        assert_eq!(Reply::Repos { listing: vec![] }.render(), "ok repos n=0");
    }
}
