//! Network front-end: the line protocol over TCP (or any
//! `BufRead`/`Write` pair) and a connect-retry readiness probe.
//!
//! `sctool serve` and `sctool client` are thin wrappers over this
//! module, so examples and tests can run the exact same server the CLI
//! ships: bind a [`TcpListener`], hand it to [`serve_tcp`], and probe
//! readiness with [`wait_ready`] instead of polling `/dev/tcp` from a
//! shell loop.

use crate::metrics::ServiceMetrics;
use crate::query::QuerySpec;
use crate::service::{QueryTicket, ReloadTicket, Service, ServiceHandle};
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Flushes the one-line telemetry stats snapshot to stderr — the serve
/// log channel, never the protocol socket, so a peer that vanished
/// mid-reply can't turn the flush into a broken-pipe error. A no-op
/// when telemetry is disabled, so library tests and batch runs stay
/// quiet.
fn log_stats(trigger: &str) {
    if sc_telemetry::enabled() {
        eprintln!(
            "sc_service stats trigger={trigger} {}",
            sc_telemetry::stats_line()
        );
    }
}

/// Blocks until a TCP connect to `addr` succeeds, retrying for up to
/// `timeout` — the programmatic replacement for shell readiness loops
/// over `/dev/tcp`. The probe connection is closed immediately; the
/// server sees one accepted connection with zero protocol lines, which
/// the pump treats as a no-op session.
///
/// # Errors
///
/// The last connect error (with the address) once `timeout` elapses
/// without a successful connect.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        let err = match TcpStream::connect(addr) {
            Ok(_probe) => return Ok(()),
            Err(e) => e,
        };
        if Instant::now() >= deadline {
            return Err(format!(
                "{addr}: not ready after {:.1}s ({err})",
                timeout.as_secs_f64()
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Request/response pump shared by the stdin and TCP front-ends: a
/// reader thread submits queries as lines arrive while the calling
/// thread answers tickets in submission order — so responses stream
/// back as queries complete, and every pending line is already riding
/// shared scan epochs. All responses — `pong` and `err` included — are
/// emitted in request order, so a `ping` pipelined behind a slow query
/// answers after that query completes; it probes the connection's
/// round-trip, not the scheduler's idle latency. The telemetry verbs
/// (`!stats`, `!metrics`, `!trace ID`) snapshot the live registry as
/// they arrive, so they can be interleaved with queries mid-load.
///
/// Tenant addressing: the connection starts on the handle's tenant
/// (the server default); `!use <name>` retargets the rest of the
/// connection, a `repo=<name>` token on a query line retargets that
/// query only, `!repos` lists every served tenant with its generation,
/// fingerprint, quota, and live counters, and `!reload <name> <path>`
/// hot-swaps a named tenant (the bare `!reload <path>` form swaps the
/// connection's current tenant, unchanged from single-tenant servers).
/// Returns `Ok(true)` if the peer asked for server shutdown.
///
/// # Errors
///
/// Propagates I/O errors from `input` and `output` (a client that went
/// away mid-reply).
pub fn pump_queries<R, W>(input: R, output: &mut W, handle: &ServiceHandle) -> std::io::Result<bool>
where
    R: BufRead + Send,
    W: Write,
{
    enum Pumped {
        Ticket(QueryTicket),
        Reload(ReloadTicket),
        Error(String),
        Pong,
        /// Pre-rendered reply lines (telemetry verbs): the first line is
        /// the `ok …` header framing how many body lines follow.
        Lines(Vec<String>),
    }
    let (tx, rx) = std::sync::mpsc::channel::<Pumped>();
    std::thread::scope(|s| {
        let reader = s.spawn(move || -> std::io::Result<bool> {
            // The connection's current tenant: starts on the server
            // default, retargeted by `!use` (a `repo=` query token
            // overrides per query without moving this).
            let mut conn_handle = handle.clone();
            for line in input.lines() {
                let line = line?;
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                match line {
                    "quit" => break,
                    "shutdown" => return Ok(true),
                    "ping" => {
                        let _ = tx.send(Pumped::Pong);
                        continue;
                    }
                    _ => {}
                }
                // Telemetry verbs answer from the live registry:
                // `!stats` is one `key=value` line, `!metrics` a framed
                // Prometheus-style listing (`ok metrics n=N` then N
                // `name value` lines), `!trace ID` the retained journal
                // timeline of one query (`ok trace id=.. events=N` then
                // N event lines). Snapshots are taken as the verb
                // arrives — a live view, even while queries pipelined
                // behind it are still scanning — and the reply is still
                // delivered in request order like every other response.
                if line == "!stats" {
                    let _ = tx.send(Pumped::Lines(vec![format!(
                        "ok stats {}",
                        sc_telemetry::stats_line()
                    )]));
                    continue;
                }
                if line == "!metrics" {
                    let body = sc_telemetry::prometheus();
                    let mut lines = Vec::with_capacity(body.len() + 1);
                    lines.push(format!("ok metrics n={}", body.len()));
                    lines.extend(body);
                    let _ = tx.send(Pumped::Lines(lines));
                    continue;
                }
                if line == "!trace" || line.starts_with("!trace ") {
                    let arg = line["!trace".len()..].trim();
                    let msg = match arg.parse::<u64>() {
                        Ok(id) => {
                            let events = sc_telemetry::trace(id);
                            let mut lines = Vec::with_capacity(events.len() + 1);
                            lines.push(format!("ok trace id={id} events={}", events.len()));
                            lines.extend(events.iter().map(|ev| ev.protocol_line()));
                            Pumped::Lines(lines)
                        }
                        Err(_) if arg.is_empty() => Pumped::Error("!trace needs a query id".into()),
                        Err(_) => Pumped::Error(format!("!trace: bad query id {arg:?}")),
                    };
                    let _ = tx.send(msg);
                    continue;
                }
                // Admin line: `!use <name>` retargets the rest of this
                // connection at a named tenant.
                if line == "!use" || line.starts_with("!use ") {
                    let name = line["!use".len()..].trim();
                    let msg = if name.is_empty() {
                        Pumped::Error("!use needs a repository name".into())
                    } else {
                        match conn_handle.with_tenant(name) {
                            Some(h) => {
                                conn_handle = h;
                                Pumped::Lines(vec![format!("ok use repo={name}")])
                            }
                            None => Pumped::Error(format!("unknown repository {name:?}")),
                        }
                    };
                    let _ = tx.send(msg);
                    continue;
                }
                // Admin line: `!repos` lists the served tenants —
                // name, current generation, fingerprint, quota, and
                // the live traffic counters (always on, so this
                // answers even with telemetry disabled).
                if line == "!repos" {
                    let registry = conn_handle.tenants();
                    let mut lines = Vec::with_capacity(registry.len() + 1);
                    lines.push(format!("ok repos n={}", registry.len()));
                    for tenant in registry.iter() {
                        let generation = tenant.generation();
                        let (completed, jobs, cache_hits, coalesced) =
                            tenant.meta().counters().snapshot();
                        lines.push(format!(
                            "repo name={} gen={} fingerprint={:016x} quota={} completed={} jobs={} cache_hits={} coalesced={}",
                            tenant.name(),
                            generation.id,
                            generation.fingerprint,
                            tenant.quota(),
                            completed,
                            jobs,
                            cache_hits,
                            coalesced,
                        ));
                    }
                    let _ = tx.send(Pumped::Lines(lines));
                    continue;
                }
                // Admin line: `!reload <path>` hot-swaps the
                // connection's current tenant; `!reload <name> <path>`
                // hot-swaps the named one. Queries already pipelined
                // ahead of it drain on their original generation; the
                // reply (the new generation id) comes back in request
                // order like every other response. The keyword must
                // stand alone (`!reloadx …` is an unknown query, not a
                // swap). The two-token form only engages when the
                // first token names a served tenant, so paths with
                // spaces keep working unaddressed.
                if line == "!reload" || line.starts_with("!reload ") {
                    let arg = line["!reload".len()..].trim();
                    let msg = if arg.is_empty() {
                        Pumped::Error("!reload needs an instance path".into())
                    } else {
                        let (target, path) = match arg.split_once(char::is_whitespace) {
                            Some((name, rest)) => match conn_handle.with_tenant(name) {
                                Some(h) if !rest.trim().is_empty() => (h, rest.trim()),
                                _ => (conn_handle.clone(), arg),
                            },
                            None => (conn_handle.clone(), arg),
                        };
                        match sc_setsystem::io::load_path(path) {
                            Ok(inst) => match target.reload(inst.system) {
                                Ok(ticket) => Pumped::Reload(ticket),
                                Err(e) => Pumped::Error(e.to_string()),
                            },
                            Err(msg) => Pumped::Error(msg),
                        }
                    };
                    let _ = tx.send(msg);
                    continue;
                }
                let msg = match QuerySpec::parse_addressed(line) {
                    Ok((repo, spec)) => {
                        let route = match repo.as_deref() {
                            Some(name) => conn_handle
                                .with_tenant(name)
                                .ok_or_else(|| format!("unknown repository {name:?}")),
                            None => Ok(conn_handle.clone()),
                        };
                        match route {
                            Ok(h) => match h.submit(spec) {
                                Ok(ticket) => Pumped::Ticket(ticket),
                                Err(e) => Pumped::Error(e.to_string()),
                            },
                            Err(msg) => Pumped::Error(msg),
                        }
                    }
                    Err(msg) => Pumped::Error(msg),
                };
                let _ = tx.send(msg);
            }
            Ok(false)
        });
        // The sender side lives in the reader thread (`tx` moved in),
        // so this loop ends exactly when the reader is done.
        for msg in rx {
            match msg {
                Pumped::Ticket(ticket) => match ticket.wait() {
                    Ok(outcome) => writeln!(output, "{}", outcome.protocol_line())?,
                    Err(e) => writeln!(output, "err msg={e}")?,
                },
                Pumped::Reload(ticket) => {
                    match ticket.wait() {
                        Ok(generation) => writeln!(output, "ok reload gen={generation}")?,
                        Err(e) => writeln!(output, "err msg={e}")?,
                    }
                    // A hot swap is a natural stats window boundary:
                    // flush the snapshot to the serve log so the
                    // pre-swap numbers are on record before the new
                    // generation's traffic blends in.
                    log_stats("reload");
                }
                Pumped::Error(msg) => writeln!(output, "err msg={msg}")?,
                Pumped::Pong => writeln!(output, "pong")?,
                Pumped::Lines(lines) => {
                    for l in lines {
                        writeln!(output, "{l}")?;
                    }
                }
            }
            output.flush()?;
        }
        reader.join().expect("reader thread panicked")
    })
}

/// Serves the line protocol on an already-bound listener: every
/// accepted connection speaks the protocol concurrently through
/// [`pump_queries`], all sharing one scan scheduler; the `shutdown`
/// command stops the listener once inflight work drains.
///
/// # Errors
///
/// An accept-loop failure message; the metrics of the work served up to
/// that point are lost with the scheduler in that case.
pub fn serve_tcp(service: &Service, listener: TcpListener) -> Result<ServiceMetrics, String> {
    use std::sync::atomic::{AtomicBool, Ordering};

    let local = listener
        .local_addr()
        .map_err(|e| format!("listener: {e}"))?;
    let stop = AtomicBool::new(false);
    // Read halves of the *live* connections, keyed by connection id:
    // shutdown (or an accept failure) closes them to unblock pump
    // readers idling on open sockets — their write halves stay intact
    // for replies still in flight — and each pump thread removes its
    // own entry when its connection ends, so the registry (and its
    // file descriptors) never outgrow the live connection count.
    let open_reads: std::sync::Mutex<Vec<(u64, TcpStream)>> = std::sync::Mutex::new(Vec::new());
    let (res, metrics) = service.serve(|handle| -> Result<(), String> {
        std::thread::scope(|s| {
            let mut next_conn = 0u64;
            let result = loop {
                let (conn, _peer) = match listener.accept() {
                    Ok(accepted) => accepted,
                    Err(e) => break Err(format!("accept: {e}")),
                };
                if stop.load(Ordering::SeqCst) {
                    break Ok(());
                }
                let reader = match conn.try_clone() {
                    Ok(c) => c,
                    Err(_) => continue,
                };
                let conn_id = next_conn;
                next_conn += 1;
                // Registration is mandatory: a reader shutdown cannot
                // unblock would make this connection wedge the server
                // on shutdown, so refuse it instead of serving it.
                let Ok(half) = reader.try_clone() else {
                    continue;
                };
                open_reads.lock().expect("poisoned").push((conn_id, half));
                let handle = handle.clone();
                let (stop, open_reads) = (&stop, &open_reads);
                s.spawn(move || {
                    let reader = std::io::BufReader::new(reader);
                    let mut writer = &conn;
                    match pump_queries(reader, &mut writer, &handle) {
                        Ok(true) => {
                            // Shutdown requested: stop accepting, and
                            // poke the listener awake with a dummy
                            // connection so the accept loop observes it.
                            stop.store(true, Ordering::SeqCst);
                            let _ = TcpStream::connect(local);
                        }
                        Ok(false) => {}
                        Err(_) => {} // client went away mid-reply
                    }
                    // Every connection end — clean EOF, shutdown, or a
                    // client that vanished mid-reply — flushes the
                    // stats snapshot to stderr, so a load wave's
                    // numbers land in the serve log even when the
                    // server keeps running for the next client.
                    log_stats("disconnect");
                    open_reads
                        .lock()
                        .expect("poisoned")
                        .retain(|(id, _)| *id != conn_id);
                });
            };
            // On every exit path — clean shutdown or accept failure —
            // close the read halves of the connections still open, so
            // pump readers see EOF, drain their pending replies, and
            // the scope can finish instead of wedging on blocked reads.
            for (_, half) in open_reads.lock().expect("poisoned").iter() {
                let _ = half.shutdown(std::net::Shutdown::Read);
            }
            result
        })
    });
    res?;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use sc_setsystem::gen;
    use std::io::{BufRead, BufReader, Write};

    #[test]
    fn tcp_round_trip_with_wait_ready_and_shutdown() {
        let inst = gen::planted(64, 128, 4, 1);
        let service = Service::new(inst.system, ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            writeln!(writer, "ping").unwrap();
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "pong");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ok "), "greedy should solve: {line:?}");
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 1);
        });
    }

    #[test]
    fn reload_line_hot_swaps_and_tags_responses_with_the_generation() {
        let inst = gen::planted(64, 128, 4, 1);
        let next = gen::planted(64, 128, 4, 2);
        let path = std::env::temp_dir().join(format!("sc-reload-{}.sc", std::process::id()));
        std::fs::write(&path, sc_setsystem::io::system_to_string(&next.system)).expect("write");

        let service = Service::new(inst.system, ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "!reload {}", path.display()).unwrap();
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            let mut lines = Vec::new();
            for _ in 0..3 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                lines.push(line.trim().to_string());
            }
            assert!(lines[0].contains("gen=1"), "pre-swap: {:?}", lines[0]);
            assert_eq!(lines[1], "ok reload gen=2");
            assert!(lines[2].contains("gen=2"), "post-swap: {:?}", lines[2]);
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.reloads, 1);
            assert_eq!(metrics.queries_completed, 2);
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn telemetry_verbs_answer_over_tcp() {
        let _g = sc_telemetry::test_hold();
        sc_telemetry::set_enabled(true);
        sc_telemetry::reset();
        let inst = gen::planted(64, 128, 4, 1);
        let service = Service::new(inst.system, ServiceConfig::default());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            let mut next = {
                let reader = &mut reader;
                move || {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    line.trim().to_string()
                }
            };
            // Run a query to completion first: its reply is sent only
            // after its Retired event hit the journal, so the verbs
            // below observe a full lifecycle. (Verbs snapshot at
            // arrival, so pipelining them behind the query would race
            // its retirement.)
            writeln!(writer, "greedy").unwrap();
            writer.flush().unwrap();
            assert!(next().starts_with("ok "), "query answer first");
            writeln!(writer, "!stats").unwrap();
            writeln!(writer, "!metrics").unwrap();
            writeln!(writer, "!trace 0").unwrap();
            writeln!(writer, "!trace bogus").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();

            let stats = next();
            assert!(stats.starts_with("ok stats enabled=1 "), "{stats:?}");
            assert!(stats.contains("sc_queries_submitted_total="), "{stats:?}");

            let header = next();
            let n: usize = header
                .strip_prefix("ok metrics n=")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad metrics header {header:?}"));
            assert!(n > 0);
            let body: Vec<String> = (0..n).map(|_| next()).collect();
            assert!(body.iter().any(|l| l.starts_with("sc_telemetry_enabled 1")));
            for l in &body {
                let mut it = l.split(' ');
                assert!(it.next().is_some_and(|f| !f.is_empty()), "{l:?}");
                assert!(it.next().is_some_and(|v| v.parse::<u64>().is_ok()), "{l:?}");
                assert!(it.next().is_none(), "extra fields: {l:?}");
            }

            let trace = next();
            let events: usize = trace
                .strip_prefix("ok trace id=0 events=")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad trace header {trace:?}"));
            assert!(events >= 2, "query 0 was submitted and retired: {trace:?}");
            let timeline: Vec<String> = (0..events).map(|_| next()).collect();
            // Concurrent tests in this binary also serve a query id 0
            // while the gate is on, so assert membership rather than
            // position: this query's full lifecycle is in the journal.
            assert!(
                timeline.iter().any(|l| l.contains("event=submitted")),
                "{timeline:?}"
            );
            assert!(
                timeline.iter().any(|l| l.contains("event=retired")),
                "{timeline:?}"
            );

            assert_eq!(next(), "err msg=!trace: bad query id \"bogus\"");
            server.join().expect("server thread");
        });
        sc_telemetry::set_enabled(false);
    }

    #[test]
    fn tenant_addressing_verbs_route_queries_over_tcp() {
        use crate::service::ServiceBuilder;
        let alpha = gen::planted(64, 128, 4, 1);
        let beta = gen::planted(64, 128, 4, 2);
        let service = ServiceBuilder::new()
            .tenant("alpha", alpha.system)
            .tenant("beta", beta.system)
            .build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            let mut next = {
                let reader = &mut reader;
                move || {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    line.trim().to_string()
                }
            };
            writeln!(writer, "greedy").unwrap(); // connection default = alpha
            writeln!(writer, "greedy repo=beta").unwrap(); // per-query override
            writeln!(writer, "!use beta").unwrap(); // connection retarget
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "greedy repo=alpha").unwrap();
            writer.flush().unwrap();

            for (expect, why) in [
                ("repo=alpha", "first tenant is the connection default"),
                ("repo=beta", "repo= overrides per query"),
            ] {
                let line = next();
                assert!(line.starts_with("ok "), "{why}: {line:?}");
                assert!(line.ends_with(expect), "{why}: {line:?}");
            }
            assert_eq!(next(), "ok use repo=beta");
            for (expect, why) in [
                ("repo=beta", "!use retargeted the connection"),
                ("repo=alpha", "repo= overrides the !use default too"),
            ] {
                let line = next();
                assert!(line.starts_with("ok "), "{why}: {line:?}");
                assert!(line.ends_with(expect), "{why}: {line:?}");
            }
            // All four query replies are in hand — their retirements
            // have landed — so the `!repos` counter snapshot below is
            // deterministic.
            writeln!(writer, "!repos").unwrap();
            writeln!(writer, "!use nowhere").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            assert_eq!(next(), "ok repos n=2");
            let listing: Vec<String> = (0..2).map(|_| next()).collect();
            assert!(
                listing[0].starts_with("repo name=alpha gen=1 "),
                "{listing:?}"
            );
            assert!(
                listing[1].starts_with("repo name=beta gen=1 "),
                "{listing:?}"
            );
            // Two queries landed on each tenant; the counters saw them.
            for l in &listing {
                assert!(l.contains("completed=2"), "{l:?}");
                assert!(l.contains("quota=64"), "{l:?}");
            }
            assert_eq!(next(), "err msg=unknown repository \"nowhere\"");
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 4);
        });
    }

    #[test]
    fn wait_ready_times_out_with_the_address_in_the_error() {
        // Port 1 is essentially never listening on a test host.
        let err = wait_ready("127.0.0.1:1", Duration::from_millis(120)).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
        assert!(err.contains("not ready"), "{err}");
    }
}
