//! The cross-query outcome cache.
//!
//! Serving workloads repeat themselves: identical `(spec, repository)`
//! pairs recur, and every query kind the service accepts is
//! deterministic given its spec (the RNG seed is part of
//! [`QuerySpec`]), so the answer to a repeat is the answer already
//! computed — in **zero** physical scans. The cache is keyed on the
//! query spec *and* a 64-bit content fingerprint of the repository,
//! and every hit additionally cross-checks the requester's repository
//! dimensions against the entry's, so a cache shared between services
//! (or outliving a repository swap) misses on different data unless
//! two repositories of identical dimensions also collide in the
//! 64-bit hash — astronomically unlikely for accidental data, but not
//! a cryptographic guarantee.
//!
//! Cached answers carry the full solo-observable tuple (cover, covered
//! count, goal, logical passes, space peak), so a hit's
//! [`QueryOutcome`](crate::QueryOutcome) is bit-identical to the solo
//! run that populated it — the `outcome_cache` integration test pins
//! this together with the zero-physical-scan guarantee.

use crate::query::QuerySpec;
use sc_setsystem::{SetId, SetSystem};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// The solo observables of a completed query, as stored by the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The emitted cover (set ids).
    pub cover: Vec<SetId>,
    /// Elements the cover actually covers.
    pub covered: usize,
    /// The coverage goal the query had to meet.
    pub required: usize,
    /// Logical passes the query charged when it ran.
    pub logical_passes: usize,
    /// Peak working memory in words when it ran.
    pub space_words: usize,
}

type CacheKey = (u64, String);

/// A stored answer plus the dimensions of the repository it was
/// computed against — re-checked on every hit as a collision guard
/// independent of the fingerprint hash.
#[derive(Debug)]
struct Stored {
    universe: usize,
    num_sets: usize,
    answer: CachedAnswer,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Stored>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
}

/// A bounded, thread-safe cache of query outcomes keyed on
/// `(repository fingerprint, canonical spec)`.
///
/// Capacity `0` disables the cache (every lookup misses, inserts are
/// dropped). Eviction is FIFO: outcome records are tiny (a cover is a
/// few dozen ids), so a simple bound beats LRU bookkeeping on the
/// scheduler's hot path. The cache is `Sync` and designed to be shared
/// — wrap it in an [`Arc`](std::sync::Arc) and hand it to several
/// [`Service::with_cache`](crate::Service::with_cache) instances to
/// share answers across repositories (the content fingerprint plus the
/// per-hit dimension cross-check keep them apart, up to a 64-bit hash
/// collision between equal-dimension repositories).
#[derive(Debug, Default)]
pub struct OutcomeCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl OutcomeCache {
    /// Creates a cache bounded to `capacity` entries (`0` disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` across every service using this cache.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache poisoned");
        (inner.hits, inner.misses)
    }

    /// A 64-bit FNV-1a fingerprint of a repository's full contents
    /// (universe size, family size, and every set's elements, in
    /// repository order). Any structural difference changes it with
    /// overwhelming probability, but it is not collision-free — which
    /// is why [`lookup`](Self::lookup) also cross-checks the stored
    /// repository dimensions directly.
    pub fn fingerprint(system: &SetSystem) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(system.universe() as u64);
        mix(system.num_sets() as u64);
        for (_id, elems) in system.iter() {
            mix(elems.len() as u64);
            for &e in elems {
                mix(u64::from(e));
            }
        }
        h
    }

    /// The canonical cache key of a spec: its `Display` form, which
    /// round-trips through [`QuerySpec::parse`], so `delta=0.50` and
    /// `delta=0.5` land on the same entry.
    fn key(fingerprint: u64, spec: &QuerySpec) -> CacheKey {
        (fingerprint, spec.to_string())
    }

    /// Looks up the answer for `spec` against the repository with the
    /// given fingerprint and dimensions, updating the hit/miss
    /// counters. A fingerprint match whose stored dimensions differ
    /// from `universe`/`num_sets` is a hash collision between
    /// different repositories and counts as a miss.
    pub fn lookup(
        &self,
        fingerprint: u64,
        universe: usize,
        num_sets: usize,
        spec: &QuerySpec,
    ) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        match inner
            .map
            .get(&Self::key(fingerprint, spec))
            .filter(|stored| stored.universe == universe && stored.num_sets == num_sets)
            .map(|stored| stored.answer.clone())
        {
            Some(answer) => {
                inner.hits += 1;
                Some(answer)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores the answer a completed query produced against the
    /// repository with the given fingerprint and dimensions. A
    /// duplicate key (two identical queries retiring from the same
    /// epoch group) overwrites in place — the answers are identical by
    /// determinism — without consuming a second slot.
    pub fn insert(
        &self,
        fingerprint: u64,
        universe: usize,
        num_sets: usize,
        spec: &QuerySpec,
        answer: CachedAnswer,
    ) {
        if self.capacity == 0 {
            return;
        }
        let key = Self::key(fingerprint, spec);
        let stored = Stored {
            universe,
            num_sets,
            answer,
        };
        let mut inner = self.inner.lock().expect("cache poisoned");
        match inner.map.entry(key.clone()) {
            Entry::Occupied(mut slot) => {
                slot.insert(stored);
            }
            Entry::Vacant(slot) => {
                slot.insert(stored);
                inner.order.push_back(key);
                while inner.order.len() > self.capacity {
                    let evict = inner.order.pop_front().expect("order tracks map");
                    inner.map.remove(&evict);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(tag: usize) -> CachedAnswer {
        CachedAnswer {
            cover: vec![tag as SetId],
            covered: tag,
            required: tag,
            logical_passes: 1,
            space_words: 8,
        }
    }

    fn spec(seed: u64) -> QuerySpec {
        QuerySpec::IterCover { delta: 0.5, seed }
    }

    #[test]
    fn fingerprint_separates_repositories() {
        let a = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
        let same = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
        let different = SetSystem::from_sets(3, vec![vec![0, 1], vec![1]]);
        assert_eq!(
            OutcomeCache::fingerprint(&a),
            OutcomeCache::fingerprint(&same)
        );
        assert_ne!(
            OutcomeCache::fingerprint(&a),
            OutcomeCache::fingerprint(&different)
        );
    }

    #[test]
    fn lookup_respects_fingerprint_and_spec() {
        let cache = OutcomeCache::new(8);
        cache.insert(1, 3, 2, &spec(7), answer(1));
        assert_eq!(cache.lookup(1, 3, 2, &spec(7)), Some(answer(1)));
        assert_eq!(cache.lookup(2, 3, 2, &spec(7)), None, "other repository");
        assert_eq!(cache.lookup(1, 3, 2, &spec(8)), None, "other spec");
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn fingerprint_collisions_with_other_dimensions_miss() {
        let cache = OutcomeCache::new(8);
        cache.insert(1, 3, 2, &spec(7), answer(1));
        // Same (colliding) fingerprint, different repository shape:
        // the dimension cross-check turns it into a miss.
        assert_eq!(cache.lookup(1, 4, 2, &spec(7)), None, "universe differs");
        assert_eq!(cache.lookup(1, 3, 5, &spec(7)), None, "family differs");
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn fifo_eviction_keeps_the_bound() {
        let cache = OutcomeCache::new(2);
        for s in 0..5u64 {
            cache.insert(0, 3, 2, &spec(s), answer(s as usize));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(0, 3, 2, &spec(0)), None, "oldest evicted");
        assert_eq!(cache.lookup(0, 3, 2, &spec(4)), Some(answer(4)));
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = OutcomeCache::new(0);
        cache.insert(0, 3, 2, &spec(1), answer(1));
        assert_eq!(cache.lookup(0, 3, 2, &spec(1)), None);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0), "disabled caches do not count");
    }
}
