//! The cross-query outcome cache.
//!
//! Serving workloads repeat themselves: identical `(spec, repository)`
//! pairs recur, and every query kind the service accepts is
//! deterministic given its spec (the RNG seed is part of
//! [`QuerySpec`]), so the answer to a repeat is the answer already
//! computed — in **zero** physical scans. The cache is keyed on the
//! owning tenant, the query spec, *and* a 64-bit content fingerprint
//! of the repository. The tenant id partitions the cache outright: two
//! tenants serving byte-identical repositories collide on the
//! fingerprint *by construction*, and an answer must still never cross
//! tenants (quota accounting, counters, and the operator's mental
//! model are all per-tenant). Beyond that, every hit cross-checks the
//! requester's repository
//! dimensions against the entry's, so a cache shared between services
//! (or outliving a repository swap) misses on different data unless
//! two repositories of identical dimensions also collide in the
//! 64-bit hash — astronomically unlikely for accidental data, but not
//! a cryptographic guarantee.
//!
//! Cached answers carry the full solo-observable tuple (cover, covered
//! count, goal, logical passes, space peak), so a hit's
//! [`QueryOutcome`](crate::QueryOutcome) is bit-identical to the solo
//! run that populated it — the `outcome_cache` integration test pins
//! this together with the zero-physical-scan guarantee.
//!
//! Eviction is pluggable ([`EvictionPolicy`]): FIFO (insertion order —
//! the batch default, no bookkeeping on the hit path) or LRU (hits
//! refresh the entry — what `sctool serve` defaults to, since serving
//! workloads skew toward a hot working set). Entries of a repository
//! generation that died in a hot swap are reaped eagerly through
//! [`evict_fingerprint`](OutcomeCache::evict_fingerprint); they were
//! already unreachable (no live service presents the dead fingerprint)
//! — the reap just returns their slots.

use crate::query::QuerySpec;
use sc_setsystem::{SetId, SetSystem};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// The solo observables of a completed query, as stored by the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The emitted cover (set ids).
    pub cover: Vec<SetId>,
    /// Elements the cover actually covers.
    pub covered: usize,
    /// The coverage goal the query had to meet.
    pub required: usize,
    /// Logical passes the query charged when it ran.
    pub logical_passes: usize,
    /// Peak working memory in words when it ran.
    pub space_words: usize,
}

/// Which entry a full [`OutcomeCache`] evicts to admit a new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the oldest *insertion*: no bookkeeping on the hit path,
    /// the right default for deterministic batch runs (and the
    /// behaviour every pre-existing caller had).
    #[default]
    Fifo,
    /// Evict the least recently *used*: hits refresh the entry, so a
    /// skewed repeat distribution keeps its hot set resident — the
    /// `sctool serve` default.
    Lru,
}

impl EvictionPolicy {
    /// Parses `"fifo"` / `"lru"` (the `sctool serve --eviction`
    /// grammar).
    ///
    /// # Errors
    ///
    /// A message naming the unknown policy.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fifo" => Ok(Self::Fifo),
            "lru" => Ok(Self::Lru),
            other => Err(format!("unknown eviction policy {other:?} (fifo|lru)")),
        }
    }
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Fifo => "fifo",
            Self::Lru => "lru",
        })
    }
}

/// `(tenant id, repository fingerprint, canonical spec)` — the tenant
/// id first, so two tenants serving byte-identical repositories (equal
/// fingerprints by construction) still hold disjoint entries.
type CacheKey = (u64, u64, String);

/// A stored answer plus the dimensions of the repository it was
/// computed against — re-checked on every hit as a collision guard
/// independent of the fingerprint hash — and the eviction stamp (the
/// insertion tick under FIFO, refreshed per hit under LRU).
#[derive(Debug)]
struct Stored {
    universe: usize,
    num_sets: usize,
    stamp: u64,
    answer: CachedAnswer,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, Stored>,
    /// Stamp → key index mirroring `map` (stamps are unique), so the
    /// eviction victim — the minimum stamp — is an O(log n) pop
    /// instead of a full-map sweep on the scheduler's retirement path.
    by_stamp: BTreeMap<u64, CacheKey>,
    /// Monotonic stamp source for the eviction order.
    tick: u64,
    hits: u64,
    misses: u64,
    capacity_evictions: u64,
    fingerprint_evictions: u64,
}

impl Inner {
    fn next_stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// A bounded, thread-safe cache of query outcomes keyed on
/// `(tenant id, repository fingerprint, canonical spec)`.
///
/// Capacity `0` disables the cache (every lookup misses, inserts are
/// dropped). Eviction follows the configured [`EvictionPolicy`] —
/// outcome records are tiny (a cover is a few dozen ids), so even the
/// LRU bookkeeping is one counter write per hit. The cache is `Sync`
/// and designed to be shared — wrap it in an
/// [`Arc`](std::sync::Arc) and hand it to several services through
/// [`ServiceBuilder::shared_cache`](crate::ServiceBuilder::shared_cache)
/// to share answers across repositories (the content fingerprint plus the
/// per-hit dimension cross-check keep them apart, up to a 64-bit hash
/// collision between equal-dimension repositories).
#[derive(Debug, Default)]
pub struct OutcomeCache {
    capacity: usize,
    policy: EvictionPolicy,
    inner: Mutex<Inner>,
}

impl OutcomeCache {
    /// Creates a FIFO cache bounded to `capacity` entries (`0` disables
    /// it).
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Fifo)
    }

    /// Creates a cache bounded to `capacity` entries under the given
    /// eviction policy (`0` disables it).
    pub fn with_policy(capacity: usize, policy: EvictionPolicy) -> Self {
        Self {
            capacity,
            policy,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` across every service using this cache.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache poisoned");
        (inner.hits, inner.misses)
    }

    /// Lifetime evictions as `(capacity, fingerprint)`: entries pushed
    /// out by the bound (under whichever policy) and entries reaped
    /// because their repository generation died in a hot swap.
    pub fn eviction_stats(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("cache poisoned");
        (inner.capacity_evictions, inner.fingerprint_evictions)
    }

    /// A 64-bit FNV-1a fingerprint of a repository's full contents
    /// (universe size, family size, and every set's elements, in
    /// repository order). Any structural difference changes it with
    /// overwhelming probability, but it is not collision-free — which
    /// is why [`lookup`](Self::lookup) also cross-checks the stored
    /// repository dimensions directly.
    pub fn fingerprint(system: &SetSystem) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(system.universe() as u64);
        mix(system.num_sets() as u64);
        for (_id, elems) in system.iter() {
            mix(elems.len() as u64);
            for &e in elems {
                mix(u64::from(e));
            }
        }
        h
    }

    /// The canonical cache key of a spec: its `Display` form, which
    /// round-trips through [`QuerySpec::parse`], so `delta=0.50` and
    /// `delta=0.5` land on the same entry.
    fn key(tenant: u64, fingerprint: u64, spec: &QuerySpec) -> CacheKey {
        (tenant, fingerprint, spec.to_string())
    }

    /// Looks up the answer for `spec` against the repository with the
    /// given fingerprint and dimensions, updating the hit/miss
    /// counters. A fingerprint match whose stored dimensions differ
    /// from `universe`/`num_sets` is a hash collision between
    /// different repositories and counts as a miss. Under LRU, a hit
    /// refreshes the entry's eviction stamp.
    pub fn lookup(
        &self,
        tenant: u64,
        fingerprint: u64,
        universe: usize,
        num_sets: usize,
        spec: &QuerySpec,
    ) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let key = Self::key(tenant, fingerprint, spec);
        let mut inner = self.inner.lock().expect("cache poisoned");
        let inner = &mut *inner;
        let stamp = (self.policy == EvictionPolicy::Lru).then(|| inner.next_stamp());
        match inner
            .map
            .get_mut(&key)
            .filter(|stored| stored.universe == universe && stored.num_sets == num_sets)
        {
            Some(stored) => {
                if let Some(stamp) = stamp {
                    // LRU refresh: the entry moves to the young end of
                    // the stamp index.
                    inner.by_stamp.remove(&stored.stamp);
                    inner.by_stamp.insert(stamp, key);
                    stored.stamp = stamp;
                }
                let answer = stored.answer.clone();
                inner.hits += 1;
                Some(answer)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Stores the answer a completed query produced against the
    /// repository with the given fingerprint and dimensions, returning
    /// how many entries the capacity bound evicted to admit it (`0` or
    /// `1`). A duplicate key (two identical queries retiring from the
    /// same epoch group) overwrites in place — the answers are
    /// identical by determinism — without consuming a second slot;
    /// under FIFO the overwrite keeps the entry's original insertion
    /// age, under LRU it counts as a use.
    pub fn insert(
        &self,
        tenant: u64,
        fingerprint: u64,
        universe: usize,
        num_sets: usize,
        spec: &QuerySpec,
        answer: CachedAnswer,
    ) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let key = Self::key(tenant, fingerprint, spec);
        let mut inner = self.inner.lock().expect("cache poisoned");
        let inner = &mut *inner;
        let stamp = inner.next_stamp();
        match inner.map.entry(key.clone()) {
            Entry::Occupied(mut slot) => {
                let stored = slot.get_mut();
                stored.universe = universe;
                stored.num_sets = num_sets;
                stored.answer = answer;
                if self.policy == EvictionPolicy::Lru {
                    // A re-insert is a use; under FIFO the entry keeps
                    // its original insertion age.
                    inner.by_stamp.remove(&stored.stamp);
                    inner.by_stamp.insert(stamp, key);
                    stored.stamp = stamp;
                }
                0
            }
            Entry::Vacant(slot) => {
                slot.insert(Stored {
                    universe,
                    num_sets,
                    stamp,
                    answer,
                });
                inner.by_stamp.insert(stamp, key);
                let mut evicted = 0;
                while inner.map.len() > self.capacity {
                    // Evict the minimum stamp: insertion order under
                    // FIFO, least-recently-used under LRU (hits refresh
                    // the stamp) — an O(log n) pop off the stamp index.
                    let (_, victim) = inner
                        .by_stamp
                        .pop_first()
                        .expect("stamp index mirrors the map");
                    inner.map.remove(&victim);
                    evicted += 1;
                }
                inner.capacity_evictions += evicted as u64;
                evicted
            }
        }
    }

    /// Reaps every entry the given tenant computed against the
    /// repository with the given fingerprint — the eager half of a
    /// generation's death in a hot swap (the keyed `(tenant,
    /// fingerprint)` pair already made them unreachable). Returns how
    /// many entries were removed. Another tenant's entries under the
    /// same fingerprint survive — its repository did not change.
    /// Callers sharing one cache across services should only reap
    /// pairs no live service still presents.
    pub fn evict_fingerprint(&self, tenant: u64, fingerprint: u64) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        let before = inner.map.len();
        inner
            .map
            .retain(|(t, fp, _), _| *t != tenant || *fp != fingerprint);
        inner
            .by_stamp
            .retain(|_, (t, fp, _)| *t != tenant || *fp != fingerprint);
        let reaped = before - inner.map.len();
        inner.fingerprint_evictions += reaped as u64;
        reaped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(tag: usize) -> CachedAnswer {
        CachedAnswer {
            cover: vec![tag as SetId],
            covered: tag,
            required: tag,
            logical_passes: 1,
            space_words: 8,
        }
    }

    fn spec(seed: u64) -> QuerySpec {
        QuerySpec::IterCover { delta: 0.5, seed }
    }

    #[test]
    fn fingerprint_separates_repositories() {
        let a = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
        let same = SetSystem::from_sets(3, vec![vec![0, 1], vec![2]]);
        let different = SetSystem::from_sets(3, vec![vec![0, 1], vec![1]]);
        assert_eq!(
            OutcomeCache::fingerprint(&a),
            OutcomeCache::fingerprint(&same)
        );
        assert_ne!(
            OutcomeCache::fingerprint(&a),
            OutcomeCache::fingerprint(&different)
        );
    }

    #[test]
    fn lookup_respects_fingerprint_and_spec() {
        let cache = OutcomeCache::new(8);
        cache.insert(0, 1, 3, 2, &spec(7), answer(1));
        assert_eq!(cache.lookup(0, 1, 3, 2, &spec(7)), Some(answer(1)));
        assert_eq!(cache.lookup(0, 2, 3, 2, &spec(7)), None, "other repository");
        assert_eq!(cache.lookup(0, 1, 3, 2, &spec(8)), None, "other spec");
        assert_eq!(cache.stats(), (1, 2));
    }

    #[test]
    fn fingerprint_collisions_with_other_dimensions_miss() {
        let cache = OutcomeCache::new(8);
        cache.insert(0, 1, 3, 2, &spec(7), answer(1));
        // Same (colliding) fingerprint, different repository shape:
        // the dimension cross-check turns it into a miss.
        assert_eq!(cache.lookup(0, 1, 4, 2, &spec(7)), None, "universe differs");
        assert_eq!(cache.lookup(0, 1, 3, 5, &spec(7)), None, "family differs");
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn fifo_eviction_keeps_the_bound() {
        let cache = OutcomeCache::new(2);
        for s in 0..5u64 {
            cache.insert(0, 0, 3, 2, &spec(s), answer(s as usize));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(0, 0, 3, 2, &spec(0)), None, "oldest evicted");
        assert_eq!(cache.lookup(0, 0, 3, 2, &spec(4)), Some(answer(4)));
        assert_eq!(cache.eviction_stats(), (3, 0));
    }

    #[test]
    fn fifo_ignores_hits_when_evicting() {
        let cache = OutcomeCache::new(2);
        cache.insert(0, 0, 3, 2, &spec(0), answer(0));
        cache.insert(0, 0, 3, 2, &spec(1), answer(1));
        // A hit on the oldest entry does not save it under FIFO.
        assert!(cache.lookup(0, 0, 3, 2, &spec(0)).is_some());
        cache.insert(0, 0, 3, 2, &spec(2), answer(2));
        assert_eq!(cache.lookup(0, 0, 3, 2, &spec(0)), None, "still the oldest");
        assert!(cache.lookup(0, 0, 3, 2, &spec(1)).is_some());
    }

    #[test]
    fn fifo_overwrite_keeps_the_original_insertion_age() {
        let cache = OutcomeCache::new(2);
        cache.insert(0, 0, 3, 2, &spec(0), answer(0));
        cache.insert(0, 0, 3, 2, &spec(1), answer(1));
        // Re-inserting the oldest entry does not rejuvenate it under
        // FIFO: it is still the first out.
        cache.insert(0, 0, 3, 2, &spec(0), answer(9));
        cache.insert(0, 0, 3, 2, &spec(2), answer(2));
        assert_eq!(cache.lookup(0, 0, 3, 2, &spec(0)), None, "still the oldest");
        assert!(cache.lookup(0, 0, 3, 2, &spec(1)).is_some());
        assert!(cache.lookup(0, 0, 3, 2, &spec(2)).is_some());
    }

    #[test]
    fn lru_hits_refresh_the_entry() {
        let cache = OutcomeCache::with_policy(2, EvictionPolicy::Lru);
        assert_eq!(cache.policy(), EvictionPolicy::Lru);
        cache.insert(0, 0, 3, 2, &spec(0), answer(0));
        cache.insert(0, 0, 3, 2, &spec(1), answer(1));
        // Touch the older entry: the *other* one becomes the victim.
        assert!(cache.lookup(0, 0, 3, 2, &spec(0)).is_some());
        cache.insert(0, 0, 3, 2, &spec(2), answer(2));
        assert!(cache.lookup(0, 0, 3, 2, &spec(0)).is_some(), "refreshed");
        assert_eq!(cache.lookup(0, 0, 3, 2, &spec(1)), None, "LRU victim");
        assert_eq!(cache.eviction_stats(), (1, 0));
    }

    #[test]
    fn evict_fingerprint_reaps_only_the_dead_generation() {
        let cache = OutcomeCache::new(8);
        cache.insert(0, 1, 3, 2, &spec(0), answer(0));
        cache.insert(0, 1, 3, 2, &spec(1), answer(1));
        cache.insert(0, 2, 3, 2, &spec(0), answer(2));
        assert_eq!(cache.evict_fingerprint(0, 1), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(0, 2, 3, 2, &spec(0)), Some(answer(2)));
        assert_eq!(cache.eviction_stats(), (0, 2));
        assert_eq!(cache.evict_fingerprint(0, 1), 0, "already reaped");
    }

    #[test]
    fn identical_repositories_never_hit_across_tenants() {
        // Two tenants loading byte-identical repositories collide on
        // the fingerprint *by construction*; the tenant id in the key
        // must still keep their answers apart.
        let cache = OutcomeCache::new(8);
        cache.insert(0, 1, 3, 2, &spec(7), answer(1));
        assert_eq!(
            cache.lookup(1, 1, 3, 2, &spec(7)),
            None,
            "tenant 1 must not see tenant 0's answer"
        );
        assert_eq!(cache.lookup(0, 1, 3, 2, &spec(7)), Some(answer(1)));
        // Each tenant's entry occupies its own slot under its own key.
        cache.insert(1, 1, 3, 2, &spec(7), answer(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1, 1, 3, 2, &spec(7)), Some(answer(2)));
        assert_eq!(cache.lookup(0, 1, 3, 2, &spec(7)), Some(answer(1)));
    }

    #[test]
    fn evict_fingerprint_is_tenant_scoped() {
        let cache = OutcomeCache::new(8);
        cache.insert(0, 9, 3, 2, &spec(0), answer(0));
        cache.insert(1, 9, 3, 2, &spec(0), answer(1));
        // Tenant 0 swapped its repository; tenant 1's identical
        // repository did not change and must keep its entry.
        assert_eq!(cache.evict_fingerprint(0, 9), 1);
        assert_eq!(cache.lookup(1, 9, 3, 2, &spec(0)), Some(answer(1)));
        assert_eq!(cache.lookup(0, 9, 3, 2, &spec(0)), None);
    }

    #[test]
    fn eviction_policy_parses_and_prints() {
        assert_eq!(EvictionPolicy::parse("fifo"), Ok(EvictionPolicy::Fifo));
        assert_eq!(EvictionPolicy::parse("lru"), Ok(EvictionPolicy::Lru));
        assert!(EvictionPolicy::parse("arc").is_err());
        assert_eq!(EvictionPolicy::Lru.to_string(), "lru");
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = OutcomeCache::new(0);
        cache.insert(0, 0, 3, 2, &spec(1), answer(1));
        assert_eq!(cache.lookup(0, 0, 3, 2, &spec(1)), None);
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0), "disabled caches do not count");
        assert_eq!(cache.evict_fingerprint(0, 0), 0);
    }
}
