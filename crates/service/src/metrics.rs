//! Aggregate service counters and log-bucketed latency histograms.

use std::fmt;
use std::time::Duration;

/// Number of log₂ buckets; bucket 39 holds everything ≥ 2³⁸ µs (~76 h),
/// far beyond any realistic query latency.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram with percentile extraction.
///
/// Bucket `0` holds sub-microsecond durations; bucket `i ≥ 1` holds
/// durations in `[2^(i-1), 2^i)` microseconds; the last bucket absorbs
/// overflow. Recording is O(1) and the memory footprint is fixed
/// (40 counters), so the scheduler can record every query without a
/// reservoir or allocation. Percentiles come back as the upper edge of
/// the bucket containing the requested rank — exact to within the 2×
/// bucket resolution, which is the right precision for a load test's
/// p50/p90/p99 summary.
///
/// # Examples
///
/// ```
/// use sc_service::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::default();
/// for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 10);
/// assert!(h.percentile(50.0) < Duration::from_millis(3));
/// assert!(h.percentile(99.0) >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += u128::from(us);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded durations (exact, not bucketed).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(
            u64::try_from(self.sum_us / u128::from(self.count)).unwrap_or(u64::MAX),
        )
    }

    /// The `p`-th percentile (`0 < p ≤ 100`), reported as the upper
    /// edge of the bucket holding that rank. Returns zero on an empty
    /// histogram.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i: 2^i µs (bucket 0 → 1 µs).
                return Duration::from_micros(1u64 << i.min(63));
            }
        }
        Duration::from_micros(1u64 << (BUCKETS - 1).min(63))
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    /// One-line `p50/p90/p99 (mean, n)` summary in milliseconds.
    pub fn summary(&self) -> String {
        format!(
            "p50≤{:.1}ms p90≤{:.1}ms p99≤{:.1}ms (mean {:.1}ms, n={})",
            self.percentile(50.0).as_secs_f64() * 1e3,
            self.percentile(90.0).as_secs_f64() * 1e3,
            self.percentile(99.0).as_secs_f64() * 1e3,
            self.mean().as_secs_f64() * 1e3,
            self.count,
        )
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Aggregate counters of one service run.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Physical scans of the repository the service actually performed
    /// — the number scan sharing is measured against (compare with the
    /// sum of per-query `logical_passes`).
    pub physical_scans: usize,
    /// Queries completed (cache hits included).
    pub queries_completed: usize,
    /// Largest number of queries concurrently inside scan epochs.
    pub max_inflight_seen: usize,
    /// Queries admitted as fresh jobs — the units that actually pay
    /// per-scan CPU. `queries_completed = jobs + cache_hits +
    /// coalesced` once a run drains.
    pub jobs: usize,
    /// Queries admitted into a scan already in flight (pass-aligned
    /// mid-stream admission) instead of waiting for the next epoch.
    pub mid_stream_admissions: usize,
    /// The subset of [`mid_stream_admissions`] spliced into a *later*
    /// pass of an in-flight epoch group (the group's scan index was ≥ 2
    /// when the joiner's first pass rode it) — the joins only per-pass
    /// alignment makes possible; a pass-1-only scheduler would have
    /// made these queries wait for the next epoch boundary.
    ///
    /// [`mid_stream_admissions`]: ServiceMetrics::mid_stream_admissions
    pub aligned_joins: usize,
    /// Repository hot swaps the scheduler performed
    /// ([`ServiceHandle::reload`](crate::ServiceHandle::reload) /
    /// the `!reload` protocol line).
    pub reloads: usize,
    /// Outcome-cache entries evicted during this run, all causes
    /// (capacity bound under either policy, plus generation reaping).
    pub evictions: usize,
    /// Capacity evictions under the FIFO policy.
    pub fifo_evictions: usize,
    /// Capacity evictions under the LRU policy.
    pub lru_evictions: usize,
    /// Entries reaped because their repository generation died in a
    /// hot swap ([`OutcomeCache::evict_fingerprint`](crate::OutcomeCache::evict_fingerprint)).
    pub reload_evictions: usize,
    /// Queries answered from the outcome cache in zero physical scans.
    pub cache_hits: usize,
    /// Queries that missed the cache and became their own jobs
    /// (coalesced followers are counted in
    /// [`coalesced`](ServiceMetrics::coalesced), not here).
    pub cache_misses: usize,
    /// Queries that coalesced onto an identical in-flight job
    /// ([`ServiceConfig::coalesce`](crate::ServiceConfig)): they ride
    /// that job's scans and CPU, and its retirement fans one reply out
    /// per follower.
    pub coalesced: usize,
    /// Submission → admission wait, one observation per query.
    pub queue_wait: LatencyHistogram,
    /// Submission → completion latency, one observation per query.
    pub latency: LatencyHistogram,
    /// Wall-clock from first admission to last retirement.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_in_microseconds() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(99.0), Duration::ZERO);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        h.record(Duration::from_millis(50)); // bucket [32768, 65536) µs
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50.0), Duration::from_micros(16));
        assert_eq!(h.percentile(99.0), Duration::from_micros(16));
        assert_eq!(h.percentile(100.0), Duration::from_micros(65536));
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(3));
        b.record(Duration::from_micros(5));
        b.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Duration::from_micros(5));
    }

    #[test]
    fn summary_mentions_all_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(2));
        let s = h.summary();
        assert!(s.contains("p50") && s.contains("p90") && s.contains("p99"));
    }
}
