//! Aggregate service counters and log-bucketed latency histograms.

use std::fmt;
use std::time::Duration;

/// Number of log₂ buckets; bucket 39 holds everything ≥ 2³⁸ µs (~76 h),
/// far beyond any realistic query latency.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram with percentile extraction.
///
/// Bucket `0` holds sub-microsecond durations; bucket `i ≥ 1` holds
/// durations in `[2^(i-1), 2^i)` microseconds; the last bucket absorbs
/// overflow. Recording is O(1) and the memory footprint is fixed
/// (40 counters), so the scheduler can record every query without a
/// reservoir or allocation. Percentiles interpolate linearly inside
/// the bucket containing the requested rank (a rank at the very end of
/// a bucket lands exactly on its upper edge) — exact to within the 2×
/// bucket resolution, which is the right precision for a load test's
/// p50/p90/p99 summary. [`snapshot`](LatencyHistogram::snapshot) /
/// [`delta`](LatencyHistogram::delta) turn two cumulative states into
/// a per-window histogram for interval stats.
///
/// # Examples
///
/// ```
/// use sc_service::LatencyHistogram;
/// use std::time::Duration;
///
/// let mut h = LatencyHistogram::default();
/// for ms in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 10);
/// assert!(h.percentile(50.0) < Duration::from_millis(3));
/// assert!(h.percentile(99.0) >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u128,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

impl LatencyHistogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        if us == 0 {
            0
        } else {
            ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.buckets[Self::bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us += u128::from(us);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the recorded durations (exact, not bucketed).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(
            u64::try_from(self.sum_us / u128::from(self.count)).unwrap_or(u64::MAX),
        )
    }

    /// The `p`-th percentile (`0 < p ≤ 100`), linearly interpolated
    /// inside the bucket holding that rank: the rank's position within
    /// its bucket maps proportionally between the bucket's lower and
    /// upper edge, so a rank at the very end of a bucket reports
    /// exactly the upper edge (`2^i` µs) and earlier ranks report
    /// proportionally less instead of all collapsing onto the edge.
    /// Returns zero on an empty histogram.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let upper = 1u64 << i.min(63);
                let within = rank - seen; // 1..=c
                return Duration::from_micros(lower + ((upper - lower) * within).div_ceil(c));
            }
            seen += c;
        }
        Duration::from_micros(1u64 << (BUCKETS - 1).min(63))
    }

    /// A copy of the current cumulative state, for later subtraction
    /// via [`delta`](LatencyHistogram::delta).
    pub fn snapshot(&self) -> LatencyHistogram {
        self.clone()
    }

    /// The observations recorded since `earlier` was taken: `self`
    /// minus `earlier`, bucket-wise (saturating, so a reset between the
    /// two snapshots degrades to the later state instead of wrapping).
    /// Percentiles of the returned histogram describe only the window —
    /// this is what `sctool serve --stats-interval` prints per tick.
    pub fn delta(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut buckets = [0u64; BUCKETS];
        for (out, (a, b)) in buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *out = a.saturating_sub(*b);
        }
        LatencyHistogram {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
        }
    }

    /// Builds a histogram from raw parts sharing this type's bucket
    /// layout — the bridge from `sc_telemetry::HistogramSnapshot`
    /// (same 40 log₂-µs buckets) into the service's summary formatting.
    pub fn from_parts(buckets: [u64; BUCKETS], count: u64, sum_us: u128) -> Self {
        Self {
            buckets,
            count,
            sum_us,
        }
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
    }

    /// One-line `p50/p90/p99 (mean, n)` summary in milliseconds.
    pub fn summary(&self) -> String {
        format!(
            "p50≤{:.1}ms p90≤{:.1}ms p99≤{:.1}ms (mean {:.1}ms, n={})",
            self.percentile(50.0).as_secs_f64() * 1e3,
            self.percentile(90.0).as_secs_f64() * 1e3,
            self.percentile(99.0).as_secs_f64() * 1e3,
            self.mean().as_secs_f64() * 1e3,
            self.count,
        )
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

/// Aggregate counters of one service run.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Physical scans of the repository the service actually performed
    /// — the number scan sharing is measured against (compare with the
    /// sum of per-query `logical_passes`).
    pub physical_scans: usize,
    /// Queries completed (cache hits included).
    pub queries_completed: usize,
    /// Largest number of queries concurrently inside scan epochs.
    pub max_inflight_seen: usize,
    /// Queries admitted as fresh jobs — the units that actually pay
    /// per-scan CPU. `queries_completed = jobs + cache_hits +
    /// coalesced` once a run drains.
    pub jobs: usize,
    /// Queries admitted into a scan already in flight (pass-aligned
    /// mid-stream admission) instead of waiting for the next epoch.
    pub mid_stream_admissions: usize,
    /// The subset of [`mid_stream_admissions`] spliced into a *later*
    /// pass of an in-flight epoch group (the group's scan index was ≥ 2
    /// when the joiner's first pass rode it) — the joins only per-pass
    /// alignment makes possible; a pass-1-only scheduler would have
    /// made these queries wait for the next epoch boundary.
    ///
    /// [`mid_stream_admissions`]: ServiceMetrics::mid_stream_admissions
    pub aligned_joins: usize,
    /// Repository hot swaps the scheduler performed
    /// ([`ServiceHandle::reload`](crate::ServiceHandle::reload) /
    /// the `!reload` protocol line).
    pub reloads: usize,
    /// Outcome-cache entries evicted during this run, all causes
    /// (capacity bound under either policy, plus generation reaping).
    pub evictions: usize,
    /// Capacity evictions under the FIFO policy.
    pub fifo_evictions: usize,
    /// Capacity evictions under the LRU policy.
    pub lru_evictions: usize,
    /// Entries reaped because their repository generation died in a
    /// hot swap ([`OutcomeCache::evict_fingerprint`](crate::OutcomeCache::evict_fingerprint)).
    pub reload_evictions: usize,
    /// Queries answered from the outcome cache in zero physical scans.
    pub cache_hits: usize,
    /// Queries that missed the cache and became their own jobs
    /// (coalesced followers are counted in
    /// [`coalesced`](ServiceMetrics::coalesced), not here).
    pub cache_misses: usize,
    /// Queries that coalesced onto an identical in-flight job
    /// ([`ServiceConfig::coalesce`](crate::ServiceConfig)): they ride
    /// that job's scans and CPU, and its retirement fans one reply out
    /// per follower.
    pub coalesced: usize,
    /// `(tenant, shard)` work units absorbed through the shard-granular
    /// interleaved fan-out
    /// ([`InterleaveMode::Shard`](crate::InterleaveMode)). Zero under
    /// epoch-granular gating and in batch runs, where a whole epoch is
    /// one exclusive grant.
    pub shard_grants: usize,
    /// Submission → admission wait, one observation per query.
    pub queue_wait: LatencyHistogram,
    /// Submission → completion latency, one observation per query.
    pub latency: LatencyHistogram,
    /// Wall-clock from first admission to last retirement.
    pub elapsed: Duration,
}

impl ServiceMetrics {
    /// Folds another run's (or another tenant lane's) metrics into this
    /// one: counts add, histograms merge, and the concurrency peak and
    /// wall-clock take the maximum — the lanes of a multi-tenant serve
    /// run side by side, so their elapsed times overlap rather than
    /// accumulate.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        self.physical_scans += other.physical_scans;
        self.queries_completed += other.queries_completed;
        self.max_inflight_seen = self.max_inflight_seen.max(other.max_inflight_seen);
        self.jobs += other.jobs;
        self.mid_stream_admissions += other.mid_stream_admissions;
        self.aligned_joins += other.aligned_joins;
        self.reloads += other.reloads;
        self.evictions += other.evictions;
        self.fifo_evictions += other.fifo_evictions;
        self.lru_evictions += other.lru_evictions;
        self.reload_evictions += other.reload_evictions;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.coalesced += other.coalesced;
        self.shard_grants += other.shard_grants;
        self.queue_wait.merge(&other.queue_wait);
        self.latency.merge(&other.latency);
        self.elapsed = self.elapsed.max(other.elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_in_microseconds() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.percentile(99.0), Duration::ZERO);
        for _ in 0..99 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        h.record(Duration::from_millis(50)); // bucket [32768, 65536) µs
        assert_eq!(h.count(), 100);
        // Rank 50 of the 99 observations in [8, 16) interpolates to
        // 8 + ceil(8·50/99) = 13; rank 99 lands on the upper edge.
        assert_eq!(h.percentile(50.0), Duration::from_micros(13));
        assert_eq!(h.percentile(99.0), Duration::from_micros(16));
        assert_eq!(h.percentile(100.0), Duration::from_micros(65536));
    }

    #[test]
    fn percentiles_interpolate_inside_a_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..4 {
            h.record(Duration::from_micros(10)); // bucket [8, 16)
        }
        // Ranks 1..=4 spread proportionally across the bucket: the
        // terminal rank reports exactly the upper edge, earlier ranks
        // proportionally less.
        assert_eq!(h.percentile(25.0), Duration::from_micros(10));
        assert_eq!(h.percentile(50.0), Duration::from_micros(12));
        assert_eq!(h.percentile(75.0), Duration::from_micros(14));
        assert_eq!(h.percentile(100.0), Duration::from_micros(16));
    }

    #[test]
    fn snapshot_delta_reports_the_window_only() {
        let mut h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record(Duration::from_millis(30)); // slow warm-up phase
        }
        let earlier = h.snapshot();
        for _ in 0..50 {
            h.record(Duration::from_micros(10)); // fast steady state
        }
        // Cumulative p50 still remembers the warm-up…
        assert!(h.percentile(90.0) >= Duration::from_millis(16));
        // …the window does not.
        let window = h.delta(&earlier);
        assert_eq!(window.count(), 50);
        assert_eq!(window.mean(), Duration::from_micros(10));
        assert!(window.percentile(99.0) <= Duration::from_micros(16));
        // Delta against an unchanged snapshot is empty.
        assert_eq!(h.delta(&h.snapshot()).count(), 0);
    }

    #[test]
    fn from_parts_round_trips_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(100));
        h.record(Duration::from_micros(300));
        let copy = LatencyHistogram::from_parts(h.buckets, h.count, h.sum_us);
        assert_eq!(copy, h);
        assert_eq!(copy.mean(), Duration::from_micros(200));
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(3));
        b.record(Duration::from_micros(5));
        b.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Duration::from_micros(5));
    }

    #[test]
    fn service_metrics_merge_adds_counts_and_overlaps_time() {
        let mut a = ServiceMetrics {
            physical_scans: 3,
            queries_completed: 2,
            max_inflight_seen: 4,
            jobs: 2,
            elapsed: Duration::from_millis(10),
            ..Default::default()
        };
        let mut b = ServiceMetrics {
            physical_scans: 5,
            queries_completed: 1,
            max_inflight_seen: 1,
            jobs: 1,
            cache_hits: 7,
            elapsed: Duration::from_millis(30),
            ..Default::default()
        };
        b.latency.record(Duration::from_micros(9));
        a.merge(&b);
        assert_eq!(a.physical_scans, 8);
        assert_eq!(a.queries_completed, 3);
        assert_eq!(a.jobs, 3);
        assert_eq!(a.cache_hits, 7);
        assert_eq!(a.max_inflight_seen, 4, "peaks take the max");
        assert_eq!(a.elapsed, Duration::from_millis(30), "lanes overlap");
        assert_eq!(a.latency.count(), 1);
    }

    #[test]
    fn summary_mentions_all_percentiles() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_millis(2));
        let s = h.summary();
        assert!(s.contains("p50") && s.contains("p90") && s.contains("p99"));
    }
}
