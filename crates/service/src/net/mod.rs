//! Network front-end: the line protocol over TCP (or any
//! `BufRead`/`Write` pair) and a connect-retry readiness probe.
//!
//! `sctool serve` and `sctool client` are thin wrappers over this
//! module, so examples and tests can run the exact same server the CLI
//! ships: bind a [`TcpListener`], hand it to [`serve_tcp`] (or
//! [`serve_tcp_with`] to tune the connection limit and buffer caps),
//! and probe readiness with [`wait_ready`] instead of polling
//! `/dev/tcp` from a shell loop.
//!
//! Both front-ends drive the same typed codec
//! ([`protocol::Request`](crate::protocol::Request) /
//! [`protocol::Reply`](crate::protocol::Reply)) through one dispatch
//! table: [`pump_queries`] is the blocking stdin/stdout pump (one
//! reader thread, ordered replies), while the TCP path is the
//! event-driven session layer in [`poller`] — one thread multiplexing
//! every connection through a readiness loop with hard per-session
//! buffer caps, a connection limit, and explicit `err msg=busy`
//! load-shedding instead of unbounded queue growth.

mod poller;

pub use poller::{NetConfig, NetStats};

use crate::metrics::ServiceMetrics;
use crate::protocol::{Reply, Request};
use crate::service::{QueryTicket, ReloadTicket, Service, ServiceHandle, TrySubmitError};
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Flushes the one-line telemetry stats snapshot to stderr — the serve
/// log channel, never the protocol socket, so a peer that vanished
/// mid-reply can't turn the flush into a broken-pipe error. A no-op
/// when telemetry is disabled, so library tests and batch runs stay
/// quiet.
pub(crate) fn log_stats(trigger: &str) {
    if sc_telemetry::enabled() {
        eprintln!(
            "sc_service stats trigger={trigger} {}",
            sc_telemetry::stats_line()
        );
    }
}

/// Blocks until a TCP connect to `addr` succeeds, retrying for up to
/// `timeout` — the programmatic replacement for shell readiness loops
/// over `/dev/tcp`. Retries back off exponentially (1 ms doubling to
/// a 64 ms ceiling), so a server that comes up fast is detected fast
/// without the probe loop burning a core against a slow one. The
/// probe connection is closed immediately; the server sees one
/// accepted connection with zero protocol lines, which the session
/// layer treats as a no-op session.
///
/// # Errors
///
/// The last connect error (with the address) once `timeout` elapses
/// without a successful connect.
pub fn wait_ready(addr: &str, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(1);
    loop {
        let err = match TcpStream::connect(addr) {
            Ok(_probe) => return Ok(()),
            Err(e) => e,
        };
        let now = Instant::now();
        if now >= deadline {
            return Err(format!(
                "{addr}: not ready after {:.1}s ({err})",
                timeout.as_secs_f64()
            ));
        }
        std::thread::sleep(backoff.min(deadline - now));
        backoff = (backoff * 2).min(Duration::from_millis(64));
    }
}

/// What dispatching one parsed request produced: either a reply that
/// can be rendered now, a ticket that resolves later, or a
/// connection/server lifecycle transition. The stdin pump and the TCP
/// event loop both consume this, so verb semantics live in exactly
/// one place ([`dispatch`]).
pub(crate) enum Action {
    /// Answer now (in request order, like every reply).
    Reply(Reply),
    /// A submitted query; its outcome arrives through the ticket.
    Ticket(QueryTicket),
    /// A requested hot swap; the new generation id arrives through
    /// the ticket.
    Swap(ReloadTicket),
    /// A requested hot swap whose instance file is still loading on a
    /// worker thread (non-blocking mode only — the event loop must not
    /// stall every connection on one tenant's disk I/O).
    LoadSwap(SwapLoad),
    /// The query was refused because the tenant's submission queue is
    /// full — render [`Reply::Busy`] and count the shed (non-blocking
    /// mode only).
    Shed,
    /// `quit`: end this connection once pending replies drain.
    Quit,
    /// `shutdown`: stop the server once inflight work drains.
    Shutdown,
}

/// A `!reload` in its load phase: a short-lived worker thread reads
/// and parses the instance file off the event loop, and only the
/// cheap [`ServiceHandle::reload`] hand-off runs inline once the load
/// lands. The issuing session stalls until then (preserving that
/// connection's dispatch order, exactly like the old blocking path);
/// every other connection keeps being served.
pub(crate) struct SwapLoad {
    handle: ServiceHandle,
    rx: std::sync::mpsc::Receiver<Result<sc_setsystem::SetSystem, String>>,
}

impl SwapLoad {
    fn spawn(handle: ServiceHandle, path: String) -> SwapLoad {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::Builder::new()
            .name("sc-reload-load".into())
            .spawn(move || {
                let _ = tx.send(sc_setsystem::io::load_path(&path).map(|inst| inst.system));
            })
            .expect("spawn reload loader thread");
        SwapLoad { handle, rx }
    }

    /// `None` while the file is still loading; once the loader is
    /// done, performs the reload hand-off and returns the swap ticket
    /// (or the load/hand-off error).
    pub(crate) fn try_finish(&self) -> Option<Result<ReloadTicket, String>> {
        let loaded = match self.rx.try_recv() {
            Ok(result) => result,
            Err(std::sync::mpsc::TryRecvError::Empty) => return None,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                Err("reload loader thread died".into())
            }
        };
        Some(loaded.and_then(|system| self.handle.reload(system).map_err(|e| e.to_string())))
    }
}

/// Executes one parsed request against the connection's state:
/// `conn` is the connection's current tenant handle (`!use` retargets
/// it in place). With `blocking`, a query waits for queue room
/// ([`ServiceHandle::submit`] — the stdin pump's backpressure); without
/// it, a full queue comes back as [`Action::Shed`] for the event loop
/// to answer `err msg=busy` ([`ServiceHandle::try_submit`]).
pub(crate) fn dispatch(req: Request, conn: &mut ServiceHandle, blocking: bool) -> Action {
    match req {
        Request::Ping => Action::Reply(Reply::Pong),
        Request::Quit => Action::Quit,
        Request::Shutdown => Action::Shutdown,
        // The telemetry verbs snapshot the live registry as they
        // arrive — a live view, even while queries pipelined behind
        // them are still scanning — and the reply is still delivered
        // in request order like every other response.
        Request::Stats => Action::Reply(Reply::Stats {
            stats: sc_telemetry::stats_line(),
        }),
        Request::Metrics => Action::Reply(Reply::Metrics {
            body: sc_telemetry::prometheus(),
        }),
        Request::Trace { id } => Action::Reply(Reply::Trace {
            id,
            events: sc_telemetry::trace(id)
                .iter()
                .map(|ev| ev.protocol_line())
                .collect(),
        }),
        Request::Use { repo } => match conn.with_tenant(&repo) {
            Some(h) => {
                *conn = h;
                Action::Reply(Reply::Use { repo })
            }
            None => Action::Reply(Reply::error(format!("unknown repository {repo:?}"))),
        },
        // `!repos` lists the served tenants — name, current
        // generation, fingerprint, quota, and the live traffic
        // counters (always on, so this answers even with telemetry
        // disabled).
        Request::Repos => {
            let registry = conn.tenants();
            let listing = registry
                .iter()
                .map(|tenant| {
                    let generation = tenant.generation();
                    let (completed, jobs, cache_hits, coalesced, shard_grants) =
                        tenant.meta().counters().snapshot();
                    format!(
                        "repo name={} gen={} fingerprint={:016x} quota={} completed={} jobs={} cache_hits={} coalesced={} shard_grants={}",
                        tenant.name(),
                        generation.id,
                        generation.fingerprint,
                        tenant.quota(),
                        completed,
                        jobs,
                        cache_hits,
                        coalesced,
                        shard_grants,
                    )
                })
                .collect();
            Action::Reply(Reply::Repos { listing })
        }
        // The codec's two-token split only engages when the first
        // token names a served tenant; otherwise the whole argument is
        // a path (with spaces) for the connection's current tenant,
        // unchanged from single-tenant servers.
        Request::Reload { target, path } => {
            let (handle, path) = match target {
                Some(name) => match conn.with_tenant(&name) {
                    Some(h) => (h, path),
                    None => (conn.clone(), format!("{name} {path}")),
                },
                None => (conn.clone(), path),
            };
            if blocking {
                // The stdin pump blocks its one connection, same as
                // its queries do.
                match sc_setsystem::io::load_path(&path) {
                    Ok(inst) => match handle.reload(inst.system) {
                        Ok(ticket) => Action::Swap(ticket),
                        Err(e) => Action::Reply(Reply::error(e.to_string())),
                    },
                    Err(msg) => Action::Reply(Reply::error(msg)),
                }
            } else {
                // The event loop must not stall every connection on
                // one file load: read the instance off-thread and
                // hand off to the scheduler when it lands.
                Action::LoadSwap(SwapLoad::spawn(handle, path))
            }
        }
        Request::Query { repo, spec } => {
            let route = match repo.as_deref() {
                Some(name) => match conn.with_tenant(name) {
                    Some(h) => h,
                    None => {
                        return Action::Reply(Reply::error(format!("unknown repository {name:?}")))
                    }
                },
                None => conn.clone(),
            };
            if blocking {
                match route.submit(spec) {
                    Ok(ticket) => Action::Ticket(ticket),
                    Err(e) => Action::Reply(Reply::error(e.to_string())),
                }
            } else {
                match route.try_submit(spec) {
                    Ok(ticket) => Action::Ticket(ticket),
                    Err(TrySubmitError::Busy) => Action::Shed,
                    Err(e) => Action::Reply(Reply::error(e.to_string())),
                }
            }
        }
    }
}

/// Request/response pump shared by the stdin front-end and in-process
/// tests: a reader thread parses lines through the typed codec
/// ([`Request::parse`]) and dispatches them as they arrive while the
/// calling thread answers in submission order — so responses stream
/// back as queries complete, and every pending line is already riding
/// shared scan epochs. All responses — `pong` and `err` included — are
/// emitted in request order, so a `ping` pipelined behind a slow query
/// answers after that query completes; it probes the connection's
/// round-trip, not the scheduler's idle latency.
///
/// Tenant addressing: the connection starts on the handle's tenant
/// (the server default); `!use <name>` retargets the rest of the
/// connection, a `repo=<name>` token on a query line retargets that
/// query only, `!repos` lists every served tenant, and
/// `!reload [name] <path>` hot-swaps a repository (see
/// [`Request::Reload`]). Queries block for queue room (the stdin
/// pump's backpressure is the pipe itself); the TCP path sheds
/// instead — see [`serve_tcp_with`]. Returns `Ok(true)` if the peer
/// asked for server shutdown.
///
/// # Errors
///
/// Propagates I/O errors from `input` and `output` (a client that went
/// away mid-reply).
pub fn pump_queries<R, W>(input: R, output: &mut W, handle: &ServiceHandle) -> std::io::Result<bool>
where
    R: BufRead + Send,
    W: Write,
{
    enum Pumped {
        Reply(Reply),
        Ticket(QueryTicket),
        Swap(ReloadTicket),
    }
    let (tx, rx) = std::sync::mpsc::channel::<Pumped>();
    std::thread::scope(|s| {
        let reader = s.spawn(move || -> std::io::Result<bool> {
            // The connection's current tenant: starts on the server
            // default, retargeted by `!use` (a `repo=` query token
            // overrides per query without moving this).
            let mut conn_handle = handle.clone();
            for line in input.lines() {
                let line = line?;
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let action = match Request::parse(line) {
                    Ok(req) => dispatch(req, &mut conn_handle, true),
                    Err(msg) => Action::Reply(Reply::error(msg)),
                };
                let msg = match action {
                    Action::Reply(reply) => Pumped::Reply(reply),
                    Action::Ticket(ticket) => Pumped::Ticket(ticket),
                    Action::Swap(ticket) => Pumped::Swap(ticket),
                    Action::LoadSwap(_) => unreachable!("blocking dispatch loads inline"),
                    Action::Shed => unreachable!("blocking dispatch never sheds"),
                    Action::Quit => break,
                    Action::Shutdown => return Ok(true),
                };
                let _ = tx.send(msg);
            }
            Ok(false)
        });
        // The sender side lives in the reader thread (`tx` moved in),
        // so this loop ends exactly when the reader is done.
        for msg in rx {
            match msg {
                Pumped::Reply(reply) => writeln!(output, "{}", reply.render())?,
                Pumped::Ticket(ticket) => {
                    let reply = match ticket.wait() {
                        Ok(outcome) => Reply::Outcome(outcome),
                        Err(e) => Reply::error(e.to_string()),
                    };
                    writeln!(output, "{}", reply.render())?;
                }
                Pumped::Swap(ticket) => {
                    let reply = match ticket.wait() {
                        Ok(generation) => Reply::Reload { generation },
                        Err(e) => Reply::error(e.to_string()),
                    };
                    writeln!(output, "{}", reply.render())?;
                    // A hot swap is a natural stats window boundary:
                    // flush the snapshot to the serve log so the
                    // pre-swap numbers are on record before the new
                    // generation's traffic blends in.
                    log_stats("reload");
                }
            }
            output.flush()?;
        }
        reader.join().expect("reader thread panicked")
    })
}

/// Serves the line protocol on an already-bound listener with the
/// default [`NetConfig`]: every accepted connection speaks the
/// protocol through one event-driven session layer (see [`poller`]),
/// all sharing one scan scheduler; the `shutdown` command stops the
/// listener once inflight work drains.
///
/// # Errors
///
/// An accept-loop failure message; the metrics of the work served up
/// to that point are lost with the scheduler in that case.
pub fn serve_tcp(service: &Service, listener: TcpListener) -> Result<ServiceMetrics, String> {
    serve_tcp_with(service, listener, NetConfig::default()).map(|(metrics, _)| metrics)
}

/// [`serve_tcp`] with explicit front-door limits, returning the
/// session layer's own accounting beside the scheduler metrics: how
/// many connections were accepted, how much load was shed
/// (`err msg=busy` — connections over [`NetConfig::max_conns`] plus
/// queries refused by a full submission queue), and how many request
/// lines overflowed the per-session read buffer
/// (`err msg=line_too_long`).
///
/// # Errors
///
/// An accept-loop failure message; the metrics of the work served up
/// to that point are lost with the scheduler in that case.
pub fn serve_tcp_with(
    service: &Service,
    listener: TcpListener,
    cfg: NetConfig,
) -> Result<(ServiceMetrics, NetStats), String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let (res, metrics) = service.serve(|handle| poller::event_loop(&listener, handle, &cfg));
    let stats = res?;
    Ok((metrics, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceBuilder;
    use sc_setsystem::gen;
    use std::io::{BufRead, BufReader, Write};

    fn single(seed: u64) -> Service {
        ServiceBuilder::new()
            .tenant("default", gen::planted(64, 128, 4, seed).system)
            .build()
    }

    #[test]
    fn pump_speaks_the_codec_over_in_memory_pipes() {
        let service = single(1);
        let input = b"ping\n# comment\n\nfrobnicate\ngreedy\nquit\nignored-after-quit\n" as &[u8];
        let mut output = Vec::new();
        let (shutdown, metrics) = service.serve(|handle| {
            pump_queries(std::io::BufReader::new(input), &mut output, &handle).expect("pump")
        });
        assert!(!shutdown, "quit ends the connection, not the server");
        let lines: Vec<String> = output.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert_eq!(lines[0], "pong");
        assert!(
            lines[1].starts_with("err msg=unknown query kind"),
            "{lines:?}"
        );
        assert!(lines[2].starts_with("ok "), "{lines:?}");
        assert_eq!(metrics.queries_completed, 1);
    }

    #[test]
    fn tcp_round_trip_with_wait_ready_and_shutdown() {
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            writeln!(writer, "ping").unwrap();
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "pong");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ok "), "greedy should solve: {line:?}");
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 1);
        });
    }

    #[test]
    fn reload_line_hot_swaps_and_tags_responses_with_the_generation() {
        let inst = gen::planted(64, 128, 4, 1);
        let next = gen::planted(64, 128, 4, 2);
        let path = std::env::temp_dir().join(format!("sc-reload-{}.sc", std::process::id()));
        std::fs::write(&path, sc_setsystem::io::system_to_string(&next.system)).expect("write");

        let service = ServiceBuilder::new().tenant("default", inst.system).build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "!reload {}", path.display()).unwrap();
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            let mut lines = Vec::new();
            for _ in 0..3 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                lines.push(line.trim().to_string());
            }
            assert!(lines[0].contains("gen=1"), "pre-swap: {:?}", lines[0]);
            assert_eq!(lines[1], "ok reload gen=2");
            assert!(lines[2].contains("gen=2"), "post-swap: {:?}", lines[2]);
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.reloads, 1);
            assert_eq!(metrics.queries_completed, 2);
        });
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn telemetry_verbs_answer_over_tcp() {
        let _g = sc_telemetry::test_hold();
        sc_telemetry::set_enabled(true);
        sc_telemetry::reset();
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            let mut next = {
                let reader = &mut reader;
                move || {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    line.trim().to_string()
                }
            };
            // Run a query to completion first: its reply is sent only
            // after its Retired event hit the journal, so the verbs
            // below observe a full lifecycle. (Verbs snapshot at
            // arrival, so pipelining them behind the query would race
            // its retirement.)
            writeln!(writer, "greedy").unwrap();
            writer.flush().unwrap();
            assert!(next().starts_with("ok "), "query answer first");
            writeln!(writer, "!stats").unwrap();
            writeln!(writer, "!metrics").unwrap();
            writeln!(writer, "!trace 0").unwrap();
            writeln!(writer, "!trace bogus").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();

            let stats = next();
            assert!(stats.starts_with("ok stats enabled=1 "), "{stats:?}");
            assert!(stats.contains("sc_queries_submitted_total="), "{stats:?}");

            let header = next();
            let n: usize = header
                .strip_prefix("ok metrics n=")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad metrics header {header:?}"));
            assert!(n > 0);
            let body: Vec<String> = (0..n).map(|_| next()).collect();
            assert!(body.iter().any(|l| l.starts_with("sc_telemetry_enabled 1")));
            for l in &body {
                let mut it = l.split(' ');
                assert!(it.next().is_some_and(|f| !f.is_empty()), "{l:?}");
                assert!(it.next().is_some_and(|v| v.parse::<u64>().is_ok()), "{l:?}");
                assert!(it.next().is_none(), "extra fields: {l:?}");
            }

            let trace = next();
            let events: usize = trace
                .strip_prefix("ok trace id=0 events=")
                .and_then(|n| n.parse().ok())
                .unwrap_or_else(|| panic!("bad trace header {trace:?}"));
            assert!(events >= 2, "query 0 was submitted and retired: {trace:?}");
            let timeline: Vec<String> = (0..events).map(|_| next()).collect();
            // Concurrent tests in this binary also serve a query id 0
            // while the gate is on, so assert membership rather than
            // position: this query's full lifecycle is in the journal.
            assert!(
                timeline.iter().any(|l| l.contains("event=submitted")),
                "{timeline:?}"
            );
            assert!(
                timeline.iter().any(|l| l.contains("event=retired")),
                "{timeline:?}"
            );

            assert_eq!(next(), "err msg=!trace: bad query id \"bogus\"");
            server.join().expect("server thread");
        });
        sc_telemetry::set_enabled(false);
    }

    #[test]
    fn tenant_addressing_verbs_route_queries_over_tcp() {
        let alpha = gen::planted(64, 128, 4, 1);
        let beta = gen::planted(64, 128, 4, 2);
        let service = ServiceBuilder::new()
            .tenant("alpha", alpha.system)
            .tenant("beta", beta.system)
            .build();
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            let mut next = {
                let reader = &mut reader;
                move || {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    line.trim().to_string()
                }
            };
            writeln!(writer, "greedy").unwrap(); // connection default = alpha
            writeln!(writer, "greedy repo=beta").unwrap(); // per-query override
            writeln!(writer, "!use beta").unwrap(); // connection retarget
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "greedy repo=alpha").unwrap();
            writer.flush().unwrap();

            for (expect, why) in [
                ("repo=alpha", "first tenant is the connection default"),
                ("repo=beta", "repo= overrides per query"),
            ] {
                let line = next();
                assert!(line.starts_with("ok "), "{why}: {line:?}");
                assert!(line.ends_with(expect), "{why}: {line:?}");
            }
            assert_eq!(next(), "ok use repo=beta");
            for (expect, why) in [
                ("repo=beta", "!use retargeted the connection"),
                ("repo=alpha", "repo= overrides the !use default too"),
            ] {
                let line = next();
                assert!(line.starts_with("ok "), "{why}: {line:?}");
                assert!(line.ends_with(expect), "{why}: {line:?}");
            }
            // All four query replies are in hand — their retirements
            // have landed — so the `!repos` counter snapshot below is
            // deterministic.
            writeln!(writer, "!repos").unwrap();
            writeln!(writer, "!use nowhere").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            assert_eq!(next(), "ok repos n=2");
            let listing: Vec<String> = (0..2).map(|_| next()).collect();
            assert!(
                listing[0].starts_with("repo name=alpha gen=1 "),
                "{listing:?}"
            );
            assert!(
                listing[1].starts_with("repo name=beta gen=1 "),
                "{listing:?}"
            );
            // Two queries landed on each tenant; the counters saw them.
            for l in &listing {
                assert!(l.contains("completed=2"), "{l:?}");
                assert!(l.contains("quota=64"), "{l:?}");
            }
            assert_eq!(next(), "err msg=unknown repository \"nowhere\"");
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 4);
        });
    }

    #[test]
    fn connection_limit_sheds_with_busy_and_serves_the_rest() {
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let cfg = NetConfig {
            max_conns: 1,
            ..NetConfig::default()
        };
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp_with(&service, listener, cfg).expect("serve"));
            // First connection occupies the only session slot; the
            // pong confirms it is registered before the second
            // connection races it.
            let held = TcpStream::connect(&addr).expect("connect");
            let mut held_reader = BufReader::new(held.try_clone().expect("clone"));
            let mut held_writer = &held;
            writeln!(held_writer, "ping").unwrap();
            held_writer.flush().unwrap();
            let mut line = String::new();
            held_reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "pong");
            // Second connection is over the limit: one busy line, then
            // the server hangs up.
            let shed = TcpStream::connect(&addr).expect("connect");
            let mut shed_reader = BufReader::new(shed);
            line.clear();
            shed_reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "err msg=busy");
            line.clear();
            assert_eq!(
                shed_reader.read_line(&mut line).unwrap(),
                0,
                "EOF after shed"
            );
            // The held session is unaffected and still serves queries.
            writeln!(held_writer, "greedy").unwrap();
            writeln!(held_writer, "shutdown").unwrap();
            held_writer.flush().unwrap();
            line.clear();
            held_reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ok "), "{line:?}");
            let (metrics, stats) = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 1);
            assert_eq!(stats.accepted, 1);
            assert_eq!(stats.shed, 1);
            assert_eq!(stats.buffer_overflows, 0);
        });
    }

    #[test]
    fn oversized_line_is_rejected_without_killing_the_session() {
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let cfg = NetConfig {
            read_buf_cap: 256,
            ..NetConfig::default()
        };
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp_with(&service, listener, cfg).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            // One 4 KiB line with no newline until the end: far over
            // the 256-byte cap, so the session must answer
            // `line_too_long` and discard the rest — not buffer it.
            let long = "x".repeat(4096);
            writeln!(writer, "{long}").unwrap();
            writeln!(writer, "greedy").unwrap();
            writeln!(writer, "shutdown").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "err msg=line_too_long");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ok "), "session survived: {line:?}");
            let (metrics, stats) = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 1);
            assert_eq!(stats.buffer_overflows, 1);
            assert_eq!(stats.shed, 0);
        });
    }

    #[test]
    fn pipelined_burst_larger_than_the_read_buffer_drains() {
        // Regression (REVIEW): a one-shot pipeline of small lines
        // bigger than `read_buf_cap` used to wedge the session — the
        // old loop gated the whole service round (parsing included) on
        // the buffer being under the cap, while parsing is the only
        // thing that shrinks the buffer. The cap must gate only the
        // socket read.
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let cfg = NetConfig {
            read_buf_cap: 256,
            ..NetConfig::default()
        };
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp_with(&service, listener, cfg).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            // 100 pings ≈ 500 buffered bytes, well over the 256 cap,
            // in a single write.
            let mut burst = "ping\n".repeat(100);
            burst.push_str("shutdown\n");
            writer.write_all(burst.as_bytes()).unwrap();
            writer.flush().unwrap();
            for i in 0..100 {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert_eq!(line.trim(), "pong", "reply {i}");
            }
            let (_, stats) = server.join().expect("server thread");
            assert_eq!(stats.shed, 0);
            assert_eq!(stats.buffer_overflows, 0);
        });
    }

    #[test]
    fn oversized_fragment_behind_a_complete_line_still_drains() {
        // Regression (REVIEW): a parseable line followed by an
        // over-cap fragment used to wedge — the buffer sat at the cap,
        // the whole-round gate stopped parsing, and the overflow check
        // (which lives in the parse path) never ran.
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        let cfg = NetConfig {
            read_buf_cap: 256,
            ..NetConfig::default()
        };
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp_with(&service, listener, cfg).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            // One complete line, then 300 bytes of an unterminated
            // line — past the 256-byte cap.
            let mut part = String::from("ping\n");
            part.push_str(&"x".repeat(300));
            writer.write_all(part.as_bytes()).unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "pong");
            // The oversized line is rejected (as `line_too_long`, or
            // as an unknown query if the kernel delivered its newline
            // into the same parse round) without killing the session.
            writeln!(writer, "\ngreedy\nshutdown").unwrap();
            writer.flush().unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("err msg="), "{line:?}");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("ok "), "session survived: {line:?}");
            let (metrics, stats) = server.join().expect("server thread");
            assert_eq!(metrics.queries_completed, 1);
            assert_eq!(stats.shed, 0);
        });
    }

    #[test]
    fn reload_with_a_missing_file_replies_err_and_the_session_survives() {
        // The off-event-loop reload path: the loader thread fails,
        // the session reports it in request order, and parsing
        // resumes for the lines pipelined behind the reload.
        let service = single(1);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr").to_string();
        std::thread::scope(|s| {
            let server = s.spawn(|| serve_tcp(&service, listener).expect("serve"));
            wait_ready(&addr, Duration::from_secs(10)).expect("ready");
            let conn = TcpStream::connect(&addr).expect("connect");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut writer = &conn;
            writeln!(writer, "!reload /no/such/instance.sc\nping\nshutdown").unwrap();
            writer.flush().unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("err msg=/no/such/instance.sc"), "{line:?}");
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "pong");
            let metrics = server.join().expect("server thread");
            assert_eq!(metrics.reloads, 0);
        });
    }

    #[test]
    fn wait_ready_times_out_with_the_address_in_the_error() {
        // Port 1 is essentially never listening on a test host.
        let err = wait_ready("127.0.0.1:1", Duration::from_millis(120)).unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
        assert!(err.contains("not ready"), "{err}");
    }
}
