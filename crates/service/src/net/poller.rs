//! The event-driven session layer behind [`serve_tcp`]: one thread
//! multiplexing every connection through a readiness loop.
//!
//! [`serve_tcp`]: super::serve_tcp
//!
//! The crate forbids `unsafe`, so this is a dependency-free readiness
//! shim rather than a raw `epoll` binding: the listener and every
//! session socket run in non-blocking mode, each loop iteration
//! level-triggers over the session registry (accept burst, then per
//! session: flush → read → parse/dispatch → resolve tickets → flush),
//! and an iteration that makes no progress sleeps with a small
//! doubling backoff instead of spinning. The semantics match an
//! `epoll` loop — bounded buffers, fair service, no thread per
//! connection — with the syscall pattern of a poll loop, which the
//! E24 soak prices at the scales this repository serves.
//!
//! What the layer guarantees per session:
//!
//! * **Ordered replies.** Every request appends one entry to the
//!   session's pending-reply queue; the writer drains it strictly
//!   front-first, blocking on an unresolved query ticket — so a
//!   `ping` pipelined behind a slow query answers after it, exactly
//!   like the stdin pump.
//! * **Hard buffer caps.** A request line longer than
//!   [`NetConfig::read_buf_cap`] is answered with the framed
//!   `err msg=line_too_long` and the rest of the line is *discarded
//!   as it streams in* — the server's memory never holds more than
//!   the cap (plus one read chunk) per session, no matter what the
//!   peer sends. The caps gate only the socket read: buffered lines
//!   keep parsing and draining past them, so a pipelined backlog
//!   bigger than the cap empties instead of wedging the session. The
//!   write buffer is bounded by the pending-reply cap plus a soft
//!   flush threshold; a peer that stops reading stops being served.
//! * **Fair queueing.** Each session parses at most a fixed budget of
//!   lines per loop iteration, so one firehose connection cannot
//!   starve its neighbours' admission into the shared scheduler.
//! * **Explicit shedding.** Connections over [`NetConfig::max_conns`]
//!   are answered `err msg=busy` and closed; a query that finds its
//!   tenant's bounded submission queue full is answered
//!   `err msg=busy` in-line ([`ServiceHandle::try_submit`]) instead
//!   of blocking the event loop on one tenant's backpressure. Both
//!   count into [`NetStats::shed`] and the `sc_net_shed_total`
//!   counter.
//! * **No head-of-line blocking on admin I/O.** A `!reload` reads and
//!   parses its instance file on a short-lived worker thread; only
//!   the issuing session stalls until the hand-off (keeping its own
//!   dispatch order across the swap), while every other connection
//!   keeps being served.

use super::{dispatch, log_stats, Action, SwapLoad};
use crate::protocol::{Reply, Request, BUSY_MSG, LINE_TOO_LONG_MSG};
use crate::service::{QueryTicket, ReloadTicket, ServiceHandle};
use crate::telemetry::tel;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Front-door limits of the event-driven session layer
/// ([`serve_tcp_with`](super::serve_tcp_with)).
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Connections served concurrently; an accept beyond this is
    /// answered `err msg=busy` and closed (counted in
    /// [`NetStats::shed`]).
    pub max_conns: usize,
    /// Hard cap on one session's buffered request bytes: a single
    /// line longer than this is answered `err msg=line_too_long` and
    /// discarded as it streams in (counted in
    /// [`NetStats::buffer_overflows`]).
    pub read_buf_cap: usize,
    /// Replies one session may have queued (unresolved tickets
    /// included) before the layer stops reading from its socket — the
    /// `sctool serve --shed` knob. This is per-session backpressure,
    /// not disconnection: the peer's pipelining stalls in its TCP
    /// send window until replies drain. Query-level shedding
    /// (`err msg=busy`) comes from the tenant's bounded submission
    /// queue, not from this cap.
    pub pending_cap: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_conns: 1024,
            read_buf_cap: 64 * 1024,
            pending_cap: 256,
        }
    }
}

/// The session layer's own accounting, returned beside
/// [`ServiceMetrics`](crate::ServiceMetrics) by
/// [`serve_tcp_with`](super::serve_tcp_with) and mirrored onto the
/// live telemetry surface (`sc_net_accepted_total`,
/// `sc_net_shed_total`, `sc_net_buffer_overflows_total`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted into sessions (readiness probes with zero
    /// protocol lines included).
    pub accepted: u64,
    /// Load shed with `err msg=busy`: connections refused over
    /// [`NetConfig::max_conns`] plus queries refused by a full
    /// submission queue.
    pub shed: u64,
    /// Request lines discarded for exceeding
    /// [`NetConfig::read_buf_cap`] (each answered
    /// `err msg=line_too_long`).
    pub buffer_overflows: u64,
}

/// Lines one session may parse per loop iteration — the fair-queueing
/// budget keeping a firehose peer from starving its neighbours.
const LINE_BUDGET: usize = 32;

/// Bytes read from one socket per loop iteration.
const READ_CHUNK: usize = 4096;

/// Once a session's write buffer holds this much unflushed data, stop
/// rendering further replies into it until the peer drains some.
const WRITE_SOFT_CAP: usize = 64 * 1024;

/// Idle backoff bounds: a no-progress iteration sleeps `IDLE_MIN`
/// doubling to `IDLE_MAX`; any progress resets to the minimum.
const IDLE_MIN: Duration = Duration::from_micros(50);
const IDLE_MAX: Duration = Duration::from_millis(2);

/// How long a shutdown waits for peers to drain their pending replies
/// before hanging up on them.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// One reply owed to a session, in request order.
enum Pending {
    /// Rendered and ready to write.
    Ready(String),
    /// A query still in flight.
    Ticket(QueryTicket),
    /// A `!reload` whose instance file is still loading on its worker
    /// thread (placeholder filled in by `advance_loading`).
    Loading,
    /// A hot swap still draining.
    Swap(ReloadTicket),
}

/// One live connection: its socket, buffers, and tenant cursor.
struct Session {
    conn: TcpStream,
    /// The connection's current tenant (retargeted in place by
    /// `!use`).
    handle: ServiceHandle,
    /// Bytes received but not yet parsed into lines.
    read_buf: Vec<u8>,
    /// Inside an oversized line: drop bytes until its newline.
    discarding: bool,
    /// Rendered replies not yet accepted by the socket.
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Replies owed, strictly in request order.
    pending: VecDeque<Pending>,
    /// A `!reload` still loading its instance file off-thread: while
    /// set, this session parses no further lines (preserving its
    /// dispatch order across the swap) — other sessions are unaffected.
    loading: Option<SwapLoad>,
    /// Finish pending replies, flush, then close (EOF, `quit`, or
    /// server shutdown).
    closing: bool,
    /// The peer is unreachable (I/O error); drop everything now.
    gone: bool,
}

impl Session {
    fn new(conn: TcpStream, handle: ServiceHandle) -> Self {
        Session {
            conn,
            handle,
            read_buf: Vec::new(),
            discarding: false,
            write_buf: Vec::new(),
            write_pos: 0,
            pending: VecDeque::new(),
            loading: None,
            closing: false,
            gone: false,
        }
    }

    /// Stop reading and parsing; pending replies still drain.
    fn begin_close(&mut self) {
        self.closing = true;
        self.read_buf.clear();
        self.discarding = false;
    }

    /// The session can be dropped: the peer vanished, or everything
    /// owed has been written.
    fn done(&self) -> bool {
        self.gone
            || (self.closing && self.pending.is_empty() && self.write_pos == self.write_buf.len())
    }

    /// One level-triggered service round; returns whether anything
    /// moved. The buffer caps gate only the socket *read*: parsing,
    /// resolution, and flushing always run, so a backlog already
    /// buffered past the caps keeps draining (a gate on the whole
    /// round would livelock — `parse_lines` consumes at most
    /// `LINE_BUDGET` lines per round while one read can overshoot the
    /// cap by a chunk, so a pipelining peer could wedge the session
    /// with the buffer stuck at the cap).
    fn tick(&mut self, cfg: &NetConfig, stats: &mut NetStats, shutdown: &mut bool) -> bool {
        let mut progress = self.flush();
        if !self.gone {
            if self.pending.len() < cfg.pending_cap && self.read_buf.len() < cfg.read_buf_cap {
                progress |= self.fill();
            }
            if !self.gone {
                progress |= self.parse_lines(cfg, stats, shutdown);
                progress |= self.advance_loading();
                progress |= self.resolve();
                progress |= self.flush();
            }
        }
        progress
    }

    /// Drains the write buffer into the socket as far as readiness
    /// allows.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.write_pos < self.write_buf.len() {
            match self.conn.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => {
                    self.gone = true;
                    break;
                }
                Ok(n) => {
                    self.write_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.gone = true;
                    break;
                }
            }
        }
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        } else if self.write_pos > READ_CHUNK {
            self.write_buf.drain(..self.write_pos);
            self.write_pos = 0;
        }
        progress
    }

    /// Reads one chunk from the socket — but only while the session
    /// has room: a full pending queue or a full read buffer stops the
    /// reads, and TCP backpressure stalls the peer instead of this
    /// process growing.
    fn fill(&mut self) -> bool {
        if self.closing {
            return false;
        }
        let mut chunk = [0u8; READ_CHUNK];
        match self.conn.read(&mut chunk) {
            // EOF: the peer is done sending; drain what is owed, then
            // close.
            Ok(0) => {
                self.begin_close();
                true
            }
            Ok(n) => {
                let mut bytes = &chunk[..n];
                if self.discarding {
                    // Still inside an oversized line: drop until its
                    // terminating newline streams past.
                    match bytes.iter().position(|&b| b == b'\n') {
                        Some(p) => {
                            self.discarding = false;
                            bytes = &bytes[p + 1..];
                        }
                        None => bytes = &[],
                    }
                }
                self.read_buf.extend_from_slice(bytes);
                true
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => false,
            Err(e) if e.kind() == ErrorKind::Interrupted => false,
            Err(_) => {
                self.gone = true;
                true
            }
        }
    }

    /// Parses and dispatches buffered lines, up to the fairness
    /// budget.
    fn parse_lines(&mut self, cfg: &NetConfig, stats: &mut NetStats, shutdown: &mut bool) -> bool {
        if self.closing || self.loading.is_some() {
            return false;
        }
        // A buffered fragment with no newline that already exceeds the
        // cap can never become a legal line: answer the framed
        // overflow error now and discard the rest as it streams in.
        if !self.read_buf.contains(&b'\n') {
            if self.read_buf.len() >= cfg.read_buf_cap {
                self.read_buf.clear();
                self.discarding = true;
                stats.buffer_overflows += 1;
                tel().net_buffer_overflows.incr();
                self.pending
                    .push_back(Pending::Ready(Reply::error(LINE_TOO_LONG_MSG).render()));
                return true;
            }
            return false;
        }
        let mut progress = false;
        let mut consumed = 0;
        let mut lines = 0;
        while lines < LINE_BUDGET && self.pending.len() < cfg.pending_cap {
            let Some(nl) = self.read_buf[consumed..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let text =
                String::from_utf8_lossy(&self.read_buf[consumed..consumed + nl]).into_owned();
            consumed += nl + 1;
            let line = text.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            lines += 1;
            progress = true;
            let action = match Request::parse(line) {
                Ok(req) => dispatch(req, &mut self.handle, false),
                Err(msg) => Action::Reply(Reply::error(msg)),
            };
            match action {
                Action::Reply(reply) => {
                    self.pending.push_back(Pending::Ready(reply.render()));
                }
                Action::Ticket(ticket) => self.pending.push_back(Pending::Ticket(ticket)),
                Action::Swap(ticket) => self.pending.push_back(Pending::Swap(ticket)),
                // A `!reload` loading its file off-thread: stop
                // dispatching this session's lines until the hand-off
                // (`advance_loading`), so a query pipelined behind the
                // reload still runs on the new generation.
                Action::LoadSwap(load) => {
                    self.loading = Some(load);
                    self.pending.push_back(Pending::Loading);
                    break;
                }
                Action::Shed => {
                    stats.shed += 1;
                    tel().net_shed.incr();
                    self.pending.push_back(Pending::Ready(Reply::Busy.render()));
                }
                // `quit` ends the connection: lines pipelined behind
                // it are discarded, replies owed ahead of it drain.
                Action::Quit => {
                    self.begin_close();
                    return true;
                }
                Action::Shutdown => {
                    *shutdown = true;
                    self.begin_close();
                    return true;
                }
            }
        }
        self.read_buf.drain(..consumed);
        progress
    }

    /// Completes an off-thread `!reload` file load, if one is pending
    /// and done: performs the cheap scheduler hand-off inline and
    /// swaps the session's `Loading` placeholder for the swap ticket
    /// (or the error reply), after which parsing resumes. Runs even
    /// while the session is closing, so a reply owed for a pre-`quit`
    /// reload still drains.
    fn advance_loading(&mut self) -> bool {
        let Some(load) = &self.loading else {
            return false;
        };
        let Some(result) = load.try_finish() else {
            return false;
        };
        self.loading = None;
        let resolved = match result {
            Ok(ticket) => Pending::Swap(ticket),
            Err(msg) => Pending::Ready(Reply::error(msg).render()),
        };
        // Parsing stalls while a load is in flight, so there is
        // exactly one placeholder to fill.
        for entry in &mut self.pending {
            if matches!(entry, Pending::Loading) {
                *entry = resolved;
                break;
            }
        }
        true
    }

    /// Moves resolved replies from the pending queue into the write
    /// buffer, strictly front-first so replies keep request order.
    fn resolve(&mut self) -> bool {
        let mut progress = false;
        while self.write_buf.len() - self.write_pos < WRITE_SOFT_CAP {
            let rendered = match self.pending.front() {
                None => break,
                Some(Pending::Ready(_)) => {
                    let Some(Pending::Ready(text)) = self.pending.pop_front() else {
                        unreachable!("front checked above");
                    };
                    text
                }
                // The instance file is still loading; the reply owed
                // here materialises in `advance_loading`.
                Some(Pending::Loading) => break,
                Some(Pending::Ticket(ticket)) => match ticket.try_wait() {
                    None => break,
                    Some(result) => {
                        self.pending.pop_front();
                        match result {
                            Ok(outcome) => Reply::Outcome(outcome).render(),
                            Err(e) => Reply::error(e.to_string()).render(),
                        }
                    }
                },
                Some(Pending::Swap(ticket)) => match ticket.try_wait() {
                    None => break,
                    Some(result) => {
                        self.pending.pop_front();
                        let rendered = match result {
                            Ok(generation) => Reply::Reload { generation }.render(),
                            Err(e) => Reply::error(e.to_string()).render(),
                        };
                        // A hot swap is a stats window boundary: put
                        // the pre-swap numbers on the serve log before
                        // the new generation's traffic blends in.
                        log_stats("reload");
                        rendered
                    }
                },
            };
            self.write_buf.extend_from_slice(rendered.as_bytes());
            self.write_buf.push(b'\n');
            progress = true;
        }
        progress
    }
}

/// Answers a connection over the limit with one best-effort busy line
/// and hangs up.
fn shed_connection(mut conn: TcpStream, stats: &mut NetStats) {
    stats.shed += 1;
    tel().net_shed.incr();
    let _ = conn.set_nonblocking(true);
    let _ = conn.write(format!("err msg={BUSY_MSG}\n").as_bytes());
    let _ = conn.shutdown(Shutdown::Both);
}

/// The event loop [`serve_tcp_with`](super::serve_tcp_with) runs
/// inside [`Service::serve`](crate::Service::serve): accept burst,
/// then one service round per session, then sleep iff nothing moved.
/// Returns the front-door accounting once a `shutdown` request has
/// drained every session.
pub(super) fn event_loop(
    listener: &TcpListener,
    handle: ServiceHandle,
    cfg: &NetConfig,
) -> Result<NetStats, String> {
    let mut stats = NetStats::default();
    let mut sessions: Vec<Session> = Vec::new();
    let mut shutting_down: Option<Instant> = None;
    let mut idle = IDLE_MIN;
    loop {
        let mut progress = false;
        if shutting_down.is_none() {
            loop {
                match listener.accept() {
                    Ok((conn, _peer)) => {
                        progress = true;
                        // A socket that can't go non-blocking can't be
                        // served by this loop either: shed it like an
                        // over-limit connection (best-effort busy
                        // reply, counted) rather than vanishing from
                        // the accounting.
                        if sessions.len() >= cfg.max_conns || conn.set_nonblocking(true).is_err() {
                            shed_connection(conn, &mut stats);
                        } else {
                            stats.accepted += 1;
                            tel().net_accepted.incr();
                            sessions.push(Session::new(conn, handle.clone()));
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) => return Err(format!("accept: {e}")),
                }
            }
        }
        let mut shutdown_now = false;
        let mut i = 0;
        while i < sessions.len() {
            let s = &mut sessions[i];
            progress |= s.tick(cfg, &mut stats, &mut shutdown_now);
            if s.done() {
                let _ = s.conn.shutdown(Shutdown::Both);
                sessions.swap_remove(i);
                // Every connection end — clean EOF, quit, shutdown, or
                // a peer that vanished mid-reply — flushes the stats
                // snapshot to the serve log, so a load wave's numbers
                // land even when the server keeps running.
                log_stats("disconnect");
                progress = true;
            } else {
                i += 1;
            }
        }
        if shutdown_now && shutting_down.is_none() {
            shutting_down = Some(Instant::now());
            // Stop reading everywhere; replies owed still drain.
            for s in &mut sessions {
                s.begin_close();
            }
        }
        if let Some(since) = shutting_down {
            if sessions.is_empty() {
                return Ok(stats);
            }
            if since.elapsed() > SHUTDOWN_GRACE {
                // Peers that never drained their replies: hang up.
                sessions.clear();
                return Ok(stats);
            }
        }
        if progress {
            idle = IDLE_MIN;
        } else {
            std::thread::sleep(idle);
            idle = (idle * 2).min(IDLE_MAX);
        }
    }
}
