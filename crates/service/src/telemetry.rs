//! Cached handles into the process-wide [`sc_telemetry`] registry.
//!
//! Counter and stage lookups take the registry lock; the hot paths must
//! not. This module resolves every name the service emits exactly once
//! (behind a `OnceLock`) and hands the pipeline `'static` references,
//! so an instrumentation site costs one relaxed gate load when
//! telemetry is off and one sharded relaxed fetch-add when it is on.
//!
//! The counters mirror the per-run [`ServiceMetrics`] fields onto the
//! process-wide live surface (`!stats` / `!metrics`): `ServiceMetrics`
//! stays the exact per-run accounting experiments assert on, while
//! these counters aggregate across every run, generation, and
//! connection in the process, scrapeable mid-load.
//!
//! [`ServiceMetrics`]: crate::ServiceMetrics

use sc_telemetry::{Counter, StageHistogram};
use std::sync::OnceLock;

/// Every counter and stage histogram the service pipeline touches.
pub(crate) struct Tel {
    /// Mirrors submissions entering the service (batch slots included).
    pub submitted: &'static Counter,
    /// Mirrors [`ServiceMetrics::queries_completed`](crate::ServiceMetrics::queries_completed).
    pub completed: &'static Counter,
    /// Mirrors [`ServiceMetrics::jobs`](crate::ServiceMetrics::jobs).
    pub jobs: &'static Counter,
    /// Mirrors [`ServiceMetrics::cache_hits`](crate::ServiceMetrics::cache_hits).
    pub cache_hits: &'static Counter,
    /// Mirrors [`ServiceMetrics::cache_misses`](crate::ServiceMetrics::cache_misses).
    pub cache_misses: &'static Counter,
    /// Mirrors [`ServiceMetrics::coalesced`](crate::ServiceMetrics::coalesced).
    pub coalesced: &'static Counter,
    /// Mirrors [`ServiceMetrics::mid_stream_admissions`](crate::ServiceMetrics::mid_stream_admissions).
    pub mid_stream_admissions: &'static Counter,
    /// Mirrors [`ServiceMetrics::aligned_joins`](crate::ServiceMetrics::aligned_joins).
    pub aligned_joins: &'static Counter,
    /// Mirrors [`ServiceMetrics::reloads`](crate::ServiceMetrics::reloads).
    pub reloads: &'static Counter,
    /// Mirrors [`ServiceMetrics::evictions`](crate::ServiceMetrics::evictions) (all causes).
    pub cache_evictions: &'static Counter,
    /// Connections the TCP front-end accepted into sessions
    /// ([`NetStats::accepted`](crate::NetStats::accepted)).
    pub net_accepted: &'static Counter,
    /// Load shed at the front door — connections refused over
    /// `max_conns` plus queries answered `err msg=busy`
    /// ([`NetStats::shed`](crate::NetStats::shed)).
    pub net_shed: &'static Counter,
    /// Request lines discarded for overflowing the per-session read
    /// buffer
    /// ([`NetStats::buffer_overflows`](crate::NetStats::buffer_overflows)).
    pub net_buffer_overflows: &'static Counter,
    /// Stage 1 — boundary admission work (excludes idle channel waits).
    pub stage_admission: &'static StageHistogram,
    /// Stage 2 — the mid-stream splice / blocking drain at a scan
    /// boundary.
    pub stage_alignment: &'static StageHistogram,
    /// Stage 3 — one scan's fan-out across the worker pool.
    pub stage_execution: &'static StageHistogram,
    /// Stage 4 — retirement rounds that actually retired a job.
    pub stage_retirement: &'static StageHistogram,
}

/// The resolved handles, looked up once per process.
pub(crate) fn tel() -> &'static Tel {
    static TEL: OnceLock<Tel> = OnceLock::new();
    TEL.get_or_init(|| Tel {
        submitted: sc_telemetry::counter("sc_queries_submitted_total"),
        completed: sc_telemetry::counter("sc_queries_completed_total"),
        jobs: sc_telemetry::counter("sc_query_jobs_total"),
        cache_hits: sc_telemetry::counter("sc_cache_hits_total"),
        cache_misses: sc_telemetry::counter("sc_cache_misses_total"),
        coalesced: sc_telemetry::counter("sc_coalesced_total"),
        mid_stream_admissions: sc_telemetry::counter("sc_mid_stream_admissions_total"),
        aligned_joins: sc_telemetry::counter("sc_aligned_joins_total"),
        reloads: sc_telemetry::counter("sc_reloads_total"),
        cache_evictions: sc_telemetry::counter("sc_cache_evictions_total"),
        net_accepted: sc_telemetry::counter("sc_net_accepted_total"),
        net_shed: sc_telemetry::counter("sc_net_shed_total"),
        net_buffer_overflows: sc_telemetry::counter("sc_net_buffer_overflows_total"),
        stage_admission: sc_telemetry::stage("admission"),
        stage_alignment: sc_telemetry::stage("alignment"),
        stage_execution: sc_telemetry::stage("execution"),
        stage_retirement: sc_telemetry::stage("retirement"),
    })
}
